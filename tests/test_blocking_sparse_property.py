"""Property-based fuzz: the sparse overlap kernel vs the Counter reference.

Random token tables drawn from a tiny alphabet maximize collisions — shared
tokens, ties, df-pruned stopwords — exactly the structure the kernel's
thresholding/ranking/top-k logic has to get right. Every generated case
asserts the bit-identical pair-list contract in both calling modes, plus
the incremental index's batch probing path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import TokenOverlapBlocker
from repro.data.table import Table
from repro.incremental.index import IncrementalTokenIndex

#: Tiny token universe → dense overlap structure and frequent ties.
_TOKENS = ("alpha", "beta", "gamma", "delta", "eps")


def _value():
    """One attribute value: None, empty, or a handful of universe tokens."""
    return st.one_of(
        st.none(),
        st.just(""),
        st.lists(st.sampled_from(_TOKENS), min_size=0, max_size=4).map(" ".join),
    )


def _table(prefix: str, min_rows: int = 0):
    return st.lists(_value(), min_size=min_rows, max_size=8).map(
        lambda values: Table(
            [{"id": f"{prefix}{i}", "toks": v} for i, v in enumerate(values)],
            attributes=["toks"],
        )
    )


_params = st.fixed_dictionaries(
    {
        "min_overlap": st.integers(1, 3),
        "max_df": st.sampled_from([0.1, 0.3, 0.5, 1.0]),
        "top_k": st.one_of(st.none(), st.integers(1, 4)),
    }
)


def _both(params):
    return (
        TokenOverlapBlocker("toks", engine="sparse", **params),
        TokenOverlapBlocker("toks", engine="per-record", **params),
    )


@settings(max_examples=150, deadline=None)
@given(left=_table("l"), right=_table("r"), params=_params)
def test_linkage_parity(left, right, params):
    sparse, ref = _both(params)
    assert sparse.block(left, right) == ref.block(left, right)


@settings(max_examples=150, deadline=None)
@given(table=_table("t"), params=_params)
def test_dedup_parity(table, params):
    sparse, ref = _both(params)
    assert sparse.block(table) == ref.block(table)


@settings(max_examples=75, deadline=None)
@given(table=_table("t", min_rows=1), probes=st.lists(_value(), max_size=4), params=_params)
def test_index_batch_parity(table, probes, params):
    index = IncrementalTokenIndex("toks", **params)
    index.add(table)
    records = [{"id": f"p{i}", "toks": v} for i, v in enumerate(probes)]
    assert index.candidates_batch(records) == [index.candidates(rec) for rec in records]


@settings(max_examples=50, deadline=None)
@given(table=_table("t"))
def test_all_stopword_column_prunes_everything(table):
    # every record shares one universal token; a tight max_df prunes it, so
    # the only candidates come from the other tokens — engines must agree
    rows = [{"id": rec["id"], "toks": f"common {rec['toks'] or ''}".strip()} for rec in table]
    dense = Table(rows, attributes=["toks"])
    sparse, ref = _both({"min_overlap": 1, "max_df": 0.1, "top_k": None})
    assert sparse.block(dense) == ref.block(dense)


@settings(max_examples=50, deadline=None)
@given(right=_table("r", min_rows=2))
def test_top_k_one_ties_resolved_identically(right):
    # a probe overlapping many equal-count targets: top_k=1 must pick the
    # earliest-inserted target in both engines
    left = Table([{"id": "l0", "toks": " ".join(_TOKENS)}], attributes=["toks"])
    sparse, ref = _both({"min_overlap": 1, "max_df": 1.0, "top_k": 1})
    assert sparse.block(left, right) == ref.block(left, right)
