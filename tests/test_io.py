"""Tests for repro.data.io CSV round-tripping."""

import pytest

from repro.data.io import read_csv, write_csv
from repro.data.table import Table


def test_round_trip(tmp_path, people_table):
    path = tmp_path / "people.csv"
    write_csv(people_table, path)
    back = read_csv(path)
    assert back == people_table


def test_none_becomes_empty_cell_and_back(tmp_path):
    t = Table([{"id": 1, "a": None}], attributes=["a"])
    path = tmp_path / "t.csv"
    write_csv(t, path)
    assert read_csv(path).get(1)["a"] is None


def test_type_recovery(tmp_path):
    t = Table([{"id": 1, "n": 42, "f": 2.5, "s": "text"}], attributes=["n", "f", "s"])
    path = tmp_path / "t.csv"
    write_csv(t, path)
    rec = read_csv(path).get(1)
    assert rec["n"] == 42 and isinstance(rec["n"], int)
    assert rec["f"] == 2.5 and isinstance(rec["f"], float)
    assert rec["s"] == "text"


def test_id_column_first(tmp_path, people_table):
    path = tmp_path / "people.csv"
    write_csv(people_table, path)
    header = path.read_text().splitlines()[0]
    assert header.startswith("id,")


def test_read_missing_id_column(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(ValueError, match="no 'id' column"):
        read_csv(path)


def test_read_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_csv(path)


def test_custom_id_attr(tmp_path):
    t = Table([{"key": "x", "v": 1}], id_attr="key")
    path = tmp_path / "t.csv"
    write_csv(t, path)
    back = read_csv(path, id_attr="key")
    assert back.get("x")["v"] == 1
