"""Tests for Soundex and phonetic matching."""

import math

import pytest

from repro.text.phonetic import phonetic_match, soundex


class TestSoundex:
    @pytest.mark.parametrize(
        "name,code",
        [
            ("Robert", "r163"),
            ("Rupert", "r163"),
            ("Ashcraft", "a261"),
            ("Ashcroft", "a261"),
            ("Tymczak", "t522"),
            ("Pfister", "p236"),
            ("Honeyman", "h555"),
        ],
    )
    def test_reference_codes(self, name, code):
        # the canonical U.S. National Archives examples
        assert soundex(name) == code

    def test_sounds_alike_names_collide(self):
        assert soundex("smith") == soundex("smyth")

    def test_different_names_differ(self):
        assert soundex("washington") != soundex("jefferson")

    def test_short_name_zero_padded(self):
        assert soundex("lee") == "l000"

    def test_ignores_non_letters(self):
        assert soundex("o'brien") == soundex("obrien")

    def test_case_insensitive(self):
        assert soundex("MILLER") == soundex("miller")

    def test_none_and_empty(self):
        assert soundex(None) is None
        assert soundex("123") is None

    def test_always_four_chars(self):
        for name in ("a", "ab", "abcdefghij", "zzzzz"):
            assert len(soundex(name)) == 4


class TestPhoneticMatch:
    def test_match(self):
        assert phonetic_match("smith", "smyth") == 1.0

    def test_mismatch(self):
        assert phonetic_match("smith", "jones") == 0.0

    def test_missing_is_nan(self):
        assert math.isnan(phonetic_match(None, "smith"))
        assert math.isnan(phonetic_match("", "smith"))
