"""ShardedEntityStore: union-find parity and cross-shard merge semantics."""

import numpy as np
import pytest

from repro.incremental.store import EntityStore
from repro.shard import ShardedEntityStore, shard_of_record


def _records(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {
            "id": f"r{i}",
            "name": f"name-{int(rng.integers(1000))}",
            "city": None if i % 7 == 0 else f"city-{i % 5}",
        }
        for i in range(n)
    ]


def _mirrored(n_shards, records):
    classic = EntityStore()
    sharded = ShardedEntityStore(n_shards=n_shards)
    for rec in records:
        classic.add(rec)
        sharded.add(rec)
    return classic, sharded


class TestUnionFindParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 5, 16])
    def test_random_merge_sequence_matches_reference(self, n_shards):
        records = _records(80, seed=1)
        classic, sharded = _mirrored(n_shards, records)
        rng = np.random.default_rng(2)
        for _ in range(120):
            a, b = (f"r{int(i)}" for i in rng.integers(0, len(records), size=2))
            assert sharded.merge(a, b) == classic.merge(a, b)
        assert sharded.n_entities == classic.n_entities
        for rec in records:
            assert sharded.entity_of(rec["id"]) == classic.entity_of(rec["id"])
        assert sharded.entities() == classic.entities()
        assert set(sharded.clusters()) == set(classic.clusters())

    def test_add_returns_matching_singleton_ids(self):
        records = _records(10, seed=3)
        classic = EntityStore()
        sharded = ShardedEntityStore(n_shards=4)
        for rec in records:
            assert sharded.add(rec) == classic.add(rec)

    def test_payloads_round_trip_through_shards(self):
        records = _records(30, seed=4)
        _, sharded = _mirrored(3, records)
        for rec in records:
            assert sharded.get(rec["id"]) == rec
        assert sharded.records() == records

    def test_duplicate_id_rejected(self):
        sharded = ShardedEntityStore(n_shards=2)
        sharded.add({"id": "a", "name": "x"})
        with pytest.raises(ValueError, match="already in the store"):
            sharded.add({"id": "a", "name": "y"})


class TestCrossShardMerges:
    def _cross_shard_pair(self, n_shards, count=500):
        """Two record ids that hash into different payload shards."""
        for i in range(count):
            a, b = f"left-{i}", f"right-{i}"
            if shard_of_record(a, n_shards) != shard_of_record(b, n_shards):
                return a, b
        raise AssertionError("no cross-shard pair found")  # pragma: no cover

    @pytest.mark.parametrize("n_shards", [2, 5, 16])
    def test_cross_shard_merge_unifies_to_one_entity(self, n_shards):
        a, b = self._cross_shard_pair(n_shards)
        classic = EntityStore()
        sharded = ShardedEntityStore(n_shards=n_shards)
        for store in (classic, sharded):
            store.add({"id": a, "name": "same place"})
            store.add({"id": b, "name": "same place"})
        assert sharded.shard_of(a) != sharded.shard_of(b)
        assert sharded.merge(a, b) == classic.merge(a, b)
        assert sharded.entity_of(a) == sharded.entity_of(b) == classic.entity_of(a)
        assert sharded.n_entities == classic.n_entities == 1

    def test_merge_chain_spanning_every_shard(self):
        """A chain of merges across all shards collapses to the oldest ordinal."""
        n_shards = 8
        records = _records(64, seed=5)
        classic, sharded = _mirrored(n_shards, records)
        assert {shard_of_record(r["id"], n_shards) for r in records} == set(
            range(n_shards)
        )
        for rec in records[1:]:
            classic.merge(records[0]["id"], rec["id"])
            sharded.merge(records[0]["id"], rec["id"])
        assert sharded.entity_of(records[-1]["id"]) == "e0"
        assert sharded.entities() == classic.entities()


class TestSnapshotsAndState:
    def test_snapshot_matches_reference(self):
        records = _records(40, seed=6)
        classic, sharded = _mirrored(4, records)
        for i in range(0, 30, 3):
            classic.merge(f"r{i}", f"r{i + 1}")
            sharded.merge(f"r{i}", f"r{i + 1}")
        ours, ref = sharded.snapshot(), classic.snapshot()
        assert ours.n_records == ref.n_records
        assert ours.n_entities == ref.n_entities
        assert dict(ours.entities) == dict(ref.entities)
        assert dict(ours.assignments) == dict(ref.assignments)

    def test_to_state_round_trips_through_reference_store(self):
        records = _records(25, seed=7)
        classic, sharded = _mirrored(3, records)
        for i in range(0, 20, 4):
            classic.merge(f"r{i}", f"r{i + 2}")
            sharded.merge(f"r{i}", f"r{i + 2}")
        rebuilt = EntityStore.from_state(sharded.to_state())
        assert rebuilt.entities() == classic.entities()
        assert rebuilt.records() == classic.records()

    def test_shard_sizes_reports_every_shard(self):
        records = _records(40, seed=8)
        _, sharded = _mirrored(5, records)
        sizes = sharded.shard_sizes()
        assert [info["shard"] for info in sizes] == list(range(5))
        assert sum(info["records"] for info in sizes) == len(records)
        assert all(info["dirty"] for info in sizes)  # nothing saved yet
