"""Serving-layer integration tests: real sockets, real artifacts.

A model is fitted once (module-scoped) on the unambiguous 18-entity dedup
fixture and frozen to a versioned artifact template; each test copies the
template and runs a real :class:`~repro.serve.app.ServeApp` on an
ephemeral port, talking to it over HTTP with stdlib ``urllib``. Covered:

* endpoint round-trips (resolve / lookup / explain / healthz / metrics)
  and the protocol error envelope (400/404/405/409);
* micro-batching: concurrent resolves coalesce into fewer engine batches;
* hot reload: ``POST /admin/reload`` swaps to the artifact root's current
  version with **zero failed in-flight requests**, and the reloaded state
  equals a fresh :meth:`IncrementalResolver.load` of the same artifacts;
* ``/healthz`` surfacing the reliability layer's
  :class:`~repro.reliability.health.HealthReport` flags.
"""

import json
import shutil
import threading
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro import ERPipeline, IncrementalResolver
from repro.data.table import Table
from repro.reliability.health import EMPTY_CANDIDATE_SET
from repro.serve import BackgroundServer, ServeApp

_SUFFIXES = ("grill", "bistro", "cafe", "diner", "tavern", "kitchen")
_WORDS = (
    "harbor", "maple", "sunset", "copper", "willow", "granite",
    "juniper", "crimson", "meadow", "ivory", "cobalt", "timber",
    "velvet", "orchid", "saffron", "lagoon", "ember", "prairie",
)
_CITIES = ("oakland", "berkeley", "alameda")


def _record(entity: int, variant: str) -> dict:
    suffix = _SUFFIXES[entity % len(_SUFFIXES)]
    name = f"{_WORDS[entity]} {_WORDS[(entity + 7) % len(_WORDS)]} {suffix}"
    if variant == "c":
        name = f"{_WORDS[entity]} {suffix}"
    return {
        "id": f"{variant}{entity}",
        "name": name,
        "city": _CITIES[entity % len(_CITIES)],
        "phone": f"555-01{entity:02d}",
    }


def _call(base_url: str, path: str, method: str = "GET", body=None, raw: bytes | None = None):
    """One HTTP exchange; returns ``(status, parsed_json)`` even for errors."""
    data = raw if raw is not None else (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    request = Request(base_url + path, data=data, method=method)
    try:
        with urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def artifact_template(tmp_path_factory):
    """Fit once on the a/b variants and freeze to a versioned artifact dir."""
    initial = [_record(e, v) for e in range(18) for v in ("a", "b")]
    table = Table(initial, attributes=["name", "city", "phone"])
    pipeline = ERPipeline(blocking_attribute="name")
    pipeline.run(table)
    path = tmp_path_factory.mktemp("serve-template") / "artifacts"
    pipeline.freeze().save(path)
    return path


@pytest.fixture
def artifacts(artifact_template, tmp_path):
    """A private copy of the template, so tests can mutate freely."""
    dst = tmp_path / "artifacts"
    shutil.copytree(artifact_template, dst)
    return dst


@pytest.fixture
def server(artifacts):
    with BackgroundServer(ServeApp(artifacts, port=0, max_wait_ms=20.0)) as srv:
        yield srv


class TestEndpoints:
    def test_root_lists_the_surface(self, server):
        status, body = _call(server.base_url, "/")
        assert status == 200
        assert body["service"] == "repro-serve"
        assert body["artifact_version"] == "v000001"
        assert "POST /resolve" in body["endpoints"]

    def test_healthz_reports_store_index_and_version(self, server):
        status, body = _call(server.base_url, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["artifact_version"] == "v000001"
        assert body["store"] == {"records": 36, "entities": 6}
        assert body["index"]["records"] == 36
        assert body["health"]["ok"] is True

    def test_resolve_then_lookup_round_trip(self, server):
        status, body = _call(
            server.base_url, "/resolve", "POST", {"records": [_record(0, "c")]}
        )
        assert status == 200
        entity = body["assignments"]["c0"]
        assert body["threshold"] == 0.5
        assert any(m["right"] == "c0" for m in body["matches"])
        assert all(m["score"] > 0.5 for m in body["matches"])

        # lookup by record id and by entity id agree
        status, by_record = _call(server.base_url, "/lookup/c0")
        assert status == 200
        assert by_record["entity_id"] == entity
        assert "c0" in by_record["members"]
        status, by_entity = _call(server.base_url, f"/lookup/{entity}")
        assert status == 200
        assert by_entity["members"] == by_record["members"]
        assert {r["id"] for r in by_entity["records"]} == set(by_entity["members"])

    def test_explain_decomposes_a_stored_pair(self, server):
        status, body = _call(server.base_url, "/explain?left=a0&right=b0")
        assert status == 200
        assert body["posterior"] > 0.5
        # the decomposition is exact: prior + group contributions == log-odds
        total = body["prior_log_odds"] + sum(
            c["log_likelihood_ratio"] for c in body["contributions"]
        )
        assert abs(total - body["log_odds"]) < 1e-9
        # top=1 truncates to the single largest |contribution|
        status, top1 = _call(server.base_url, "/explain?left=a0&right=b0&top=1")
        assert status == 200
        assert len(top1["contributions"]) == 1

    def test_metrics_snapshot_counts_traffic(self, server):
        _call(server.base_url, "/resolve", "POST", {"records": [_record(2, "c")]})
        _call(server.base_url, "/healthz")
        status, body = _call(server.base_url, "/metrics")
        assert status == 200
        counters = body["metrics"]["counters"]
        # the /metrics request itself is counted after its handler snapshots
        assert counters["serve.requests"] >= 2
        assert counters["serve.requests.resolve"] == 1
        assert counters["serve.resolved.records"] == 1
        assert counters["serve.batches"] == 1
        assert body["metrics"]["gauges"]["serve.store.records"] == 37
        assert body["metrics"]["histograms"]["serve.latency_ms"]["count"] >= 2


class TestProtocolErrors:
    def test_error_envelope_shapes(self, server):
        cases = [
            # (path, method, body/raw, expected status, message fragment)
            ("/resolve", "POST", {"nope": 1}, 400, "unknown key"),
            ("/resolve", "POST", {"records": []}, 400, "non-empty"),
            ("/resolve", "GET", None, 405, "not allowed"),
            ("/lookup/zzz", "GET", None, 404, "no entity or record"),
            ("/explain?left=a0", "GET", None, 400, "both 'left' and 'right'"),
            ("/explain?left=a0&right=zzz", "GET", None, 404, "no record"),
            ("/nowhere", "GET", None, 404, "no route"),
        ]
        for path, method, body, expected, fragment in cases:
            status, payload = _call(server.base_url, path, method, body)
            assert status == expected, (path, status, payload)
            assert payload["status"] == expected
            assert fragment in payload["error"], (path, payload)

    def test_malformed_json_body_is_a_400(self, server):
        status, payload = _call(
            server.base_url, "/resolve", "POST", raw=b"this is not json"
        )
        assert status == 400
        assert "not valid JSON" in payload["error"]

    def test_bodyless_post_has_an_empty_body(self, server):
        """``curl -X POST .../admin/reload`` sends no Content-Length at all."""
        from http.client import HTTPConnection
        from urllib.parse import urlsplit

        netloc = urlsplit(server.base_url).netloc
        conn = HTTPConnection(netloc, timeout=30)
        try:
            # http.client omits Content-Length when body is None
            conn.request("POST", "/admin/reload")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["reloaded"] is True
            conn.request("POST", "/resolve")
            response = conn.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_duplicate_id_within_one_request_is_a_409(self, server):
        rec = _record(3, "c")
        status, payload = _call(
            server.base_url, "/resolve", "POST", {"records": [rec, dict(rec)]}
        )
        assert status == 409
        assert "appears twice" in payload["error"]

    def test_already_resolved_id_is_a_409_and_store_is_untouched(self, server):
        assert _call(
            server.base_url, "/resolve", "POST", {"records": [_record(4, "c")]}
        )[0] == 200
        status, payload = _call(
            server.base_url, "/resolve", "POST", {"records": [_record(4, "c")]}
        )
        assert status == 409
        assert "already resolved" in payload["error"]
        _, health = _call(server.base_url, "/healthz")
        assert health["store"]["records"] == 37  # the retry added nothing

    def test_conflicting_request_does_not_fail_cobatched_ones(self, server):
        """One 409 in a coalesced batch leaves the other requests whole."""
        results = {}
        barrier = threading.Barrier(3)

        def send(name, records):
            barrier.wait()
            results[name] = _call(
                server.base_url, "/resolve", "POST", {"records": records}
            )

        threads = [
            threading.Thread(target=send, args=("ok1", [_record(5, "c")])),
            threading.Thread(target=send, args=("dup", [_record(0, "a")])),  # exists
            threading.Thread(target=send, args=("ok2", [_record(6, "c")])),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert results["dup"][0] == 409
        assert results["ok1"][0] == 200
        assert results["ok2"][0] == 200


class TestMicroBatching:
    def test_concurrent_resolves_coalesce_into_fewer_batches(self, artifacts):
        """8 simultaneous one-record resolves reach the engine in < 8 passes."""
        app = ServeApp(artifacts, port=0, max_batch=64, max_wait_ms=150.0)
        with BackgroundServer(app) as server:
            n = 8
            barrier = threading.Barrier(n)
            statuses = []
            batch_sizes = []
            lock = threading.Lock()

            def send(i):
                barrier.wait()
                status, body = _call(
                    server.base_url,
                    "/resolve",
                    "POST",
                    {"records": [_record(i, "c")]},
                )
                with lock:
                    statuses.append(status)
                    batch_sizes.append(body["batch"]["requests"])

            threads = [threading.Thread(target=send, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)

            assert statuses == [200] * n
            # at least one engine pass carried multiple requests, and the
            # server-side batch counter agrees
            assert max(batch_sizes) >= 2
            _, metrics = _call(server.base_url, "/metrics")
            assert metrics["metrics"]["counters"]["serve.batches"] < n

    def test_cross_request_matches_within_one_batch(self, artifacts):
        """Two variants of the same entity arriving together still merge."""
        app = ServeApp(artifacts, port=0, max_batch=64, max_wait_ms=150.0)
        with BackgroundServer(app) as server:
            barrier = threading.Barrier(2)
            results = {}

            def send(name, rec):
                barrier.wait()
                results[name] = _call(
                    server.base_url, "/resolve", "POST", {"records": [rec]}
                )

            first = _record(7, "c")
            second = dict(_record(7, "c"), id="c7bis")
            threads = [
                threading.Thread(target=send, args=("first", first)),
                threading.Thread(target=send, args=("second", second)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)

            assert results["first"][0] == results["second"][0] == 200
            # both land in entity e7's cluster regardless of batching order
            assert (
                results["first"][1]["assignments"]["c7"]
                == results["second"][1]["assignments"]["c7bis"]
            )


class TestHotReload:
    def test_reload_equals_fresh_load(self, artifacts, server):
        """After save + reload, served state == IncrementalResolver.load()."""
        for i in (0, 1, 2):
            assert _call(
                server.base_url, "/resolve", "POST", {"records": [_record(i, "c")]}
            )[0] == 200
        status, saved = _call(server.base_url, "/admin/save", "POST")
        assert status == 200 and saved["saved_version"] == "v000002"

        # records resolved after the save exist only in memory...
        assert _call(
            server.base_url, "/resolve", "POST", {"records": [_record(3, "c")]}
        )[0] == 200
        status, reloaded = _call(server.base_url, "/admin/reload", "POST")
        assert status == 200
        assert reloaded.pop("server_time_ms") >= 0
        assert reloaded == {
            "reloaded": True,
            "previous_version": "v000001",
            "version": "v000002",
            "store_records": 39,
            "store_entities": 6,
        }

        # ...so the reload rolled them back to the saved artifact state,
        fresh = IncrementalResolver.load(artifacts)
        assert _call(server.base_url, "/lookup/c3")[0] == 404
        assert "c3" not in fresh.store
        # and what it serves now matches a fresh load exactly
        for rid in ("c0", "c1", "c2", "a0", "b17"):
            status, body = _call(server.base_url, f"/lookup/{rid}")
            assert status == 200
            assert body["entity_id"] == fresh.store.entity_of(rid)
            assert body["members"] == fresh.store.members(body["entity_id"])
        _, health = _call(server.base_url, "/healthz")
        assert health["artifact_version"] == "v000002"
        assert health["reloads"] == 1
        assert health["store"]["records"] == len(fresh.store)

    def test_zero_failed_in_flight_requests_during_reload(self, artifacts):
        """Resolves hammering the server across repeated hot reloads all succeed."""
        app = ServeApp(artifacts, port=0, max_batch=16, max_wait_ms=5.0)
        with BackgroundServer(app) as server:
            # publish a second version so reloads genuinely swap directories
            assert _call(server.base_url, "/admin/save", "POST")[0] == 200

            n_threads, per_thread = 6, 8
            statuses = []
            lock = threading.Lock()
            start = threading.Barrier(n_threads + 1)

            def resolve_worker(worker: int):
                start.wait()
                for j in range(per_thread):
                    rid = f"w{worker}x{j}"
                    rec = dict(_record((worker + j) % 18, "c"), id=rid)
                    status, body = _call(
                        server.base_url, "/resolve", "POST", {"records": [rec]}
                    )
                    with lock:
                        statuses.append((status, body.get("error")))

            threads = [
                threading.Thread(target=resolve_worker, args=(w,))
                for w in range(n_threads)
            ]
            for t in threads:
                t.start()
            start.wait()
            reload_statuses = [
                _call(server.base_url, "/admin/reload", "POST")[0] for _ in range(5)
            ]
            for t in threads:
                t.join(timeout=120)

            assert reload_statuses == [200] * 5
            failed = [s for s in statuses if s[0] != 200]
            assert failed == [], failed
            assert len(statuses) == n_threads * per_thread
            _, health = _call(server.base_url, "/healthz")
            assert health["reloads"] == 5
            assert health["artifact_version"] == "v000002"

    def test_failed_reload_keeps_previous_version_serving(self, artifacts, server):
        (artifacts / "CURRENT").write_text("v999999\n", encoding="utf-8")
        status, payload = _call(server.base_url, "/admin/reload", "POST")
        assert status == 503
        assert "previous version still serving" in payload["error"]
        # the old resolver still answers
        assert _call(server.base_url, "/lookup/a0")[0] == 200
        _, health = _call(server.base_url, "/healthz")
        assert health["artifact_version"] == "v000001"
        # the failure is on the health record now
        assert health["status"] == "error"
        assert any(
            f["condition"] == "serve_reload_failed"
            for f in health["health"]["flags"]
        )


class TestHealthSurfacing:
    def test_degraded_resolve_surfaces_health_flags(self, server):
        """A no-candidate batch flags EMPTY_CANDIDATE_SET on /healthz."""
        alien = {
            "id": "alien1",
            "name": "xqzzt qwrrgh",
            "city": "nowhere",
            "phone": "000-0000",
        }
        status, body = _call(
            server.base_url, "/resolve", "POST", {"records": [alien]}
        )
        assert status == 200
        assert body["matches"] == []
        assert body["assignments"]["alien1"].startswith("e")

        status, health = _call(server.base_url, "/healthz")
        assert status == 200  # warnings degrade, they don't fail liveness
        assert health["status"] == "ok"
        assert health["degraded"] is True
        conditions = {f["condition"] for f in health["health"]["flags"]}
        assert EMPTY_CANDIDATE_SET in conditions
