"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import confusion_counts, f_score, precision_recall_f1


class TestConfusionCounts:
    def test_all_quadrants(self):
        counts = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert counts == {"tp": 1, "fn": 1, "fp": 1, "tn": 1}

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            confusion_counts([0, 2], [0, 1])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            confusion_counts([0, 1], [0, 1, 1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            confusion_counts([[0, 1]], [[0, 1]])


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert precision_recall_f1([1, 0, 1], [1, 0, 1]) == (1.0, 1.0, 1.0)

    def test_known_values(self):
        # tp=2, fp=1, fn=2 -> P=2/3, R=1/2, F1=4/7
        y_true = [1, 1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 0, 1, 0]
        p, r, f1 = precision_recall_f1(y_true, y_pred)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(1 / 2)
        assert f1 == pytest.approx(4 / 7)

    def test_nothing_predicted_positive(self):
        p, r, f1 = precision_recall_f1([1, 0], [0, 0])
        assert p == 1.0 and r == 0.0 and f1 == 0.0

    def test_no_true_positives_to_find(self):
        p, r, f1 = precision_recall_f1([0, 0], [0, 0])
        assert p == 1.0 and r == 1.0 and f1 == 1.0

    def test_f_score_shortcut(self):
        assert f_score([1, 0], [1, 0]) == 1.0

    def test_numpy_inputs(self):
        assert f_score(np.array([1.0, 0.0]), np.array([1, 0])) == 1.0

    def test_imbalanced_case(self):
        # 1000 negatives predicted fine; 1 of 10 positives found
        y_true = [1] * 10 + [0] * 1000
        y_pred = [1] + [0] * 9 + [0] * 1000
        p, r, f1 = precision_recall_f1(y_true, y_pred)
        assert p == 1.0
        assert r == pytest.approx(0.1)
        assert f1 == pytest.approx(2 * 0.1 / 1.1)
