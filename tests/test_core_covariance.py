"""Tests for weighted moments and the shared-correlation decomposition (§4)."""

import numpy as np
import pytest

from repro.core.covariance import (
    pooled_correlation_blocks,
    rescale_to_correlation,
    weighted_covariance,
    weighted_mean,
)


class TestWeightedMean:
    def test_uniform_weights_is_plain_mean(self, rng):
        X = rng.random((30, 3))
        w = np.ones(30)
        assert np.allclose(weighted_mean(X, w), X.mean(axis=0))

    def test_hard_weights_select_subset(self, rng):
        X = rng.random((10, 2))
        w = np.zeros(10)
        w[:3] = 1.0
        assert np.allclose(weighted_mean(X, w), X[:3].mean(axis=0))

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="zero"):
            weighted_mean(np.ones((3, 2)), np.zeros(3))


class TestWeightedCovariance:
    def test_uniform_equals_ml_covariance(self, rng):
        X = rng.random((100, 3))
        w = np.ones(100)
        mean = X.mean(axis=0)
        expected = (X - mean).T @ (X - mean) / 100
        assert np.allclose(weighted_covariance(X, w, mean), expected)

    def test_symmetric_psd(self, rng):
        X = rng.random((50, 4))
        w = rng.random(50)
        mean = weighted_mean(X, w)
        S = weighted_covariance(X, w, mean)
        assert np.allclose(S, S.T)
        assert np.all(np.linalg.eigvalsh(S) > -1e-10)

    def test_soft_weights_interpolate(self, rng):
        X = np.array([[0.0], [1.0]])
        S_first = weighted_covariance(X, np.array([1.0, 0.0]), np.array([0.0]))
        assert S_first[0, 0] == pytest.approx(0.0)
        S_both = weighted_covariance(X, np.array([1.0, 1.0]), np.array([0.5]))
        assert S_both[0, 0] == pytest.approx(0.25)


class TestPooledCorrelation:
    def test_blocks_match_numpy_corrcoef(self, rng):
        X = rng.random((200, 4))
        blocks = pooled_correlation_blocks(X, [[0, 1], [2, 3]])
        expected01 = np.corrcoef(X[:, 0], X[:, 1])[0, 1]
        assert blocks[0][0, 1] == pytest.approx(expected01, abs=1e-10)

    def test_unit_diagonals(self, rng):
        X = rng.random((50, 3))
        for block in pooled_correlation_blocks(X, [[0], [1, 2]]):
            assert np.allclose(np.diag(block), 1.0)

    def test_constant_feature_zero_correlation(self):
        X = np.column_stack([np.ones(20), np.linspace(0, 1, 20)])
        block = pooled_correlation_blocks(X, [[0, 1]])[0]
        assert block[0, 1] == 0.0

    def test_correlated_copies_detected(self, grouped_mixture):
        X, _y, groups = grouped_mixture
        blocks = pooled_correlation_blocks(X, groups)
        # within-group features are near-copies -> correlation close to 1
        assert blocks[0][0, 1] > 0.9
        assert blocks[1][0, 1] > 0.9


class TestRescaleToCorrelation:
    def test_preserves_diagonal(self, rng):
        A = rng.normal(size=(3, 3))
        S = A @ A.T + np.eye(3)
        R = np.eye(3)
        out = rescale_to_correlation(S, R)
        assert np.allclose(np.diag(out), np.diag(S))

    def test_identity_correlation_gives_diagonal(self, rng):
        A = rng.normal(size=(3, 3))
        S = A @ A.T + np.eye(3)
        out = rescale_to_correlation(S, np.eye(3))
        assert np.allclose(out, np.diag(np.diag(S)))

    def test_lambda_r_lambda_identity(self, rng):
        # decomposing a covariance into Λ R Λ with its own correlation
        # reconstructs the original matrix (Equation 14)
        A = rng.normal(size=(4, 4))
        S = A @ A.T + 0.5 * np.eye(4)
        std = np.sqrt(np.diag(S))
        R_own = S / np.outer(std, std)
        assert np.allclose(rescale_to_correlation(S, R_own), S)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="disagree"):
            rescale_to_correlation(np.eye(2), np.eye(3))

    def test_parameter_sharing_effect(self, grouped_mixture):
        # S_M rebuilt with pooled R keeps M's scale but borrows structure
        X, y, groups = grouped_mixture
        pooled = pooled_correlation_blocks(X, groups)
        w = y  # hard match weights
        sub = X[:, groups[0]]
        mean = weighted_mean(sub, w)
        S_m = weighted_covariance(sub, w, mean)
        rebuilt = rescale_to_correlation(S_m, pooled[0])
        assert np.allclose(np.diag(rebuilt), np.diag(S_m))
        assert rebuilt[0, 1] != pytest.approx(S_m[0, 1], rel=1e-6)
