"""The columnar batch kernels agree with the scalar similarity functions."""

import math

import numpy as np
import pytest

from repro.text.batch import (
    batch_jaro_winkler,
    batch_levenshtein_similarity,
    batch_monge_elkan_jw,
    batch_tfidf_cosine,
    cosine_from_stats,
    dice_from_stats,
    jaccard_from_stats,
    overlap_from_stats,
    qgram_pair_stats_indexed,
    token_pair_stats,
)
from repro.text.similarity import monge_elkan
from repro.text.tokenizers import QgramTokenizer
from repro.text.similarity import (
    build_idf,
    cosine,
    dice,
    jaccard,
    jaro_winkler,
    levenshtein_similarity,
    overlap_coefficient,
    tfidf_cosine,
)

_WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]


def _random_sets(rng, n, include_missing=True):
    out = []
    for _ in range(n):
        roll = rng.random()
        if include_missing and roll < 0.1:
            out.append(None)
        elif roll < 0.2:
            out.append(frozenset())
        else:
            k = int(rng.integers(1, 6))
            out.append(frozenset(rng.choice(_WORDS, size=k, replace=False)))
    return out


def _assert_matches_scalar(batch_col, scalar_fn, a_list, b_list):
    for got, a, b in zip(batch_col, a_list, b_list):
        want = scalar_fn(a, b)
        if math.isnan(want):
            assert math.isnan(got), (a, b, got)
        else:
            assert got == want, (a, b, got, want)


class TestTokenStats:
    def test_all_set_measures_match_scalar(self):
        rng = np.random.default_rng(7)
        a = _random_sets(rng, 300)
        b = _random_sets(rng, 300)
        stats = token_pair_stats(a, b)
        _assert_matches_scalar(jaccard_from_stats(stats), jaccard, a, b)
        _assert_matches_scalar(cosine_from_stats(stats), cosine, a, b)
        _assert_matches_scalar(dice_from_stats(stats), dice, a, b)
        _assert_matches_scalar(overlap_from_stats(stats), overlap_coefficient, a, b)

    def test_both_empty_is_one_one_empty_is_zero(self):
        empty, full = frozenset(), frozenset({"x"})
        stats = token_pair_stats([empty, empty], [empty, full])
        assert jaccard_from_stats(stats).tolist() == [1.0, 0.0]
        assert cosine_from_stats(stats).tolist() == [1.0, 0.0]

    def test_missing_side_is_nan(self):
        stats = token_pair_stats([None, frozenset({"x"})], [frozenset({"x"}), None])
        assert np.all(np.isnan(jaccard_from_stats(stats)))

    def test_all_pairs_missing(self):
        stats = token_pair_stats([None, None], [None, frozenset({"x"})])
        col = dice_from_stats(stats)
        assert np.all(np.isnan(col)) and len(col) == 2

    def test_empty_batch(self):
        stats = token_pair_stats([], [])
        assert len(jaccard_from_stats(stats)) == 0

    def test_shared_objects_deduplicate(self):
        # the same prepared frozenset object repeated across pairs (how the
        # feature generator calls this) must not change results
        s1, s2 = frozenset({"a", "b"}), frozenset({"b", "c"})
        a = [s1, s1, s1]
        b = [s2, s2, s1]
        stats = token_pair_stats(a, b)
        assert stats.intersection.tolist() == [1, 1, 2]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="aligned"):
            token_pair_stats([frozenset()], [])


class TestQgramStats:
    """The numeric q-gram fast path agrees with tokenizer-built sets."""

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_matches_tokenizer_sets(self, q):
        tok = QgramTokenizer(q=q)
        strings = [
            "golden dragon", "Golden Dragon", "blue lotus cafe", "", None,
            "a", "ab", "𝕏-ray 𝄞 notation", "naïve ☕", "repeat repeat repeat",
        ]
        rng = np.random.default_rng(3)
        ua = rng.integers(0, len(strings), size=60)
        ub = rng.integers(0, len(strings), size=60)
        stats = qgram_pair_stats_indexed(strings, ua, strings, ub, q=q)
        sets = [None if s is None else frozenset(tok(s)) for s in strings]
        for k, (i, j) in enumerate(zip(ua, ub)):
            sa, sb = sets[int(i)], sets[int(j)]
            if sa is None or sb is None:
                assert stats.missing[k]
                continue
            assert not stats.missing[k]
            assert stats.size_a[k] == len(sa)
            assert stats.size_b[k] == len(sb)
            assert stats.intersection[k] == len(sa & sb), (strings[int(i)], strings[int(j)])

    def test_unpadded_multichar_rejected(self):
        with pytest.raises(ValueError, match="padded"):
            qgram_pair_stats_indexed(["ab"], np.array([0]), ["ab"], np.array([0]), q=3, padded=False)


class TestBatchMongeElkan:
    def test_matches_scalar(self):
        rng = np.random.default_rng(17)
        bags = []
        for _ in range(24):
            roll = rng.random()
            if roll < 0.1:
                bags.append(None)
            elif roll < 0.2:
                bags.append(())
            else:
                bags.append(tuple(rng.choice(_WORDS, size=int(rng.integers(1, 5)))))
        a = [bags[int(i)] for i in rng.integers(0, len(bags), size=150)]
        b = [bags[int(i)] for i in rng.integers(0, len(bags), size=150)]
        col = batch_monge_elkan_jw(a, b)
        assert col is not None
        for got, x, y in zip(col, a, b):
            want = monge_elkan(x, y, symmetric=True)
            if math.isnan(want):
                assert math.isnan(got)
            else:
                assert got == pytest.approx(want, rel=1e-12, abs=1e-12)

    def test_empty_and_missing(self):
        col = batch_monge_elkan_jw([(), (), None], [(), ("a",), ("a",)])
        assert col[0] == 1.0 and col[1] == 0.0 and math.isnan(col[2])


class TestBatchTfidf:
    def test_matches_scalar(self):
        rng = np.random.default_rng(13)
        docs = [list(rng.choice(_WORDS, size=int(rng.integers(1, 6)))) for _ in range(30)]
        idf = build_idf(docs)
        a = [None if rng.random() < 0.1 else list(rng.choice(_WORDS + ["oov1"], size=int(rng.integers(0, 5)))) for _ in range(200)]
        b = [None if rng.random() < 0.1 else list(rng.choice(_WORDS + ["oov2"], size=int(rng.integers(0, 5)))) for _ in range(200)]
        col = batch_tfidf_cosine(a, b, idf)
        for got, x, y in zip(col, a, b):
            want = tfidf_cosine(x, y, idf)
            if math.isnan(want):
                assert math.isnan(got)
            else:
                assert got == pytest.approx(want, rel=1e-12, abs=1e-12)

    def test_repeated_tokens_use_term_frequency(self):
        idf = {"a": 1.0, "b": 1.0}
        got = batch_tfidf_cosine([["a", "a", "b"]], [["a", "b", "b"]], idf)[0]
        assert got == pytest.approx(tfidf_cosine(["a", "a", "b"], ["a", "b", "b"], idf))

    def test_explicit_default_idf(self):
        idf = {"a": 2.0}
        got = batch_tfidf_cosine([["zzz"]], [["zzz"]], idf, default_idf=5.0)[0]
        assert got == pytest.approx(tfidf_cosine(["zzz"], ["zzz"], idf, default_idf=5.0))

    def test_empty_and_missing(self):
        col = batch_tfidf_cosine([[], [], None], [[], ["a"], ["a"]], {"a": 1.0})
        assert col[0] == 1.0 and col[1] == 0.0 and math.isnan(col[2])


def _random_strings(rng, n, alphabet="abcdef ", lengths=(0, 1, 3, 5, 8)):
    out = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.08:
            out.append(None)
            continue
        length = int(rng.choice(lengths))
        out.append("".join(rng.choice(list(alphabet), size=length)))
    return out


class TestBatchEdit:
    @pytest.mark.parametrize(
        "batch_fn,scalar_fn",
        [
            (batch_levenshtein_similarity, levenshtein_similarity),
            (batch_jaro_winkler, jaro_winkler),
        ],
    )
    def test_matches_scalar_on_random_strings(self, batch_fn, scalar_fn):
        rng = np.random.default_rng(29)
        # few distinct lengths → large buckets → the vectorized DP path runs
        a = _random_strings(rng, 400)
        b = _random_strings(rng, 400)
        _assert_matches_scalar(batch_fn(a, b), scalar_fn, a, b)

    @pytest.mark.parametrize(
        "batch_fn,scalar_fn",
        [
            (batch_levenshtein_similarity, levenshtein_similarity),
            (batch_jaro_winkler, jaro_winkler),
        ],
    )
    def test_small_buckets_use_scalar_fallback(self, batch_fn, scalar_fn):
        # every (len_a, len_b) combination distinct → bucket size 1 each
        a = ["a", "ab", "abc", "abcd", None, ""]
        b = ["abcdz", "xyzw", "ab", "a", "x", "nonempty"]
        _assert_matches_scalar(batch_fn(a, b), scalar_fn, a, b)

    def test_non_bmp_unicode(self):
        # astral-plane characters exercise the utf-32 encoding path: one
        # code unit per character, matching python-level len()
        a = ["𝕏ray", "𝕏ray", "na\U0001F600me", "𝄞𝄞𝄞𝄞"] * 2
        b = ["𝕏ray", "xray", "na\U0001F601me", "𝄞𝄞x𝄞"] * 2
        _assert_matches_scalar(batch_levenshtein_similarity(a, b), levenshtein_similarity, a, b)
        _assert_matches_scalar(batch_jaro_winkler(a, b), jaro_winkler, a, b)

    def test_equal_and_empty_short_circuits(self):
        a = ["same", "", "", None]
        b = ["same", "", "x", "x"]
        lev = batch_levenshtein_similarity(a, b)
        assert lev[0] == 1.0 and lev[1] == 1.0 and lev[2] == 0.0 and math.isnan(lev[3])
        jw = batch_jaro_winkler(a, b)
        assert jw[0] == 1.0 and jw[1] == 1.0 and jw[2] == 0.0 and math.isnan(jw[3])

    def test_duplicate_pairs_computed_once_and_scattered(self):
        a = ["kitten"] * 50 + ["flour"]
        b = ["sitting"] * 50 + ["flower"]
        col = batch_levenshtein_similarity(a, b)
        assert np.allclose(col[:50], levenshtein_similarity("kitten", "sitting"))
        assert col[50] == levenshtein_similarity("flour", "flower")

    def test_transpositions_in_vectorized_jaro(self):
        # classic transposition-heavy cases, repeated to exceed the scalar
        # fallback threshold so the vectorized path is exercised
        pairs = [("martha", "marhta"), ("dwayne", "duane"), ("dixon", "dicksonx")]
        for x, y in pairs:
            a, b = [x] * 6, [y] * 6
            got = batch_jaro_winkler(a, b)
            assert np.allclose(got, jaro_winkler(x, y))
            assert got[0] == jaro_winkler(x, y)
