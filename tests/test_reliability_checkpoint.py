"""Checkpoint store + resumable EM: an interrupted fit continues bit-for-bit."""

import json

import numpy as np
import pytest

from repro import ERPipeline, ZeroER, ZeroERConfig, load_benchmark
from repro.reliability import (
    EM_RESUMED_FROM_CHECKPOINT,
    EM_TIME_BUDGET_EXHAUSTED,
    CheckpointError,
    CheckpointStore,
    FitControls,
    HealthReport,
    health_scope,
)
from repro.reliability.faultinject import flip_byte


class TestCheckpointStore:
    def test_save_latest_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        arrays = {"gamma": np.linspace(0.0, 1.0, 7), "tail": np.zeros((2, 7))}
        store.save({"iteration": 3, "note": "hello"}, arrays)
        meta, loaded = store.latest()
        assert meta["iteration"] == 3
        assert meta["note"] == "hello"
        np.testing.assert_array_equal(loaded["gamma"], arrays["gamma"])
        np.testing.assert_array_equal(loaded["tail"], arrays["tail"])

    def test_latest_is_newest_iteration(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", keep=5)
        for i in (1, 2, 3):
            store.save({"iteration": i}, {"x": np.array([float(i)])})
        meta, arrays = store.latest()
        assert meta["iteration"] == 3
        assert arrays["x"][0] == 3.0

    def test_prunes_beyond_keep(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", keep=2)
        for i in range(5):
            store.save({"iteration": i}, {"x": np.zeros(1)})
        assert len(store) == 2
        assert [p.name for p in store.paths()] == ["ckpt-000003", "ckpt-000004"]

    def test_resaving_an_iteration_replaces_it(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save({"iteration": 1, "v": "old"}, {"x": np.zeros(1)})
        store.save({"iteration": 1, "v": "new"}, {"x": np.ones(1)})
        meta, arrays = store.latest()
        assert meta["v"] == "new"
        assert arrays["x"][0] == 1.0

    def test_corrupt_newest_walks_back_and_quarantines(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", keep=3)
        store.save({"iteration": 1, "good": True}, {"x": np.array([1.0])})
        newest = store.save({"iteration": 2, "good": False}, {"x": np.array([2.0])})
        flip_byte(newest / "arrays.npz")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt checkpoint"):
            meta, arrays = store.latest()
        assert meta["iteration"] == 1
        assert arrays["x"][0] == 1.0
        assert (tmp_path / "ck" / "ckpt-000002.corrupt").is_dir()

    def test_all_corrupt_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        saved = store.save({"iteration": 1}, {"x": np.zeros(1)})
        (saved / "state.json").write_text("garbage {")
        with pytest.warns(RuntimeWarning):
            assert store.latest() is None

    def test_empty_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "nowhere")
        assert store.latest() is None
        assert len(store) == 0
        store.clear()  # clearing an empty store is fine

    def test_clear_removes_everything(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", keep=5)
        for i in range(3):
            store.save({"iteration": i}, {"x": np.zeros(1)})
        store.clear()
        assert len(store) == 0

    def test_save_requires_iteration(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        with pytest.raises(KeyError):
            store.save({"no_iteration": True}, {"x": np.zeros(1)})

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)

    def test_checkpoint_is_checksummed(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        saved = store.save({"iteration": 1}, {"x": np.zeros(1)})
        payload = json.loads((saved / "checksums.json").read_text())
        assert set(payload["files"]) == {"state.json", "arrays.npz"}


class TestFitControls:
    def test_defaults_are_valid(self):
        controls = FitControls()
        assert controls.checkpoint is None
        assert not controls.resume

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            FitControls(checkpoint_every=0)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="time_budget_s"):
            FitControls(time_budget_s=-1.0)

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="resume"):
            FitControls(resume=True)


class TestResumableEM:
    @pytest.fixture
    def config(self):
        return ZeroERConfig(transitivity=False)

    def test_budget_zero_stops_after_first_iteration(self, separable_mixture, config):
        X, _y = separable_mixture
        model = ZeroER(config)
        health = HealthReport()
        with health_scope(health):
            model.fit(X, controls=FitControls(time_budget_s=0.0))
        assert not model.converged_
        assert model.history_.n_iterations == 1
        assert health.has(EM_TIME_BUDGET_EXHAUSTED)

    def test_budget_stop_always_checkpoints(self, separable_mixture, config, tmp_path):
        X, _y = separable_mixture
        store = CheckpointStore(tmp_path / "ck")
        # cadence of 50 would never fire in one iteration; the budget stop
        # must save anyway, or --resume would lose the stopping point
        controls = FitControls(checkpoint=store, checkpoint_every=50, time_budget_s=0.0)
        ZeroER(config).fit(X, controls=controls)
        assert len(store) == 1

    def test_resume_reproduces_uninterrupted_fit(self, separable_mixture, config, tmp_path):
        X, _y = separable_mixture
        store = CheckpointStore(tmp_path / "ck")

        interrupted = ZeroER(config)
        interrupted.fit(
            X, controls=FitControls(checkpoint=store, checkpoint_every=1, time_budget_s=0.0)
        )
        assert not interrupted.converged_

        health = HealthReport()
        resumed = ZeroER(config)
        with health_scope(health):
            resumed.fit(X, controls=FitControls(checkpoint=store, resume=True))
        assert health.has(EM_RESUMED_FROM_CHECKPOINT)

        baseline = ZeroER(config).fit(X)
        assert resumed.converged_ == baseline.converged_
        # the restored LL trace is part of the resumed history, so the full
        # trace matches the uninterrupted run's exactly
        assert resumed.history_.log_likelihoods == baseline.history_.log_likelihoods
        np.testing.assert_allclose(
            resumed.predict_proba(X), baseline.predict_proba(X), rtol=0.0, atol=1e-12
        )

    def test_resume_with_no_checkpoint_starts_fresh(self, separable_mixture, config, tmp_path):
        X, _y = separable_mixture
        store = CheckpointStore(tmp_path / "empty")
        resumed = ZeroER(config)
        resumed.fit(X, controls=FitControls(checkpoint=store, resume=True))
        baseline = ZeroER(config).fit(X)
        np.testing.assert_array_equal(resumed.predict_proba(X), baseline.predict_proba(X))

    def test_fingerprint_mismatch_is_rejected(self, separable_mixture, tmp_path):
        X, _y = separable_mixture
        store = CheckpointStore(tmp_path / "ck")
        ZeroER(ZeroERConfig(transitivity=False)).fit(
            X, controls=FitControls(checkpoint=store, time_budget_s=0.0)
        )
        other_config = ZeroERConfig(transitivity=False, kappa=0.3)
        with pytest.raises(CheckpointError, match="does not match"):
            ZeroER(other_config).fit(X, controls=FitControls(checkpoint=store, resume=True))

    def test_different_data_is_rejected(self, separable_mixture, tmp_path):
        X, _y = separable_mixture
        store = CheckpointStore(tmp_path / "ck")
        config = ZeroERConfig(transitivity=False)
        ZeroER(config).fit(X, controls=FitControls(checkpoint=store, time_budget_s=0.0))
        with pytest.raises(CheckpointError, match="does not match"):
            ZeroER(config).fit(
                X[: len(X) // 2], controls=FitControls(checkpoint=store, resume=True)
            )


class TestResumableLinkage:
    def test_pipeline_resume_reproduces_uninterrupted_run(self, tmp_path):
        ds = load_benchmark("rest_fz", scale="tiny", seed=7)
        store = CheckpointStore(tmp_path / "ck")

        interrupted = ERPipeline(
            blocking_attribute="name",
            fit_controls=FitControls(checkpoint=store, checkpoint_every=1, time_budget_s=0.0),
        )
        interrupted.run(ds.left, ds.right)
        assert not interrupted.model_.history_.converged
        assert len(store) >= 1

        resumed = ERPipeline(
            blocking_attribute="name",
            fit_controls=FitControls(checkpoint=store, resume=True),
        )
        result_resumed = resumed.run(ds.left, ds.right)

        baseline = ERPipeline(blocking_attribute="name")
        result_baseline = baseline.run(ds.left, ds.right)

        assert result_resumed.pairs == result_baseline.pairs
        np.testing.assert_allclose(
            result_resumed.scores, result_baseline.scores, rtol=0.0, atol=1e-12
        )
