"""Tests for match-set post-processing."""

import numpy as np
import pytest

from repro.eval.matching import greedy_one_to_one, score_threshold_matches


class TestScoreThreshold:
    def test_basic(self):
        pairs = [("a", "x"), ("b", "y"), ("c", "z")]
        scores = np.array([0.9, 0.4, 0.6])
        assert score_threshold_matches(pairs, scores) == [("a", "x"), ("c", "z")]

    def test_custom_threshold(self):
        pairs = [("a", "x")]
        assert score_threshold_matches(pairs, np.array([0.3]), threshold=0.2) == [("a", "x")]

    def test_strictly_greater(self):
        assert score_threshold_matches([("a", "x")], np.array([0.5])) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="pairs"):
            score_threshold_matches([("a", "x")], np.array([0.5, 0.6]))
        with pytest.raises(ValueError, match="threshold"):
            score_threshold_matches([("a", "x")], np.array([0.5]), threshold=2.0)


class TestGreedyOneToOne:
    def test_conflict_resolved_by_score(self):
        pairs = [("a", "x"), ("a", "y"), ("b", "x")]
        scores = np.array([0.95, 0.8, 0.9])
        out = greedy_one_to_one(pairs, scores)
        assert out == [("a", "x")]  # both alternatives blocked by the winner

    def test_non_conflicting_pairs_all_kept(self):
        pairs = [("a", "x"), ("b", "y")]
        scores = np.array([0.7, 0.9])
        out = greedy_one_to_one(pairs, scores)
        assert set(out) == set(pairs)
        assert out[0] == ("b", "y")  # descending score order

    def test_threshold_filters(self):
        pairs = [("a", "x"), ("b", "y")]
        scores = np.array([0.9, 0.4])
        assert greedy_one_to_one(pairs, scores) == [("a", "x")]

    def test_each_endpoint_used_once(self):
        rng = np.random.default_rng(0)
        pairs = [(f"l{i % 5}", f"r{i % 7}") for i in range(35)]
        scores = rng.random(35)
        out = greedy_one_to_one(pairs, scores, threshold=0.0)
        lefts = [a for a, _ in out]
        rights = [b for _, b in out]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_deterministic_tie_break(self):
        pairs = [("a", "x"), ("b", "y")]
        scores = np.array([0.8, 0.8])
        assert greedy_one_to_one(pairs, scores)[0] == ("a", "x")

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_one_to_one([("a", "x")], np.array([0.5, 0.5]))
