"""ShardedTokenIndex: candidate parity with the unsharded reference index."""

import numpy as np
import pytest

import repro.shard.index as shard_index
from repro.incremental.index import IncrementalTokenIndex
from repro.shard import ShardedTokenIndex, shard_of_token

_WORDS = (
    "harbor", "maple", "sunset", "copper", "willow", "granite",
    "juniper", "crimson", "meadow", "ivory", "cobalt", "timber",
    "velvet", "orchid", "saffron", "lagoon", "ember", "prairie",
    "quartz", "falcon", "aurora", "basalt", "cedar", "delta",
)


def _records(n, seed=0, n_tokens=4):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        words = rng.choice(len(_WORDS), size=n_tokens, replace=True)
        out.append({"id": f"r{i}", "name": " ".join(_WORDS[w] for w in words)})
    return out


def _pair(n_shards, **kwargs):
    classic = IncrementalTokenIndex("name", **kwargs)
    sharded = ShardedTokenIndex("name", n_shards=n_shards, **kwargs)
    return classic, sharded


def _assert_same_candidates(classic, sharded, probes, top_k=None):
    for probe in probes:
        assert sharded.candidates(probe, top_k=top_k) == classic.candidates(
            probe, top_k=top_k
        ), f"divergence on probe {probe['id']!r}"


class TestCandidateParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 5, 16])
    def test_matches_reference_for_any_shard_count(self, n_shards):
        classic, sharded = _pair(n_shards, max_df=0.5, top_k=10)
        records = _records(120, seed=1)
        classic.add(records)
        sharded.add(records)
        _assert_same_candidates(classic, sharded, _records(40, seed=2))

    def test_probe_then_add_sequence(self):
        """Interleaved probe/add: df caps and postings grow mid-stream."""
        classic, sharded = _pair(4, max_df=0.3, top_k=8)
        seed_records = _records(50, seed=3)
        classic.add(seed_records)
        sharded.add(seed_records)
        for i, rec in enumerate(_records(60, seed=4)):
            rec = dict(rec, id=f"s{i}")
            assert sharded.candidates(rec) == classic.candidates(rec)
            classic.add([rec])
            sharded.add([rec])

    def test_indexed_probe_excludes_itself(self):
        classic, sharded = _pair(3, max_df=0.9)
        records = _records(30, seed=5)
        classic.add(records)
        sharded.add(records)
        _assert_same_candidates(classic, sharded, records)

    def test_df_pruning_uses_global_frequency(self):
        """A token over the df cap is pruned in whichever shard it lives."""
        classic, sharded = _pair(4, max_df=0.2)
        records = [{"id": f"c{i}", "name": f"common word{i}"} for i in range(20)]
        classic.add(records)
        sharded.add(records)
        probe = {"id": "p", "name": "common word3"}
        assert sharded.candidates(probe) == classic.candidates(probe)
        # "common" has df 20 > cap 4, so only "word3" contributes
        assert classic.candidates(probe) == [("c3", 1)]

    def test_sealing_and_compaction_preserve_results(self, monkeypatch):
        monkeypatch.setattr(shard_index, "SEAL_TAIL_ENTRIES", 8)
        monkeypatch.setattr(shard_index, "_MAX_SEGMENTS", 3)
        classic, sharded = _pair(2, max_df=0.8, top_k=12)
        for chunk_seed in range(6):
            chunk = [
                dict(rec, id=f"k{chunk_seed}-{i}")
                for i, rec in enumerate(_records(25, seed=10 + chunk_seed))
            ]
            classic.add(chunk)
            sharded.add(chunk)
            _assert_same_candidates(classic, sharded, _records(10, seed=99))
        assert any(info["segments"] > 0 for info in sharded.shard_sizes())

    def test_empty_index_returns_no_candidates(self):
        _, sharded = _pair(4)
        assert sharded.candidates({"id": "p", "name": "anything"}) == []


class TestContract:
    def test_duplicate_id_rejected(self):
        _, sharded = _pair(2)
        sharded.add([{"id": "a", "name": "x"}])
        with pytest.raises(ValueError, match="already indexed"):
            sharded.add([{"id": "a", "name": "y"}])

    def test_from_params_round_trip(self):
        sharded = ShardedTokenIndex(
            "name", min_overlap=2, max_df=0.4, top_k=7, n_shards=6
        )
        rebuilt = ShardedTokenIndex.from_params(sharded.params())
        assert rebuilt.params() == sharded.params()
        assert rebuilt.n_shards == 6

    def test_touched_shards_drain(self):
        _, sharded = _pair(8)
        sharded.add(_records(50, seed=6))
        probe = _records(1, seed=7)[0]
        sharded.candidates(probe)
        touched = sharded.drain_touched()
        df_cap = max(1, int(sharded.max_df * len(sharded)))
        expected = {
            shard_of_token(tok, 8)
            for tok in probe["name"].split()
            if tok in sharded._gdf and sharded._gdf[tok] <= df_cap
        }
        assert touched == expected
        assert sharded.drain_touched() == set()

    def test_shard_routing_is_stable(self):
        """Every token's postings live in exactly the shard its hash names."""
        sharded = ShardedTokenIndex("name", n_shards=8, max_df=1.0)
        sharded.add(_records(40, seed=8))
        for shard in sharded._shards:
            for tok in shard.merged_postings():
                assert shard_of_token(tok, 8) == shard.shard_id
