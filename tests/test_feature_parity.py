"""Batch-engine `transform` is equivalent to the per-pair reference path.

The acceptance bar for the columnar featurization engine: on every fixture
dataset (and a battery of hand-built edge cases) the batch matrix has the
identical NaN pattern and values ``allclose`` to the per-pair reference —
and for the set/edit measures, bit-identical values.
"""

import numpy as np
import pytest

from repro.data.benchmarks import BENCHMARK_NAMES, load_benchmark
from repro.data.table import Table
from repro.eval.harness import blocker_for
from repro.features.generator import FeatureGenerator
from repro import ERPipeline

#: Cap per-dataset pair counts so the full six-dataset sweep stays fast.
_MAX_PAIRS = 600


def _assert_parity(gen, left, right, pairs, *, rtol=1e-9, atol=1e-12):
    X_batch = gen.transform(left, right, pairs, engine="batch")
    X_ref = gen.transform(left, right, pairs, engine="per-pair")
    assert X_batch.shape == X_ref.shape
    assert np.array_equal(np.isnan(X_batch), np.isnan(X_ref)), "NaN patterns differ"
    assert np.allclose(
        np.nan_to_num(X_batch), np.nan_to_num(X_ref), rtol=rtol, atol=atol
    ), "values differ beyond tolerance"
    # everything except numeric (libm exp), tfidf, and Monge–Elkan
    # (summation order) must be bit-identical
    for j, spec in enumerate(gen.features_):
        if spec.family in ("numeric", "tfidf", "hybrid"):
            continue
        same = (X_batch[:, j] == X_ref[:, j]) | (
            np.isnan(X_batch[:, j]) & np.isnan(X_ref[:, j])
        )
        assert same.all(), f"{spec.name} not bit-identical"
    return X_batch


@pytest.mark.parametrize("name", sorted(BENCHMARK_NAMES))
def test_parity_on_fixture_dataset(name):
    ds = load_benchmark(name, scale="tiny", seed=5)
    pairs = blocker_for(name).block(ds.left, ds.right)
    if len(pairs) > _MAX_PAIRS:
        rng = np.random.default_rng(5)
        keep = rng.choice(len(pairs), _MAX_PAIRS, replace=False)
        pairs = [pairs[int(i)] for i in keep]
    gen = FeatureGenerator().fit(ds.left, ds.right, ds.attributes)
    _assert_parity(gen, ds.left, ds.right, pairs)


class TestEdgeCases:
    def test_empty_strings_vs_missing(self):
        left = Table(
            [
                {"id": "l1", "name": "", "note": ""},
                {"id": "l2", "name": "ada lovelace", "note": "first programmer"},
                {"id": "l3", "name": None, "note": None},
            ]
        )
        right = Table(
            [
                {"id": "r1", "name": "", "note": "x"},
                {"id": "r2", "name": "ada lovelace", "note": None},
                {"id": "r3", "name": "grace hopper", "note": ""},
            ]
        )
        gen = FeatureGenerator().fit(left, right)
        pairs = [(l, r) for l in ("l1", "l2", "l3") for r in ("r1", "r2", "r3")]
        X = _assert_parity(gen, left, right, pairs)
        # present-but-empty values score, missing values are NaN
        assert np.isnan(X[6]).all()  # l3 has no values at all

    def test_all_nan_column(self):
        left = Table([{"id": f"l{i}", "a": f"value {i}", "b": None} for i in range(4)])
        right = Table([{"id": f"r{i}", "a": f"value {i + 1}", "b": None} for i in range(4)])
        gen = FeatureGenerator().fit(left, right)
        pairs = [(f"l{i}", f"r{j}") for i in range(4) for j in range(4)]
        X = _assert_parity(gen, left, right, pairs)
        b_cols = gen.feature_groups_[1]
        assert np.isnan(X[:, b_cols]).all()

    def test_non_bmp_unicode(self):
        # astral-plane characters: the utf-32 batch encoding must agree with
        # python-level character semantics in every engine
        names = ["𝕏-ray crystallography", "x-ray crystallography", "𝄞 music 𝄞 notation",
                 "café ☕ corner", "naïve 𝒷ayes", "naive bayes"]
        left = Table([{"id": f"l{i}", "name": v} for i, v in enumerate(names)])
        right = Table([{"id": f"r{i}", "name": v} for i, v in enumerate(reversed(names))])
        gen = FeatureGenerator().fit(left, right)
        pairs = [(f"l{i}", f"r{j}") for i in range(6) for j in range(6)]
        _assert_parity(gen, left, right, pairs)

    def test_dedup_pairs(self):
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=9).as_dedup()
        ids = merged.ids()
        rng = np.random.default_rng(9)
        pairs = [
            (ids[int(i)], ids[int(j)])
            for i, j in rng.integers(0, len(ids), size=(200, 2))
        ] + [(ids[0], ids[0])]  # self-pair
        gen = FeatureGenerator().fit(merged)
        X = _assert_parity(gen, merged, None, pairs)
        # a record compared with itself scores 1 on all present string features
        finite = X[-1][np.isfinite(X[-1])]
        assert np.allclose(finite, 1.0)

    def test_numeric_and_boolean_attributes(self):
        left = Table(
            [
                {"id": "l1", "price": 10.0, "instock": "yes"},
                {"id": "l2", "price": "bad-number", "instock": "no"},
                {"id": "l3", "price": 0.0, "instock": None},
            ]
        )
        right = Table(
            [
                {"id": "r1", "price": 10.5, "instock": "yes"},
                {"id": "r2", "price": None, "instock": "no"},
                {"id": "r3", "price": 0.0, "instock": "yes"},
            ]
        )
        gen = FeatureGenerator().fit(left, right)
        pairs = [(l, r) for l in ("l1", "l2", "l3") for r in ("r1", "r2", "r3")]
        _assert_parity(gen, left, right, pairs)

    def test_empty_pair_list(self):
        left = Table([{"id": "l1", "name": "x"}])
        gen = FeatureGenerator().fit(left)
        assert gen.transform(left, None, []).shape == (0, len(gen.feature_names_))

    def test_unknown_engine_rejected(self):
        left = Table([{"id": "l1", "name": "x"}])
        gen = FeatureGenerator().fit(left)
        with pytest.raises(ValueError, match="engine"):
            gen.transform(left, None, [("l1", "l1")], engine="turbo")

    def test_timings_collected(self):
        left = Table([{"id": "l1", "name": "golden dragon"}, {"id": "l2", "name": "blue lotus"}])
        gen = FeatureGenerator().fit(left)
        timings = {}
        gen.transform(left, None, [("l1", "l2")], timings=timings)
        assert set(timings) == set(gen.feature_names_)
        assert all(t >= 0.0 for t in timings.values())


class TestRestoredGeneratorParity:
    def test_from_state_round_trip_matches_both_engines(self):
        ds = load_benchmark("prod_ab", scale="tiny", seed=2)
        pairs = blocker_for("prod_ab").block(ds.left, ds.right)[:200]
        gen = FeatureGenerator().fit(ds.left, ds.right, ds.attributes)
        restored = FeatureGenerator.from_state(gen.get_state())
        X = gen.transform(ds.left, ds.right, pairs)
        X_restored = restored.transform(ds.left, ds.right, pairs)
        assert np.array_equal(np.isnan(X), np.isnan(X_restored))
        assert np.allclose(np.nan_to_num(X), np.nan_to_num(X_restored))
        _assert_parity(restored, ds.left, ds.right, pairs)


class TestIncrementalResolverParity:
    def test_resolver_scores_identical_across_engines(self):
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=6).as_dedup()
        records = list(merged)
        base = Table(records[:-8], attributes=merged.attributes)
        arriving = records[-8:]

        results = {}
        for engine in ("batch", "per-pair"):
            pipeline = ERPipeline(blocking_attribute="name", feature_engine=engine)
            pipeline.run(base)
            resolver = pipeline.freeze()
            assert resolver.engine == engine
            results[engine] = resolver.resolve(arriving)

        batch, ref = results["batch"], results["per-pair"]
        assert batch.pairs == ref.pairs
        assert np.allclose(batch.scores, ref.scores, rtol=1e-9)
        assert batch.assignments == ref.assignments

    def test_engine_validated_eagerly_and_persisted(self, tmp_path):
        from repro.incremental.resolver import IncrementalResolver

        with pytest.raises(ValueError, match="engine must be"):
            ERPipeline(blocking_attribute="name", feature_engine="turbo")

        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=6).as_dedup()
        pipeline = ERPipeline(blocking_attribute="name", feature_engine="per-pair")
        pipeline.run(merged)
        resolver = pipeline.freeze()
        with pytest.raises(ValueError, match="engine"):
            IncrementalResolver(
                resolver.generator, resolver.model, resolver.index, resolver.store,
                engine="perpair",
            )
        resolver.save(tmp_path / "art")
        assert IncrementalResolver.load(tmp_path / "art").engine == "per-pair"

    def test_clear_caches_hook(self):
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=6).as_dedup()
        records = list(merged)
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(Table(records[:-3], attributes=merged.attributes))
        resolver = pipeline.freeze()
        resolver.resolve(records[-3:])
        resolver.clear_caches()  # must not disturb subsequent resolves

    def test_jw_cache_reconfigure(self):
        from repro.features import clear_feature_caches, configure_jw_cache
        from repro.features import generator as generator_mod

        original = generator_mod._cached_jaro_winkler
        try:
            configure_jw_cache(128)
            assert generator_mod._cached_jaro_winkler.cache_info().maxsize == 128
            assert generator_mod._monge_elkan_jw(("ab",), ("ac",)) > 0.0
            assert generator_mod._cached_jaro_winkler.cache_info().currsize > 0
            clear_feature_caches()
            assert generator_mod._cached_jaro_winkler.cache_info().currsize == 0
        finally:
            generator_mod._cached_jaro_winkler = original
