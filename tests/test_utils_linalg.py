"""Tests for repro.utils.linalg (robust Cholesky, Gaussian logpdf)."""

import numpy as np
import pytest
import scipy.stats

from repro.utils.linalg import (
    correlation_from_covariance,
    gaussian_logpdf,
    robust_cholesky,
)


class TestRobustCholesky:
    def test_spd_matrix_exact(self):
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        L = robust_cholesky(cov)
        assert np.allclose(L @ L.T, cov)

    def test_lower_triangular(self):
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        L = robust_cholesky(cov)
        assert np.allclose(L, np.tril(L))

    def test_singular_matrix_gets_jitter(self):
        # rank-1: classic singularity-problem covariance (paper §3.3)
        v = np.array([1.0, 2.0])
        cov = np.outer(v, v)
        L = robust_cholesky(cov)
        assert np.all(np.isfinite(L))
        assert np.allclose(L @ L.T, cov, atol=1e-4)

    def test_zero_matrix(self):
        L = robust_cholesky(np.zeros((3, 3)))
        assert np.all(np.isfinite(L))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            robust_cholesky(np.ones((2, 3)))

    def test_nan_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            robust_cholesky(np.array([[np.nan, 0.0], [0.0, 1.0]]))


class TestGaussianLogpdf:
    def test_matches_scipy_1d(self):
        X = np.array([[0.0], [1.0], [-2.0]])
        ours = gaussian_logpdf(X, np.array([0.5]), np.array([[2.0]]))
        reference = scipy.stats.norm(0.5, np.sqrt(2.0)).logpdf(X.ravel())
        assert np.allclose(ours, reference)

    def test_matches_scipy_multivariate(self, rng):
        d = 4
        A = rng.normal(size=(d, d))
        cov = A @ A.T + np.eye(d)
        mean = rng.normal(size=d)
        X = rng.normal(size=(20, d))
        ours = gaussian_logpdf(X, mean, cov)
        reference = scipy.stats.multivariate_normal(mean, cov).logpdf(X)
        assert np.allclose(ours, reference)

    def test_density_peaks_at_mean(self):
        mean = np.array([0.3, 0.7])
        cov = np.eye(2) * 0.1
        at_mean = gaussian_logpdf(mean[None, :], mean, cov)[0]
        away = gaussian_logpdf(mean[None, :] + 0.5, mean, cov)[0]
        assert at_mean > away

    def test_near_singular_is_finite(self):
        # collapsed variance must not produce inf (the jitter ladder's job)
        X = np.array([[1.0, 1.0]])
        cov = np.array([[1e-30, 0.0], [0.0, 1.0]])
        out = gaussian_logpdf(X, np.array([1.0, 1.0]), cov)
        assert np.all(np.isfinite(out))


class TestCorrelationFromCovariance:
    def test_unit_diagonal(self, rng):
        A = rng.normal(size=(3, 3))
        cov = A @ A.T + np.eye(3)
        corr = correlation_from_covariance(cov)
        assert np.allclose(np.diag(corr), 1.0)

    def test_values_in_range(self, rng):
        A = rng.normal(size=(4, 4))
        corr = correlation_from_covariance(A @ A.T)
        assert np.all(corr <= 1.0) and np.all(corr >= -1.0)

    def test_perfect_correlation(self):
        cov = np.array([[1.0, 2.0], [2.0, 4.0]])  # y = 2x
        corr = correlation_from_covariance(cov)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_zero_variance_dimension(self):
        cov = np.array([[0.0, 0.0], [0.0, 1.0]])
        corr = correlation_from_covariance(cov)
        assert corr[0, 0] == 1.0
        assert corr[0, 1] == 0.0

    def test_known_correlation(self):
        cov = np.array([[4.0, 2.0], [2.0, 9.0]])
        corr = correlation_from_covariance(cov)
        assert corr[0, 1] == pytest.approx(2.0 / 6.0)
