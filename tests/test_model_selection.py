"""Tests for split / CV / oversampling utilities."""

import numpy as np
import pytest

from repro.baselines import (
    LogisticRegression,
    grid_search_cv,
    kfold_indices,
    oversample_minority,
    train_test_split,
)


class TestTrainTestSplit:
    def test_partition(self):
        train, test = train_test_split(100, 0.3, random_state=0)
        assert len(train) + len(test) == 100
        assert len(set(train) & set(test)) == 0

    def test_fraction_respected(self):
        _, test = train_test_split(100, 0.25, random_state=0)
        assert len(test) == 25

    def test_deterministic(self):
        a = train_test_split(50, 0.5, random_state=4)
        b = train_test_split(50, 0.5, random_state=4)
        assert np.array_equal(a[0], b[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split(1, 0.5)
        with pytest.raises(ValueError):
            train_test_split(10, 1.0)


class TestKFold:
    def test_folds_partition_data(self):
        folds = kfold_indices(20, 4, random_state=0)
        assert len(folds) == 4
        all_valid = np.concatenate([valid for _, valid in folds])
        assert sorted(all_valid) == list(range(20))

    def test_train_valid_disjoint(self):
        for train, valid in kfold_indices(17, 5, random_state=0):
            assert len(set(train) & set(valid)) == 0
            assert len(train) + len(valid) == 17

    def test_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 5)


class TestOversample:
    def test_balances_minority(self, rng):
        X = rng.random((100, 3))
        y = np.zeros(100)
        y[:10] = 1.0
        X2, y2 = oversample_minority(X, y, random_state=0)
        assert y2.sum() == 90  # minority resampled up to majority count
        assert len(y2) == 180

    def test_noop_when_balanced(self, rng):
        X = rng.random((10, 2))
        y = np.array([0.0, 1.0] * 5)
        X2, y2 = oversample_minority(X, y, random_state=0)
        assert len(y2) == 10

    def test_noop_single_class(self, rng):
        X = rng.random((5, 2))
        y = np.zeros(5)
        X2, y2 = oversample_minority(X, y)
        assert len(y2) == 5

    def test_partial_ratio(self, rng):
        X = rng.random((100, 3))
        y = np.zeros(100)
        y[:10] = 1.0
        _, y2 = oversample_minority(X, y, random_state=0, target_ratio=0.5)
        assert y2.sum() == 45

    def test_resampled_rows_come_from_minority(self, rng):
        X = np.arange(20, dtype=float)[:, None]
        y = np.zeros(20)
        y[:2] = 1.0
        X2, y2 = oversample_minority(X, y, random_state=0)
        assert set(X2[y2 == 1].ravel()) <= {0.0, 1.0}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            oversample_minority(rng.random((4, 2)), np.array([0, 0, 1, 1.0]), target_ratio=0.0)


class TestGridSearch:
    def test_finds_better_hyperparameter(self, separable_mixture):
        X, y = separable_mixture
        params, score = grid_search_cv(
            lambda l2: LogisticRegression(l2=l2),
            {"l2": [1e-4, 1e4]},
            X,
            y,
            n_folds=3,
            random_state=0,
        )
        assert params["l2"] == 1e-4  # huge l2 underfits badly
        assert score > 0.8

    def test_empty_grid(self, separable_mixture):
        X, y = separable_mixture
        params, score = grid_search_cv(lambda: None, {}, X, y)
        assert params == {}

    def test_multi_parameter_grid_enumerates_all(self, separable_mixture):
        X, y = separable_mixture
        calls = []

        class Recorder:
            def __init__(self, a, b):
                calls.append((a, b))
                self.model = LogisticRegression()

            def fit(self, X, y):
                self.model.fit(X, y)
                return self

            def predict(self, X):
                return self.model.predict(X)

        grid_search_cv(Recorder, {"a": [1, 2], "b": [3, 4]}, X, y, n_folds=2, random_state=0)
        assert set(calls) >= {(1, 3), (1, 4), (2, 3), (2, 4)}
