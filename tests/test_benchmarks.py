"""Tests for the synthetic benchmark generators."""

import pytest

from repro.data.benchmarks import (
    BENCHMARK_NAMES,
    SCALE_FACTORS,
    dataset_statistics,
    load_benchmark,
)


class TestLoadBenchmark:
    def test_all_names_generate(self):
        for name in BENCHMARK_NAMES:
            ds = load_benchmark(name, scale="tiny")
            assert len(ds.left) > 0 and len(ds.right) > 0
            assert ds.n_matches > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("nonsense")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            load_benchmark("rest_fz", scale="huge")

    def test_deterministic(self):
        a = load_benchmark("rest_fz", scale="tiny", seed=3)
        b = load_benchmark("rest_fz", scale="tiny", seed=3)
        assert a.left == b.left and a.right == b.right
        assert a.matches == b.matches

    def test_seed_changes_data(self):
        a = load_benchmark("rest_fz", scale="tiny", seed=0)
        b = load_benchmark("rest_fz", scale="tiny", seed=1)
        assert a.left != b.left

    def test_scale_ordering(self):
        tiny = load_benchmark("pub_da", scale="tiny")
        small = load_benchmark("pub_da", scale="small")
        assert len(small.left) > len(tiny.left)
        assert small.n_matches > tiny.n_matches

    def test_env_scale_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        ds = load_benchmark("rest_fz")
        assert ds.scale == "tiny"


class TestDatasetStructure:
    @pytest.fixture(scope="class")
    def ds(self):
        return load_benchmark("pub_ds", scale="tiny")

    def test_match_ids_exist(self, ds):
        for left_id, right_id in ds.matches:
            assert left_id in ds.left
            assert right_id in ds.right

    def test_attributes_match_spec(self, ds):
        assert ds.left.attributes == list(ds.spec.attributes)
        assert ds.right.attributes == list(ds.spec.attributes)

    def test_no_private_attributes_leak(self, ds):
        assert not any(a.startswith("_") for a in ds.left.attributes)
        for rec in ds.left.head(5):
            assert not any(k.startswith("_") for k in rec)

    def test_pub_ds_has_one_to_many_matches(self, ds):
        # DBLP-Scholar's defining property: multiple right copies per entity
        from collections import Counter
        per_left = Counter(l for l, _ in ds.matches)
        assert max(per_left.values()) >= 2

    def test_rest_fz_is_one_to_one(self):
        ds = load_benchmark("rest_fz", scale="tiny")
        lefts = [l for l, _ in ds.matches]
        rights = [r for _, r in ds.matches]
        assert len(set(rights)) == len(rights)  # each right row matches once

    def test_is_match_and_labels_for(self, ds):
        pair = next(iter(ds.matches))
        assert ds.is_match(*pair)
        labels = ds.labels_for([pair, ("L0", "R999999")])
        assert labels.tolist() == [1.0, 0.0]

    def test_as_dedup_merges(self, ds):
        merged, matches = ds.as_dedup()
        assert len(merged) == len(ds.left) + len(ds.right)
        assert matches == ds.matches


class TestMatchQuality:
    def test_matched_restaurant_pairs_share_signal(self):
        ds = load_benchmark("rest_fz", scale="tiny")
        shared = 0
        for left_id, right_id in ds.matches:
            l, r = ds.left.get(left_id), ds.right.get(right_id)
            left_tokens = set(str(l["name"]).split())
            right_tokens = set(str(r["name"]).split())
            if left_tokens & right_tokens:
                shared += 1
        assert shared / ds.n_matches > 0.8  # restaurants are the clean dataset

    def test_product_matches_often_renamed(self):
        ds = load_benchmark("prod_ag", scale="tiny")
        jaccards = []
        for left_id, right_id in ds.matches:
            a = set(str(ds.left.get(left_id)["title"]).split())
            b = set(str(ds.right.get(right_id)["title"]).split())
            jaccards.append(len(a & b) / len(a | b))
        # the hard channel must leave a substantial fraction of matches with
        # low token overlap (vendor renames)
        assert sum(1 for j in jaccards if j < 0.5) / len(jaccards) > 0.3

    def test_statistics_shape(self):
        ds = load_benchmark("mv_ri", scale="tiny")
        stats = dataset_statistics(ds)
        assert stats["n_matches"] == ds.n_matches
        assert stats["n_attributes"] == 8
        assert "tuples" in stats

    def test_scale_factors_registered(self):
        assert set(SCALE_FACTORS) == {"tiny", "small", "paper"}
