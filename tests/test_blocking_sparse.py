"""The sparse columnar blocking engine is equivalent to the per-record path.

Acceptance bar for the blocking engine: on every fixture dataset, in both
record-linkage and deduplication modes, the sparse engine emits the
*bit-identical* candidate pair list (same pairs, same order) as the
Counter-based reference — plus engine-knob plumbing through blocker,
pipeline, and incremental index.
"""

import numpy as np
import pytest

from repro.blocking import (
    BLOCKING_ENGINES,
    QgramBlocker,
    TokenOverlapBlocker,
    UnionBlocker,
    candidate_statistics,
)
from repro.blocking.batch import TokenEncoding, sparse_overlap_select
from repro.data.benchmarks import BENCHMARK_NAMES, load_benchmark
from repro.data.table import Table
from repro.incremental.index import IncrementalTokenIndex
from repro import ERPipeline

#: Per-dataset blocking attribute (primary harness recipe).
_ATTR = {
    "rest_fz": "name",
    "pub_da": "title",
    "pub_ds": "title",
    "mv_ri": "title",
    "prod_ab": "name",
    "prod_ag": "title",
}


def _engines(attr, **params):
    return (
        TokenOverlapBlocker(attr, engine="sparse", **params),
        TokenOverlapBlocker(attr, engine="per-record", **params),
    )


class TestDatasetParity:
    @pytest.mark.parametrize("name", sorted(BENCHMARK_NAMES))
    def test_linkage_bit_identical(self, name):
        ds = load_benchmark(name, scale="tiny", seed=5)
        sparse, ref = _engines(_ATTR[name], min_overlap=1, top_k=60)
        assert sparse.block(ds.left, ds.right) == ref.block(ds.left, ds.right)

    @pytest.mark.parametrize("name", sorted(BENCHMARK_NAMES))
    def test_dedup_bit_identical(self, name):
        merged, _ = load_benchmark(name, scale="tiny", seed=5).as_dedup()
        sparse, ref = _engines(_ATTR[name], min_overlap=1, top_k=60)
        assert sparse.block(merged) == ref.block(merged)

    @pytest.mark.parametrize("name", ["pub_da", "prod_ab"])
    @pytest.mark.parametrize(
        "params",
        [
            dict(min_overlap=2, top_k=5),
            dict(min_overlap=1, max_df=1.0),
            dict(min_overlap=1, top_k=1),
            dict(min_overlap=3, max_df=0.5, top_k=10),
        ],
    )
    def test_parameter_grid(self, name, params):
        ds = load_benchmark(name, scale="tiny", seed=7)
        sparse, ref = _engines(_ATTR[name], **params)
        assert sparse.block(ds.left, ds.right) == ref.block(ds.left, ds.right)
        merged, _ = ds.as_dedup()
        assert sparse.block(merged) == ref.block(merged)

    @pytest.mark.parametrize("name", ["rest_fz", "prod_ag"])
    def test_qgram_parity(self, name):
        ds = load_benchmark(name, scale="tiny", seed=3)
        attr = _ATTR[name]
        sparse = QgramBlocker(attr, engine="sparse")
        ref = QgramBlocker(attr, engine="per-record")
        assert sparse.block(ds.left, ds.right) == ref.block(ds.left, ds.right)


class TestEdgeCases:
    def test_empty_tables(self):
        empty = Table([], attributes=["name"])
        one = Table([{"id": "a", "name": "x y"}], attributes=["name"])
        for blocker in _engines("name"):
            assert blocker.block(empty, one) == []
            assert blocker.block(one, empty) == []
            assert blocker.block(empty) == []

    def test_all_missing_values(self):
        t = Table([{"id": i, "name": None} for i in range(3)], attributes=["name"])
        sparse, ref = _engines("name", max_df=1.0)
        assert sparse.block(t) == ref.block(t) == []

    def test_probe_tokens_outside_target_vocabulary(self):
        left = Table([{"id": "l", "name": "unseen tokens only"}], attributes=["name"])
        right = Table([{"id": "r", "name": "completely different"}], attributes=["name"])
        sparse, ref = _engines("name", max_df=1.0)
        assert sparse.block(left, right) == ref.block(left, right) == []

    def test_top_k_tie_breaks_by_target_order(self):
        left = Table([{"id": "l", "name": "a b c"}], attributes=["name"])
        right = Table(
            [
                {"id": "one", "name": "a x y"},
                {"id": "three", "name": "a b c"},
                {"id": "two", "name": "a b z"},
            ],
            attributes=["name"],
        )
        for blocker in _engines("name", top_k=1, max_df=1.0):
            assert blocker.block(left, right) == [("l", "three")]

    def test_small_chunks_match_single_pass(self):
        ds = load_benchmark("pub_da", scale="tiny", seed=2)
        blocker = TokenOverlapBlocker("title", min_overlap=1, top_k=20)
        tokenizer, attr = blocker.tokenizer, "title"
        target = TokenEncoding.encode(ds.right, tokenizer, attr)
        probe = TokenEncoding.encode(ds.left, tokenizer, attr, vocab=target.vocab)
        whole = sparse_overlap_select(probe, target, min_overlap=1, max_df=0.2, top_k=20)
        chunked = sparse_overlap_select(
            probe, target, min_overlap=1, max_df=0.2, top_k=20, chunk_entries=64
        )
        for a, b in zip(whole, chunked):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("chunk_entries", [1, 64])
    def test_small_chunks_dedup_matches_single_pass(self, chunk_entries):
        # the dedup mask depends on chunk-global probe positions, so it must
        # survive arbitrary chunk boundaries
        merged, _ = load_benchmark("pub_da", scale="tiny", seed=2).as_dedup()
        tokenizer = TokenOverlapBlocker("title").tokenizer
        enc = TokenEncoding.encode(merged, tokenizer, "title")
        whole = sparse_overlap_select(enc, enc, min_overlap=1, max_df=0.2, top_k=20, dedup=True)
        chunked = sparse_overlap_select(
            enc,
            enc,
            min_overlap=1,
            max_df=0.2,
            top_k=20,
            dedup=True,
            chunk_entries=chunk_entries,
        )
        for a, b in zip(whole, chunked):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("chunk_entries", [1, 64])
    def test_small_chunks_exclusion_matches_single_pass(self, chunk_entries):
        # exclude_cols is sliced per chunk: probing every indexed record
        # against its own index exercises an exclusion in every chunk
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=2).as_dedup()
        tokenizer = TokenOverlapBlocker("name").tokenizer
        enc = TokenEncoding.encode(merged, tokenizer, "name")
        exclude = np.arange(len(enc), dtype=np.int64)
        exclude[::3] = -1  # and some probes with nothing to exclude
        whole = sparse_overlap_select(
            enc, enc, min_overlap=1, max_df=0.5, top_k=10, exclude_cols=exclude
        )
        chunked = sparse_overlap_select(
            enc,
            enc,
            min_overlap=1,
            max_df=0.5,
            top_k=10,
            exclude_cols=exclude,
            chunk_entries=chunk_entries,
        )
        for a, b in zip(whole, chunked):
            assert np.array_equal(a, b)
        excluded_rows = np.flatnonzero(exclude >= 0)
        rows, cols, _ = whole
        hit = np.isin(rows, excluded_rows)
        assert not np.any(rows[hit] == cols[hit])

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            TokenOverlapBlocker("name", engine="turbo")
        assert set(BLOCKING_ENGINES) == {"sparse", "per-record"}


class TestPipelineAndKnobs:
    def test_pipeline_engines_agree(self):
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=6).as_dedup()
        results = {}
        for engine in BLOCKING_ENGINES:
            pipeline = ERPipeline(blocking_attribute="name", blocking_engine=engine)
            results[engine] = pipeline.run(merged)
        assert results["sparse"].pairs == results["per-record"].pairs
        assert np.allclose(results["sparse"].scores, results["per-record"].scores)

    def test_pipeline_engine_applied_without_mutating_callers_blocker(self):
        blocker = TokenOverlapBlocker("name", engine="sparse")
        pipeline = ERPipeline(blocker=blocker, blocking_engine="per-record")
        assert pipeline.blocker.engine == "per-record"
        assert blocker.engine == "sparse"  # caller's object untouched
        assert pipeline.blocker.attribute == "name"

    def test_pipeline_engine_rejects_non_overlap_blocker(self):
        union = UnionBlocker([TokenOverlapBlocker("name")])
        with pytest.raises(ValueError, match="blocking_engine"):
            ERPipeline(blocker=union, blocking_engine="sparse")

    def test_pipeline_engine_validated(self):
        with pytest.raises(ValueError, match="engine"):
            ERPipeline(blocking_attribute="name", blocking_engine="turbo")


class TestIncrementalSharing:
    def _index(self, table):
        index = IncrementalTokenIndex("name", min_overlap=1, top_k=10)
        index.add(table)
        return index

    def test_candidates_batch_matches_per_record_probes(self):
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=8).as_dedup()
        records = list(merged)
        index = self._index(Table(records[:-10], attributes=merged.attributes))
        probes = records[-10:]
        batch = index.candidates_batch(probes)
        assert batch == [index.candidates(rec) for rec in probes]

    def test_candidates_batch_excludes_indexed_probe(self):
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=8).as_dedup()
        index = self._index(merged)
        probes = list(merged)[:6]
        batch = index.candidates_batch(probes)
        for rec, ranked in zip(probes, batch):
            assert ranked == index.candidates(rec)
            assert all(rid != rec["id"] for rid, _count in ranked)

    def test_snapshot_invalidated_by_add(self):
        merged, _ = load_benchmark("rest_fz", scale="tiny", seed=8).as_dedup()
        records = list(merged)
        index = self._index(Table(records[:20], attributes=merged.attributes))
        first = index.encoding()
        assert index.encoding() is first  # cached
        index.add(records[20:25])
        assert index.encoding() is not first
        probe = records[30]
        assert index.candidates_batch([probe]) == [index.candidates(probe)]

    def test_empty_index_and_empty_batch(self):
        index = IncrementalTokenIndex("name")
        assert index.candidates_batch([{"id": "x", "name": "a b"}]) == [[]]
        index.add([{"id": "y", "name": "a b"}])
        assert index.candidates_batch([]) == []


class TestCandidateStatistics:
    def test_gold_none_reports_label_free_stats(self):
        stats = candidate_statistics([("a", "b")], None, 2, 3)
        assert stats == {"n_candidates": 1, "reduction_ratio": 1.0 - 1 / 6}

    def test_prebuilt_sets_used_as_is(self):
        gold = frozenset({("a", "b")})
        stats = candidate_statistics({("a", "b"), ("a", "c")}, gold, 2, 3)
        assert stats["recall"] == 1.0
        assert stats["n_candidates"] == 2

    def test_total_pairs_override_for_dedup(self):
        stats = candidate_statistics([(0, 1), (1, 2)], None, 4, 4, total_pairs=6)
        assert stats["reduction_ratio"] == pytest.approx(1 - 2 / 6)
