"""Tests for repro.data.corruption."""

import numpy as np
import pytest

from repro.data.corruption import (
    Corruptor,
    abbreviate_tokens,
    drop_token,
    drop_value,
    numeric_jitter,
    ocr_noise,
    swap_tokens,
    synonym_replace,
    truncate_value,
    typo,
)


@pytest.fixture
def crng():
    return np.random.default_rng(99)


class TestTypo:
    def test_changes_string(self, crng):
        out = typo(crng, "entity resolution", n_edits=2)
        assert out != "entity resolution"

    def test_edit_distance_bounded(self, crng):
        # n single-character edits change length by at most n
        for _ in range(50):
            out = typo(crng, "abcdefgh", n_edits=1)
            assert abs(len(out) - 8) <= 1

    def test_empty_string_grows(self, crng):
        assert len(typo(crng, "", n_edits=1)) == 1

    def test_deterministic_given_seed(self):
        a = typo(np.random.default_rng(5), "hello world", 2)
        b = typo(np.random.default_rng(5), "hello world", 2)
        assert a == b


class TestTokenOps:
    def test_drop_token_removes_one(self, crng):
        out = drop_token(crng, "a b c")
        assert len(out.split()) == 2

    def test_drop_token_single_noop(self, crng):
        assert drop_token(crng, "single") == "single"

    def test_swap_tokens_preserves_multiset(self, crng):
        out = swap_tokens(crng, "one two three")
        assert sorted(out.split()) == ["one", "three", "two"]

    def test_swap_single_noop(self, crng):
        assert swap_tokens(crng, "one") == "one"

    def test_abbreviate_keeps_first(self, crng):
        out = abbreviate_tokens(crng, "journal of data management")
        assert out.split()[0] == "journal"

    def test_abbreviate_shortens(self, crng):
        long = "proceedings of the international conference"
        outs = {abbreviate_tokens(crng, long) for _ in range(20)}
        assert any(len(o) < len(long) for o in outs)


class TestOtherOps:
    def test_ocr_noise_rate_one_changes_confusables(self, crng):
        assert ocr_noise(crng, "0011", rate=1.0) == "ooll"  # 0→o, 1→l

    def test_ocr_noise_rate_zero_noop(self, crng):
        assert ocr_noise(crng, "0l5s", rate=0.0) == "0l5s"

    def test_truncate_bounds(self, crng):
        for _ in range(20):
            out = truncate_value(crng, "abcdefghijklmnop", min_keep=8)
            assert 8 <= len(out) <= 16

    def test_truncate_short_noop(self, crng):
        assert truncate_value(crng, "short", min_keep=8) == "short"

    def test_synonym_replace(self, crng):
        out = synonym_replace(crng, "sony digital camera x", {"digital camera": "digicam"})
        assert out == "sony digicam x"

    def test_synonym_longest_phrase_first(self, crng):
        mapping = {"digital camera": "digicam", "camera": "cam"}
        out = synonym_replace(crng, "digital camera", mapping)
        assert out == "digicam"

    def test_numeric_jitter_scales(self, crng):
        values = [numeric_jitter(crng, 100.0, 0.05) for _ in range(200)]
        assert 90 < np.mean(values) < 110

    def test_drop_value(self, crng):
        assert drop_value(crng, "anything") is None


class TestCorruptor:
    def test_none_passthrough(self, crng):
        channel = Corruptor([(1.0, lambda r, v: typo(r, v))])
        assert channel(crng, None) is None

    def test_probability_zero_never_fires(self, crng):
        channel = Corruptor([(0.0, lambda r, v: "CHANGED")])
        assert channel(crng, "original") == "original"

    def test_probability_one_always_fires(self, crng):
        channel = Corruptor([(1.0, lambda r, v: v + "!")])
        assert channel(crng, "x") == "x!"

    def test_operators_compose_in_order(self, crng):
        channel = Corruptor([(1.0, lambda r, v: v + "a"), (1.0, lambda r, v: v + "b")])
        assert channel(crng, "") == "ab"

    def test_operator_returning_none_short_circuits(self, crng):
        channel = Corruptor([(1.0, drop_value), (1.0, lambda r, v: v + "x")])
        assert channel(crng, "value") is None

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Corruptor([(1.5, lambda r, v: v)])

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            Corruptor([(0.5, "not callable")])
