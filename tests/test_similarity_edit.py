"""Tests for edit-based similarity measures.

The vectorized Levenshtein is checked against a straightforward pure-Python
reference on random inputs (hypothesis), plus hand-verified values for every
measure.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    needleman_wunsch,
    smith_waterman,
)

short_text = st.text(alphabet="abcdef ", max_size=12)


def reference_levenshtein(a: str, b: str) -> int:
    """Textbook O(mn) dynamic program."""
    m, n = len(a), len(b)
    prev = list(range(n + 1))
    for i in range(1, m + 1):
        cur = [i] + [0] * n
        for j in range(1, n + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
        prev = cur
    return prev[n]


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "abc", 3),
            ("abc", "", 3),
            ("same", "same", 0),
            ("a", "b", 1),
            ("ab", "ba", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    @given(short_text, short_text)
    @settings(max_examples=200)
    def test_matches_reference(self, a, b):
        assert levenshtein_distance(a, b) == reference_levenshtein(a, b)

    @given(short_text, short_text)
    def test_symmetric(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=100)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    def test_unicode(self):
        assert levenshtein_distance("café", "cafe") == 1

    def test_missing_nan(self):
        assert math.isnan(levenshtein_distance(None, "a"))

    def test_similarity_normalization(self):
        assert levenshtein_similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "abc") == 1.0

    @given(short_text, short_text)
    def test_similarity_bounded(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestJaro:
    def test_classic_martha(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_classic_dixon(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.767, abs=1e-3)

    def test_identical(self):
        assert jaro("abc", "abc") == 1.0

    def test_no_common_characters(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_cases(self):
        assert jaro("", "") == 1.0
        assert jaro("", "a") == 0.0

    @given(short_text, short_text)
    def test_symmetric_and_bounded(self, a, b):
        val = jaro(a, b)
        assert 0.0 <= val <= 1.0
        assert val == pytest.approx(jaro(b, a))

    def test_missing_nan(self):
        assert math.isnan(jaro(None, "a"))


class TestJaroWinkler:
    def test_classic_martha(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.961, abs=1e-3)

    def test_prefix_boost(self):
        # same jaro, shared prefix should score strictly higher
        assert jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes")

    def test_no_boost_without_prefix(self):
        assert jaro_winkler("xabc", "yabc") == pytest.approx(jaro("xabc", "yabc"))

    def test_prefix_capped_at_four(self):
        a = jaro_winkler("abcdefgh", "abcdexyz")
        b = jaro_winkler("abcdefgh", "abcdfxyz")  # 4-char shared prefix both
        assert a == pytest.approx(b, abs=0.1)

    @given(short_text, short_text)
    def test_bounded_and_dominates_jaro(self, a, b):
        jw = jaro_winkler(a, b)
        assert 0.0 <= jw <= 1.0 + 1e-12
        assert jw >= jaro(a, b) - 1e-12


class TestAlignments:
    def test_nw_identical(self):
        assert needleman_wunsch("abcd", "abcd") == 1.0

    def test_nw_is_lcs_ratio(self):
        # LCS("abcde", "ace") = 3, max len 5
        assert needleman_wunsch("abcde", "ace") == pytest.approx(3 / 5)

    def test_nw_disjoint(self):
        assert needleman_wunsch("aaa", "bbb") == 0.0

    def test_sw_substring_scores_one(self):
        assert smith_waterman("the entity resolution", "entity") == pytest.approx(1.0)

    def test_sw_disjoint(self):
        assert smith_waterman("aaa", "bbb") == 0.0

    def test_sw_partial_local_match(self):
        val = smith_waterman("abcdxyz", "qqabcd")
        assert 0.5 < val <= 1.0

    @given(short_text, short_text)
    def test_both_bounded_and_symmetric(self, a, b):
        for func in (needleman_wunsch, smith_waterman):
            val = func(a, b)
            assert 0.0 <= val <= 1.0
            assert val == pytest.approx(func(b, a))

    def test_empty_and_missing(self):
        assert needleman_wunsch("", "") == 1.0
        assert smith_waterman("", "a") == 0.0
        assert math.isnan(needleman_wunsch(None, "x"))
        assert math.isnan(smith_waterman("x", None))
