"""Tests for the transitivity calibrators (§5)."""

import numpy as np
import pytest

from repro.core.transitivity import (
    DedupTransitivityCalibrator,
    LinkageTransitivityCalibrator,
)


class TestDedupCalibrator:
    def test_no_violation_no_change(self):
        pairs = [("a", "b"), ("a", "c"), ("b", "c")]
        gamma = np.array([0.9, 0.9, 0.95])  # 0.81 <= 0.95, consistent
        cal = DedupTransitivityCalibrator(pairs)
        assert cal.calibrate(gamma) == 0
        assert np.allclose(gamma, [0.9, 0.9, 0.95])

    def test_least_confident_closing_pair_raised(self):
        # Equation 17's third case: γ23 closest to 0.5 -> γ23 := γ12·γ13
        pairs = [("a", "b"), ("a", "c"), ("b", "c")]
        gamma = np.array([0.95, 0.9, 0.55])
        cal = DedupTransitivityCalibrator(pairs)
        assert cal.calibrate(gamma) == 1
        assert gamma[2] == pytest.approx(0.95 * 0.9)

    def test_least_confident_edge_demoted(self):
        # γ12 closest to 0.5 -> γ12 := γ23/γ13
        pairs = [("a", "b"), ("a", "c"), ("b", "c")]
        gamma = np.array([0.6, 0.99, 0.05])
        cal = DedupTransitivityCalibrator(pairs)
        cal.calibrate(gamma)
        assert gamma[0] == pytest.approx(0.05 / 0.99)

    def test_missing_closing_pair_treated_as_zero(self):
        # blocked-out closing pair -> γ23 = 0, weaker edge demoted to 0
        pairs = [("a", "b"), ("a", "c")]
        gamma = np.array([0.7, 0.95])
        cal = DedupTransitivityCalibrator(pairs)
        assert cal.calibrate(gamma) == 1
        assert gamma[0] == 0.0
        assert gamma[1] == pytest.approx(0.95)

    def test_low_gamma_edges_not_touched(self):
        pairs = [("a", "b"), ("a", "c")]
        gamma = np.array([0.4, 0.95])  # only one high edge at node a
        cal = DedupTransitivityCalibrator(pairs)
        assert cal.calibrate(gamma) == 0

    def test_result_stays_in_unit_interval(self, rng):
        nodes = [f"n{i}" for i in range(12)]
        pairs = [(a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]]
        gamma = rng.random(len(pairs))
        cal = DedupTransitivityCalibrator(pairs)
        cal.calibrate(gamma)
        assert np.all(gamma >= 0.0) and np.all(gamma <= 1.0)

    def test_pair_order_insensitive_closing_lookup(self):
        # closing pair stored reversed must still be found
        pairs = [("a", "b"), ("a", "c"), ("c", "b")]
        gamma = np.array([0.9, 0.9, 0.95])
        cal = DedupTransitivityCalibrator(pairs)
        assert cal.calibrate(gamma) == 0

    def test_max_degree_validation(self):
        with pytest.raises(ValueError):
            DedupTransitivityCalibrator([("a", "b")], max_degree=1)

    def test_repeated_calibration_converges(self):
        pairs = [("a", "b"), ("a", "c"), ("b", "c")]
        gamma = np.array([0.95, 0.9, 0.55])
        cal = DedupTransitivityCalibrator(pairs)
        cal.calibrate(gamma)
        assert cal.calibrate(gamma) == 0  # fixed point after one repair


class TestLinkageCalibrator:
    def test_shared_left_closes_through_right_pairs(self):
        cross = [("l1", "r1"), ("l1", "r2")]
        right = [("r1", "r2")]
        cal = LinkageTransitivityCalibrator(cross, [], right)
        g_cross = np.array([0.9, 0.8])
        g_right = np.array([0.55])
        cal.calibrate(g_cross, None, g_right)
        assert g_right[0] == pytest.approx(0.72)  # raised to the product

    def test_shared_right_closes_through_left_pairs(self):
        cross = [("l1", "r1"), ("l2", "r1")]
        left = [("l1", "l2")]
        cal = LinkageTransitivityCalibrator(cross, left, [])
        g_cross = np.array([0.9, 0.8])
        g_left = np.array([0.55])
        cal.calibrate(g_cross, g_left, None)
        assert g_left[0] == pytest.approx(0.72)

    def test_missing_within_model_demotes_weaker_cross_edge(self):
        # clean-table semantics: no within pairs -> closing γ = 0
        cross = [("l1", "r1"), ("l1", "r2")]
        cal = LinkageTransitivityCalibrator(cross, [], [])
        g_cross = np.array([0.7, 0.95])
        cal.calibrate(g_cross, None, None)
        assert g_cross[0] == 0.0
        assert g_cross[1] == pytest.approx(0.95)

    def test_supported_one_to_many_survives(self):
        # Fr knows r1,r2 are duplicates -> both cross edges stay
        cross = [("l1", "r1"), ("l1", "r2")]
        right = [("r1", "r2")]
        cal = LinkageTransitivityCalibrator(cross, [], right)
        g_cross = np.array([0.9, 0.85])
        g_right = np.array([0.99])
        assert cal.calibrate(g_cross, None, g_right) == 0
        assert np.allclose(g_cross, [0.9, 0.85])

    def test_adjustment_count_returned(self):
        cross = [("l1", "r1"), ("l1", "r2"), ("l2", "r1"), ("l2", "r2")]
        cal = LinkageTransitivityCalibrator(cross, [], [])
        g_cross = np.array([0.9, 0.9, 0.9, 0.9])
        assert cal.calibrate(g_cross, None, None) > 0
