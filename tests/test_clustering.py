"""Tests for union-find and transitive closure."""

from hypothesis import given
from hypothesis import strategies as st

from repro.eval.clustering import UnionFind, connected_components, transitive_closure


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        assert uf.find("a") == "a"

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union("a", "b") is True
        assert uf.find("a") == uf.find("b")

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.union("a", "b") is False

    def test_chains_merge(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.union("x", "y")
        assert uf.find("a") == uf.find("c")
        assert uf.find("a") != uf.find("x")

    def test_groups_sorted_and_complete(self):
        uf = UnionFind()
        uf.union("b", "a")
        uf.find("z")
        groups = uf.groups()
        assert ["a", "b"] in groups
        assert ["z"] in groups


class TestConnectedComponents:
    def test_simple(self):
        comps = connected_components([("a", "b"), ("b", "c"), ("x", "y")])
        assert ["a", "b", "c"] in comps
        assert ["x", "y"] in comps

    def test_empty(self):
        assert connected_components([]) == []

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=30))
    def test_every_edge_within_one_component(self, edges):
        comps = connected_components(edges)
        location = {node: i for i, comp in enumerate(comps) for node in comp}
        for a, b in edges:
            assert location[a] == location[b]


class TestTransitiveClosure:
    def test_triangle_completed(self):
        closure = transitive_closure([("a", "b"), ("b", "c")])
        assert ("a", "c") in closure or ("c", "a") in closure
        assert len(closure) == 3

    def test_closure_size_is_choose_two(self):
        edges = [(i, i + 1) for i in range(5)]  # one 6-node chain
        assert len(transitive_closure(edges)) == 15  # C(6,2)

    def test_pairs_canonical_once(self):
        closure = transitive_closure([("b", "a")])
        assert len(closure) == 1

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=20))
    def test_closure_is_transitive(self, edges):
        edges = [(a, b) for a, b in edges if a != b]
        closure = transitive_closure(edges)
        nodes_of = lambda p: set(p)
        # if (x,y) and (y,z) in closure then (x,z) must be too
        as_set = {frozenset(p) for p in closure}
        for p1 in as_set:
            for p2 in as_set:
                shared = p1 & p2
                if len(shared) == 1 and p1 != p2:
                    third = frozenset((p1 | p2) - shared)
                    assert third in as_set
