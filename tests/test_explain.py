"""Tests for the per-pair explanation decomposition."""

import numpy as np
import pytest

from repro.core import ZeroER
from repro.core.explain import explain_pairs


@pytest.fixture
def fitted(grouped_mixture):
    X, y, groups = grouped_mixture
    model = ZeroER(transitivity=False).fit(X, feature_groups=groups)
    return model, X, y, groups


class TestExplain:
    def test_one_explanation_per_row(self, fitted):
        model, X, _, _ = fitted
        explanations = model.explain(X[:7])
        assert len(explanations) == 7

    def test_posterior_reconstruction_matches_predict_proba(self, fitted):
        # the decomposition is exact: prior + Σ group LLRs == model log-odds
        model, X, _, _ = fitted
        explanations = model.explain(X[:25])
        proba = model.predict_proba(X[:25])
        rebuilt = np.array([e.posterior for e in explanations])
        assert np.allclose(rebuilt, proba, atol=1e-10)

    def test_log_odds_is_sum_of_parts(self, fitted):
        model, X, _, _ = fitted
        for e in model.explain(X[:5]):
            total = e.prior_log_odds + sum(c.log_likelihood_ratio for c in e.contributions)
            assert total == pytest.approx(e.log_odds)

    def test_one_contribution_per_group(self, fitted):
        model, X, _, groups = fitted
        e = model.explain(X[:1])[0]
        assert len(e.contributions) == len(groups)
        assert [list(c.feature_indices) for c in e.contributions] == groups

    def test_matches_get_positive_contributions(self, fitted):
        model, X, y, _ = fitted
        match_rows = X[y == 1][:5]
        for e in model.explain(match_rows):
            assert sum(c.log_likelihood_ratio for c in e.contributions) > 0
            assert any(c.favors_match for c in e.contributions)

    def test_unmatches_get_negative_log_odds(self, fitted):
        model, X, y, _ = fitted
        unmatch_rows = X[y == 0][:5]
        for e in model.explain(unmatch_rows):
            assert e.log_odds < 0

    def test_top_orders_by_magnitude(self, fitted):
        model, X, _, _ = fitted
        e = model.explain(X[:1])[0]
        top = e.top(2)
        magnitudes = [abs(c.log_likelihood_ratio) for c in top]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_prior_log_odds_negative_for_imbalanced_data(self, fitted):
        model, X, _, _ = fitted
        e = model.explain(X[:1])[0]
        assert e.prior_log_odds < 0  # matches are the minority

    def test_explain_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ZeroER().explain(np.ones((1, 3)))

    def test_wrong_width_raises(self, fitted):
        model, X, _, _ = fitted
        with pytest.raises(ValueError):
            model.explain(np.ones((2, X.shape[1] + 1)))

    def test_explain_pairs_direct_api(self, fitted):
        model, X, _, _ = fitted
        # feeding already-normalized data through the low-level API
        prepared = model._normalizer.transform(X[:3])
        explanations = explain_pairs(model.params_, prepared)
        assert len(explanations) == 3
