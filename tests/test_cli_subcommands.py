"""Tests for the ``fit`` / ``resolve`` CLI subcommands (and ``run`` routing)."""

import csv

import pytest

from repro import load_benchmark
from repro.__main__ import main
from repro.data.io import write_csv
from repro.data.table import Table


@pytest.fixture(scope="module")
def csv_world(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli_incremental")
    ds = load_benchmark("rest_fz", scale="tiny", seed=4)
    merged, _ = ds.as_dedup()
    records = list(merged)
    base = Table(records[:-10], attributes=merged.attributes)
    batch = Table(records[-10:], attributes=merged.attributes)
    write_csv(base, tmp / "base.csv")
    write_csv(batch, tmp / "batch.csv")
    write_csv(ds.left, tmp / "left.csv")
    write_csv(ds.right, tmp / "right.csv")
    return tmp


class TestFitResolveCLI:
    def test_fit_writes_artifacts(self, csv_world):
        art = csv_world / "art"
        code = main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "name", "--artifacts", str(art)]
        )
        assert code == 0
        assert (art / "manifest.json").is_file()
        assert (art / "arrays.npz").is_file()

    def test_resolve_assigns_and_updates_store(self, csv_world):
        art = csv_world / "art2"
        assert main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "name", "--artifacts", str(art)]
        ) == 0
        out = csv_world / "assignments.csv"
        code = main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv"), "-o", str(out)]
        )
        assert code == 0
        with out.open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        assert all(row["entity_id"].startswith("e") for row in rows)
        # the artifact directory was updated in place: the streamed records
        # are now part of the store, so re-streaming them is rejected cleanly
        code = main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv")]
        )
        assert code == 2

    def test_resolve_bad_output_path_keeps_batch_retryable(self, csv_world):
        """An unwritable -o must not persist the store (the batch can re-run)."""
        art = csv_world / "art3"
        assert main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "name", "--artifacts", str(art)]
        ) == 0
        code = main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv"),
             "-o", str(csv_world / "no-such-dir" / "out.csv")]
        )
        assert code == 2
        # artifacts untouched → the same batch resolves fine on retry
        assert main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv")]
        ) == 0

    def test_resolve_bad_artifacts_dir(self, csv_world):
        code = main(
            ["resolve", "--artifacts", str(csv_world / "missing"),
             "--records", str(csv_world / "batch.csv")]
        )
        assert code == 2

    def test_fit_bad_block_attribute(self, csv_world):
        code = main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "nope", "--artifacts", str(csv_world / "never")]
        )
        assert code == 2

    def test_explicit_run_subcommand_matches_legacy_flat_flags(self, csv_world):
        """``run`` and the historical no-subcommand spelling are equivalent."""
        args = ["--left", str(csv_world / "left.csv"),
                "--right", str(csv_world / "right.csv"), "--block-on", "name"]
        new, old = csv_world / "m_new.csv", csv_world / "m_old.csv"
        assert main(["run", *args, "-o", str(new)]) == 0
        assert main([*args, "-o", str(old)]) == 0
        assert new.read_text() == old.read_text()
