"""Tests for the ``fit`` / ``resolve`` CLI subcommands (and ``run`` routing)."""

import csv

import pytest

from repro import load_benchmark
from repro.__main__ import main
from repro.data.io import write_csv
from repro.data.table import Table


@pytest.fixture(scope="module")
def csv_world(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli_incremental")
    ds = load_benchmark("rest_fz", scale="tiny", seed=4)
    merged, _ = ds.as_dedup()
    records = list(merged)
    base = Table(records[:-10], attributes=merged.attributes)
    batch = Table(records[-10:], attributes=merged.attributes)
    write_csv(base, tmp / "base.csv")
    write_csv(batch, tmp / "batch.csv")
    write_csv(ds.left, tmp / "left.csv")
    write_csv(ds.right, tmp / "right.csv")
    return tmp


class TestFitResolveCLI:
    def test_fit_writes_artifacts(self, csv_world):
        art = csv_world / "art"
        code = main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "name", "--artifacts", str(art)]
        )
        assert code == 0
        from repro.incremental.artifacts import artifact_dir

        version_dir = artifact_dir(art)
        assert (art / "CURRENT").is_file()
        assert (version_dir / "manifest.json").is_file()
        assert (version_dir / "arrays.npz").is_file()
        assert (version_dir / "checksums.json").is_file()

    def test_resolve_assigns_and_updates_store(self, csv_world):
        art = csv_world / "art2"
        assert main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "name", "--artifacts", str(art)]
        ) == 0
        out = csv_world / "assignments.csv"
        code = main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv"), "-o", str(out)]
        )
        assert code == 0
        with out.open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        assert all(row["entity_id"].startswith("e") for row in rows)
        # the artifact directory was updated in place: the streamed records
        # are now part of the store, so re-streaming them is rejected cleanly
        code = main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv")]
        )
        assert code == 2

    def test_resolve_bad_output_path_keeps_batch_retryable(self, csv_world):
        """An unwritable -o must not persist the store (the batch can re-run)."""
        art = csv_world / "art3"
        assert main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "name", "--artifacts", str(art)]
        ) == 0
        code = main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv"),
             "-o", str(csv_world / "no-such-dir" / "out.csv")]
        )
        assert code == 2
        # artifacts untouched → the same batch resolves fine on retry
        assert main(
            ["resolve", "--artifacts", str(art),
             "--records", str(csv_world / "batch.csv")]
        ) == 0

    def test_resolve_bad_artifacts_dir(self, csv_world):
        code = main(
            ["resolve", "--artifacts", str(csv_world / "missing"),
             "--records", str(csv_world / "batch.csv")]
        )
        assert code == 2

    def test_fit_bad_block_attribute(self, csv_world):
        code = main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--block-on", "nope", "--artifacts", str(csv_world / "never")]
        )
        assert code == 2

    def test_explicit_run_subcommand_matches_legacy_flat_flags(self, csv_world):
        """``run`` and the historical no-subcommand spelling are equivalent."""
        args = ["--left", str(csv_world / "left.csv"),
                "--right", str(csv_world / "right.csv"), "--block-on", "name"]
        new, old = csv_world / "m_new.csv", csv_world / "m_old.csv"
        assert main(["run", *args, "-o", str(new)]) == 0
        assert main([*args, "-o", str(old)]) == 0
        assert new.read_text() == old.read_text()


class TestSpecCLI:
    def test_spec_init_stdout(self, capsys):
        import json

        assert main(["spec", "init", "--block-on", "name"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["blocking"]["type"] == "token_overlap"
        assert payload["blocking"]["attribute"] == "name"
        assert payload["version"] == 1

    def test_spec_init_flags_land_in_spec(self, csv_world):
        import json

        path = csv_world / "custom.json"
        assert main(
            ["spec", "init", "--block-on", "name", "--kappa", "0.4",
             "--threshold", "0.7", "--no-transitivity", "-o", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["model"]["config"]["kappa"] == 0.4
        assert payload["model"]["config"]["transitivity"] is False
        assert payload["output"]["threshold"] == 0.7

    def test_run_with_spec_matches_run_with_flags(self, csv_world):
        spec_path = csv_world / "spec.json"
        assert main(["spec", "init", "--block-on", "name", "-o", str(spec_path)]) == 0
        tables = ["--left", str(csv_world / "left.csv"),
                  "--right", str(csv_world / "right.csv")]
        by_flags, by_spec = csv_world / "by_flags.csv", csv_world / "by_spec.csv"
        assert main(["run", *tables, "--block-on", "name", "-o", str(by_flags)]) == 0
        assert main(["run", *tables, "--spec", str(spec_path), "-o", str(by_spec)]) == 0
        assert by_spec.read_text() == by_flags.read_text()

    def test_fit_with_spec_embeds_provenance(self, csv_world):
        import json

        spec_path = csv_world / "fit_spec.json"
        assert main(["spec", "init", "--block-on", "name", "-o", str(spec_path)]) == 0
        art = csv_world / "art_spec"
        assert main(
            ["fit", "--left", str(csv_world / "base.csv"),
             "--spec", str(spec_path), "--artifacts", str(art)]
        ) == 0
        from repro.incremental.artifacts import artifact_dir

        manifest = json.loads((artifact_dir(art) / "manifest.json").read_text())
        assert manifest["pipeline_spec"]["blocking"]["attribute"] == "name"

    def test_spec_and_block_on_conflict(self, csv_world, capsys):
        code = main(
            ["run", "--left", str(csv_world / "left.csv"), "--block-on", "name",
             "--spec", "whatever.json", "-o", str(csv_world / "x.csv")]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_missing_block_on_and_spec(self, csv_world, capsys):
        code = main(
            ["run", "--left", str(csv_world / "left.csv"),
             "-o", str(csv_world / "x.csv")]
        )
        assert code == 2
        assert "--block-on" in capsys.readouterr().err

    def test_malformed_spec_file(self, csv_world, capsys):
        bad = csv_world / "bad.json"
        bad.write_text('{"blocking": {"type": "token_overlap", "attribute": "name", "oops": 1}}')
        code = main(
            ["run", "--left", str(csv_world / "left.csv"),
             "--spec", str(bad), "-o", str(csv_world / "x.csv")]
        )
        assert code == 2
        assert "unknown key" in capsys.readouterr().err

    def test_missing_spec_file(self, csv_world, capsys):
        code = main(
            ["run", "--left", str(csv_world / "left.csv"),
             "--spec", str(csv_world / "absent.json"), "-o", str(csv_world / "x.csv")]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_cli_flags_override_spec_values(self, csv_world):
        """--kappa on top of --spec wins over the spec's kappa."""
        spec_path = csv_world / "spec_k.json"
        assert main(["spec", "init", "--block-on", "name", "--kappa", "0.6",
                     "-o", str(spec_path)]) == 0
        tables = ["--left", str(csv_world / "left.csv"),
                  "--right", str(csv_world / "right.csv")]
        base, overridden = csv_world / "k_base.csv", csv_world / "k_override.csv"
        assert main(["run", *tables, "--block-on", "name", "--kappa", "0.15",
                     "-o", str(base)]) == 0
        assert main(["run", *tables, "--spec", str(spec_path), "--kappa", "0.15",
                     "-o", str(overridden)]) == 0
        # κ=0.15 forced over the spec's 0.6 → identical to the flag-built run
        assert overridden.read_text() == base.read_text()

    def test_spec_with_unknown_blocking_attribute_errors(self, csv_world, capsys):
        """A spec blocking on a non-existent column must fail loudly, like --block-on."""
        import json

        bad = csv_world / "bad_attr.json"
        bad.write_text(json.dumps(
            {"blocking": {"type": "token_overlap", "attribute": "nosuchcol"}}
        ))
        code = main(
            ["run", "--left", str(csv_world / "left.csv"),
             "--spec", str(bad), "-o", str(csv_world / "x.csv")]
        )
        assert code == 2
        assert "nosuchcol" in capsys.readouterr().err
