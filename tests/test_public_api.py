"""Public API surface tests: the imports README and DESIGN.md promise."""

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_autoer_alias():
    # the arXiv preprint's name for the same model (now a deprecated alias)
    with pytest.warns(DeprecationWarning):
        assert repro.AutoER is repro.ZeroER


def test_version_present():
    assert repro.__version__


def test_subpackages_importable():
    import repro.api
    import repro.baselines
    import repro.blocking
    import repro.core
    import repro.data
    import repro.eval
    import repro.features
    import repro.incremental
    import repro.pipeline  # the deprecated shim module still imports cleanly
    import repro.text
    import repro.utils  # noqa: F401


def test_facade_names_exist():
    # the curated top-level surface of the declarative/staged API
    from repro import (  # noqa: F401
        CandidateSet,
        ERPipeline,
        ERResult,
        FeatureMatrix,
        MatchSet,
        PipelineSpec,
        ResolutionSession,
        SpecError,
        load_spec,
        resolve,
    )


def test_api_package_all_resolves():
    import repro.api

    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None, name
        # everything repro.api curates is re-exported at top level
        assert name in repro.__all__, f"{name} missing from repro.__all__"


def test_readme_quickstart_names_exist():
    # the exact names used in README's quickstart snippet
    from repro import FeatureGenerator, ZeroER, load_benchmark  # noqa: F401
    from repro.blocking import TokenOverlapBlocker  # noqa: F401
    from repro.eval import precision_recall_f1  # noqa: F401


def test_every_public_callable_has_docstring():
    import inspect

    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, f"undocumented public API: {missing}"
