"""Tests for Tikhonov / adaptive regularization (§3.3)."""

import numpy as np
import pytest

from repro.core.config import ZeroERConfig
from repro.core.regularization import apply_regularization, penalty_diagonal


def cfg(reg, kappa=0.5):
    return ZeroERConfig(regularization=reg, kappa=kappa, transitivity=False)


class TestPenaltyDiagonal:
    def test_none_is_zero(self):
        K = penalty_diagonal(cfg("none"), np.ones(3), np.zeros(3))
        assert np.all(K == 0.0)

    def test_tikhonov_uniform(self):
        K = penalty_diagonal(cfg("tikhonov", 0.3), np.ones(4), np.zeros(4))
        assert np.allclose(K, 0.3)

    def test_adaptive_is_kappa_gap_squared(self):
        mu_m = np.array([1.0, 0.5, 0.2])
        mu_u = np.array([0.0, 0.5, 0.1])
        K = penalty_diagonal(cfg("adaptive", 2.0), mu_m, mu_u)
        assert np.allclose(K, 2.0 * np.array([1.0, 0.0, 0.01]))

    def test_adaptive_larger_gap_more_regularization(self):
        # the paper's Example 2: well-separated features get inflated more,
        # keeping the two components separated after smoothing
        mu_m = np.array([1.0, 0.6])
        mu_u = np.array([0.0, 0.4])
        K = penalty_diagonal(cfg("adaptive"), mu_m, mu_u)
        assert K[0] > K[1]

    def test_adaptive_symmetric_in_classes(self):
        a = penalty_diagonal(cfg("adaptive"), np.ones(2), np.zeros(2))
        b = penalty_diagonal(cfg("adaptive"), np.zeros(2), np.ones(2))
        assert np.allclose(a, b)


class TestApplyRegularization:
    def test_adds_to_diagonal_only(self):
        S = np.array([[0.1, 0.05], [0.05, 0.2]])
        penalty = np.array([1.0, 2.0, 3.0])
        out = apply_regularization(S, penalty, [1, 2])
        assert out[0, 0] == pytest.approx(0.1 + 2.0)
        assert out[1, 1] == pytest.approx(0.2 + 3.0)
        assert out[0, 1] == pytest.approx(0.05)

    def test_does_not_mutate_input(self):
        S = np.eye(2)
        apply_regularization(S, np.ones(2), [0, 1])
        assert np.allclose(S, np.eye(2))

    def test_fixes_singularity(self):
        # zero-variance feature (the paper's f1 example) becomes invertible
        S = np.array([[0.0]])
        out = apply_regularization(S, np.array([0.25]), [0])
        assert np.linalg.det(out) > 0.0
