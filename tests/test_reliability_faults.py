"""Fault-injection suite: crashes during saves never produce a third state.

The central property: enumerate every failpoint a ``save_artifacts`` call
passes through, crash at each one in turn (both soft — in-process exception
— and hard — ``kill -9``, no cleanup), and prove that a subsequent load
always yields either the previous artifact or the new one, bit-identically,
with its checksum manifest intact.
"""

import csv
import json
import shutil

import numpy as np
import pytest

from repro import ERPipeline, load_benchmark
from repro.__main__ import main
from repro.data.io import read_csv, write_csv
from repro.blocking import TokenOverlapBlocker
from repro.incremental import ArtifactError, load_artifacts, save_artifacts
from repro.incremental.artifacts import artifact_dir
from repro.reliability import (
    TMP_MARKER,
    FaultInjector,
    SimulatedCrash,
    inject,
    record_failpoints,
    verify_checksum_manifest,
)
from repro.reliability.faultinject import flip_byte, truncate_file


@pytest.fixture(scope="module")
def fitted():
    """A fitted (generator, model) pair to persist, plus its training table."""
    ds = load_benchmark("rest_fz", scale="tiny", seed=7)
    merged, _ = ds.as_dedup()
    pipeline = ERPipeline(blocking_attribute="name")
    pipeline.run(merged)
    return pipeline.generator_, pipeline.model_, merged


def _tmp_entries(root):
    return [p for p in root.rglob("*") if TMP_MARKER in p.name]


def _live_state(root):
    """(manifest, arrays) of the live version — after verifying its checksums."""
    directory = artifact_dir(root)
    verify_checksum_manifest(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    with np.load(directory / "arrays.npz") as handle:
        arrays = {name: array.copy() for name, array in handle.items()}
    return manifest, arrays


def _assert_state_equal(state, reference):
    manifest, arrays = state
    ref_manifest, ref_arrays = reference
    assert manifest == ref_manifest
    assert set(arrays) == set(ref_arrays)
    for name in arrays:
        np.testing.assert_array_equal(arrays[name], ref_arrays[name])


class TestCrashConsistency:
    def test_crash_at_every_failpoint_leaves_old_or_new(self, fitted, tmp_path):
        generator, model, _table = fitted

        # The "old" artifact every crashed save starts from.
        base = tmp_path / "base"
        save_artifacts(base, generator, model, extra={"tag": "old"})
        old_state = _live_state(base)

        # The "new" state an uninterrupted second save produces.
        reference = tmp_path / "reference"
        shutil.copytree(base, reference)
        save_artifacts(reference, generator, model, extra={"tag": "new"})
        new_state = _live_state(reference)
        assert new_state[0] != old_state[0]

        # Enumerate the crash surface of the second save.
        probe = tmp_path / "probe"
        shutil.copytree(base, probe)
        failpoints = record_failpoints(
            lambda: save_artifacts(probe, generator, model, extra={"tag": "new"})
        )
        assert len(failpoints) >= 10  # staged files + dir publish + pointer swap

        for index, name in enumerate(failpoints):
            for hard in (False, True):
                label = f"failpoint #{index} {name!r} hard={hard}"
                root = tmp_path / f"crash-{index}-{int(hard)}"
                shutil.copytree(base, root)
                injector = FaultInjector(hard=hard).arm_hit(index)
                with inject(injector):
                    with pytest.raises(SimulatedCrash):
                        save_artifacts(root, generator, model, extra={"tag": "new"})

                # The invariant: the live artifact is exactly old or exactly
                # new — checksums verify, and the bytes match one reference.
                state = _live_state(root)
                tag = state[0]["extra"]["tag"]
                assert tag in ("old", "new"), label
                _assert_state_equal(state, old_state if tag == "old" else new_state)

                if not hard:
                    # in-process failures clean their own temp entries
                    assert _tmp_entries(root) == [], label

                # Recovery: the next save sweeps any hard-crash debris and
                # commits normally.
                save_artifacts(root, generator, model, extra={"tag": "recovered"})
                assert _live_state(root)[0]["extra"]["tag"] == "recovered", label
                assert _tmp_entries(root) == [], label

    def test_first_save_crash_leaves_no_artifact_but_load_is_structured(
        self, fitted, tmp_path
    ):
        generator, model, _table = fitted
        root = tmp_path / "art"
        with inject(FaultInjector(hard=True).arm("atomic.dir.before_publish")):
            with pytest.raises(SimulatedCrash):
                save_artifacts(root, generator, model)
        with pytest.raises(ArtifactError) as excinfo:
            load_artifacts(root)
        assert excinfo.value.reason == "missing"
        # and the root is recoverable: a clean save works
        save_artifacts(root, generator, model)
        load_artifacts(root)


class TestTempFileHygiene:
    def test_repeated_saves_leave_no_tmp_entries(self, fitted, tmp_path):
        """Regression: no ``*.tmp-*`` leftovers accumulate across save cycles."""
        generator, model, _table = fitted
        root = tmp_path / "art"
        for i in range(4):
            save_artifacts(root, generator, model, extra={"cycle": i})
            load_artifacts(root)
            assert _tmp_entries(root) == []
        # version pruning kept the directory bounded too
        versions = [p for p in root.iterdir() if p.name.startswith("v")]
        assert len(versions) == 2


class TestCorruptArtifactLoads:
    """Satellite (d): every corruption flavor → ArtifactError + quarantine."""

    @pytest.fixture
    def art(self, fitted, tmp_path):
        generator, model, _table = fitted
        root = tmp_path / "art"
        save_artifacts(root, generator, model)
        return root

    def _assert_quarantined(self, excinfo, root):
        err = excinfo.value
        assert err.quarantined is not None
        assert err.quarantined.exists()
        assert ".corrupt" in err.quarantined.name
        # the original version directory was moved aside
        corpses = [p for p in root.iterdir() if ".corrupt" in p.name]
        assert corpses

    def test_truncated_npz(self, art):
        truncate_file(artifact_dir(art) / "arrays.npz", drop_bytes=32)
        with pytest.raises(ArtifactError, match="integrity") as excinfo:
            load_artifacts(art)
        assert excinfo.value.reason == "integrity"
        self._assert_quarantined(excinfo, art)

    def test_bitflipped_arrays(self, art):
        flip_byte(artifact_dir(art) / "arrays.npz", offset=100)
        with pytest.raises(ArtifactError) as excinfo:
            load_artifacts(art)
        assert excinfo.value.reason == "integrity"
        self._assert_quarantined(excinfo, art)

    def test_edited_manifest_json(self, art):
        from repro.reliability import write_checksum_manifest

        directory = artifact_dir(art)
        (directory / "manifest.json").write_text("{ not json")
        write_checksum_manifest(directory)  # checksums agree with the bad bytes
        with pytest.raises(ArtifactError, match="unreadable artifact manifest") as excinfo:
            load_artifacts(art)
        assert excinfo.value.reason == "corrupt"
        self._assert_quarantined(excinfo, art)

    def test_missing_member(self, art):
        (artifact_dir(art) / "arrays.npz").unlink()
        with pytest.raises(ArtifactError, match="missing file") as excinfo:
            load_artifacts(art)
        assert excinfo.value.reason == "integrity"
        self._assert_quarantined(excinfo, art)

    def test_corrupt_checksum_manifest(self, art):
        flip_byte(artifact_dir(art) / "checksums.json")
        with pytest.raises(ArtifactError) as excinfo:
            load_artifacts(art)
        assert excinfo.value.reason == "integrity"
        self._assert_quarantined(excinfo, art)

    def test_quarantine_frees_the_slot_for_a_fresh_save(self, fitted, art):
        generator, model, _table = fitted
        flip_byte(artifact_dir(art) / "arrays.npz")
        with pytest.raises(ArtifactError):
            load_artifacts(art)
        # the corrupt version is out of the way; saving publishes a new one
        save_artifacts(art, generator, model, extra={"fresh": True})
        manifest, _ = _live_state(art)
        assert manifest["extra"] == {"fresh": True}


class TestLegacyFlatLayout:
    def test_flat_artifact_still_loads_and_never_quarantines(self, fitted, tmp_path):
        generator, model, _table = fitted
        versioned = tmp_path / "versioned"
        save_artifacts(versioned, generator, model)
        source = artifact_dir(versioned)

        flat = tmp_path / "flat"
        flat.mkdir()
        shutil.copy(source / "manifest.json", flat / "manifest.json")
        shutil.copy(source / "arrays.npz", flat / "arrays.npz")
        # no checksums.json, no CURRENT: the pre-reliability layout
        _generator, _model, manifest = load_artifacts(flat)
        assert manifest["model"]["kind"] == "zeroer"

        # structural corruption in a flat root raises (a flipped data byte
        # would pass silently — flat artifacts predate checksums), but the
        # root itself stays put: quarantine applies to versions only
        truncate_file(flat / "arrays.npz", drop_bytes=200)
        with pytest.raises(ArtifactError):
            load_artifacts(flat)
        assert (flat / "manifest.json").exists()
        assert not list(tmp_path.glob("flat.corrupt*"))


class TestCLIFitResume:
    """Acceptance: ``fit --resume`` reproduces the uninterrupted fit to 1e-12."""

    @pytest.fixture(scope="class")
    def base_csv(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli_resume")
        ds = load_benchmark("rest_fz", scale="tiny", seed=11)
        merged, _ = ds.as_dedup()
        path = tmp / "base.csv"
        write_csv(merged, path)
        return path

    def test_resume_matches_uninterrupted_fit(self, base_csv, tmp_path, capsys):
        art_full = tmp_path / "art_full"
        art_resumed = tmp_path / "art_resumed"
        fit = ["fit", "--left", str(base_csv), "--block-on", "name"]

        assert main([*fit, "--artifacts", str(art_full)]) == 0

        # interrupt: zero budget stops EM after one iteration, checkpointing
        assert (
            main(
                [
                    *fit,
                    "--artifacts",
                    str(art_resumed),
                    "--checkpoint-every",
                    "1",
                    "--time-budget",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "interrupted before convergence" in out
        ckpt_root = art_resumed / "checkpoints"
        assert list(ckpt_root.glob("ckpt-*"))

        assert main([*fit, "--artifacts", str(art_resumed), "--resume"]) == 0
        # a converged fit consumes its checkpoint trail
        assert not list(ckpt_root.glob("ckpt-*"))

        _gen_a, model_a, _ = load_artifacts(art_full)
        gen_b, model_b, _ = load_artifacts(art_resumed)
        table = read_csv(base_csv, id_attr="id")
        pairs = TokenOverlapBlocker("name", top_k=40).block(table)
        X = gen_b.transform(table, None, pairs)
        np.testing.assert_allclose(
            model_a.predict_proba(X), model_b.predict_proba(X), rtol=0.0, atol=1e-12
        )

    def test_cli_failure_paths_exit_2_with_error_prefix(self, tmp_path, capsys):
        """Satellite (a): CLI failures print ``error: ...`` and exit 2."""
        missing = tmp_path / "nope.csv"
        cases = [
            ["fit", "--left", str(missing), "--block-on", "name",
             "--artifacts", str(tmp_path / "a")],
            ["fit", "--left", str(missing), "--block-on", "name",
             "--artifacts", str(tmp_path / "a"), "--checkpoint-every", "-3"],
            ["fit", "--left", str(missing), "--block-on", "name",
             "--artifacts", str(tmp_path / "a"), "--time-budget", "-1"],
            ["report", str(tmp_path / "not_an_artifact")],
            ["resolve", "--artifacts", str(tmp_path / "not_an_artifact"),
             "--records", str(missing)],
        ]
        for argv in cases:
            assert main(argv) == 2, argv
            err = capsys.readouterr().err
            assert err.startswith("error: "), (argv, err)

    def test_report_resolves_versioned_layout(self, base_csv, tmp_path, capsys):
        art = tmp_path / "art_report"
        assert (
            main(
                ["fit", "--left", str(base_csv), "--block-on", "name",
                 "--artifacts", str(art)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", str(art)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "resolve"

    def test_unreadable_csv_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        with open(bad, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["name", "city"])  # no id column
            writer.writerow(["alice", "chicago"])
        code = main(
            ["fit", "--left", str(bad), "--block-on", "name",
             "--artifacts", str(tmp_path / "a")]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error: ")
