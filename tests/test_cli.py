"""Tests for the ``python -m repro`` command-line interface."""

import csv

import pytest

from repro import load_benchmark
from repro.__main__ import main
from repro.data.io import write_csv


@pytest.fixture(scope="module")
def csv_tables(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    ds = load_benchmark("rest_fz", scale="tiny", seed=4)
    left_path, right_path = tmp / "left.csv", tmp / "right.csv"
    write_csv(ds.left, left_path)
    write_csv(ds.right, right_path)
    return ds, left_path, right_path, tmp


def _read_matches(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


class TestCLI:
    def test_linkage_run_writes_matches(self, csv_tables):
        ds, left_path, right_path, tmp = csv_tables
        out = tmp / "matches.csv"
        code = main(
            ["--left", str(left_path), "--right", str(right_path),
             "--block-on", "name", "-o", str(out)]
        )
        assert code == 0
        rows = _read_matches(out)
        assert rows, "expected at least one match"
        gold = {(r["left_id"], r["right_id"]) in ds.matches for r in rows}
        assert any(gold)  # finds real matches
        for row in rows:
            assert 0.5 < float(row["score"]) <= 1.0

    def test_one_to_one_flag(self, csv_tables):
        _, left_path, right_path, tmp = csv_tables
        out = tmp / "matches_121.csv"
        code = main(
            ["--left", str(left_path), "--right", str(right_path),
             "--block-on", "name", "-o", str(out), "--one-to-one"]
        )
        assert code == 0
        rows = _read_matches(out)
        lefts = [r["left_id"] for r in rows]
        rights = [r["right_id"] for r in rows]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_dedup_mode(self, csv_tables):
        _, left_path, _, tmp = csv_tables
        out = tmp / "dups.csv"
        code = main(["--left", str(left_path), "--block-on", "name", "-o", str(out)])
        assert code == 0  # runs without a right table

    def test_bad_block_attribute(self, csv_tables):
        _, left_path, right_path, tmp = csv_tables
        code = main(
            ["--left", str(left_path), "--right", str(right_path),
             "--block-on", "nonexistent", "-o", str(tmp / "x.csv")]
        )
        assert code == 2

    def test_no_transitivity_flag(self, csv_tables):
        _, left_path, right_path, tmp = csv_tables
        out = tmp / "matches_not.csv"
        code = main(
            ["--left", str(left_path), "--right", str(right_path),
             "--block-on", "name", "-o", str(out), "--no-transitivity"]
        )
        assert code == 0
