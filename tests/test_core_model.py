"""Tests for the ZeroER public model class."""

import numpy as np
import pytest

from repro.core import ZeroER, ZeroERConfig
from repro.eval import f_score


class TestConstruction:
    def test_default_config(self):
        assert ZeroER().config == ZeroERConfig()

    def test_kwarg_overrides(self):
        model = ZeroER(kappa=0.6, transitivity=False)
        assert model.config.kappa == 0.6
        assert not model.config.transitivity

    def test_config_plus_overrides(self):
        base = ZeroERConfig(kappa=0.3)
        model = ZeroER(base, max_iter=10)
        assert model.config.kappa == 0.3 and model.config.max_iter == 10

    def test_invalid_override_raises(self):
        with pytest.raises(ValueError):
            ZeroER(covariance="bogus")


class TestFit:
    def test_fit_predict_separable(self, separable_mixture):
        X, y = separable_mixture
        labels = ZeroER(transitivity=False).fit_predict(X)
        assert f_score(y, labels) > 0.95

    def test_accepts_nan_features(self, separable_mixture):
        X, y = separable_mixture
        X = X.copy()
        X[::7, 0] = np.nan
        labels = ZeroER(transitivity=False).fit_predict(X)
        assert f_score(y, labels) > 0.9

    def test_grouped_covariance_with_groups(self, grouped_mixture):
        X, y, groups = grouped_mixture
        labels = ZeroER(transitivity=False).fit_predict(X, feature_groups=groups)
        assert f_score(y, labels) > 0.9

    def test_pairs_length_mismatch(self, separable_mixture):
        X, _ = separable_mixture
        with pytest.raises(ValueError, match="pairs"):
            ZeroER().fit(X, pairs=[("a", "b")])

    def test_transitivity_with_pairs_runs(self, separable_mixture):
        X, y = separable_mixture
        pairs = [(f"a{i}", f"b{i}") for i in range(len(y))]
        labels = ZeroER(transitivity=True).fit_predict(X, pairs=pairs)
        # bipartite disjoint pairs: no triangles, so same as no transitivity
        assert f_score(y, labels) > 0.95

    def test_attributes_before_fit_raise(self):
        model = ZeroER()
        for attr in ("match_scores_", "labels_", "params_", "history_"):
            with pytest.raises(RuntimeError, match="fitted"):
                getattr(model, attr)


class TestFittedState:
    @pytest.fixture
    def fitted(self, separable_mixture):
        X, y = separable_mixture
        return ZeroER(transitivity=False).fit(X), X, y

    def test_scores_shape_and_range(self, fitted):
        model, X, _ = fitted
        scores = model.match_scores_
        assert scores.shape == (X.shape[0],)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_labels_are_scores_thresholded(self, fitted):
        model, _, _ = fitted
        assert np.array_equal(model.labels_, (model.match_scores_ > 0.5).astype(int))

    def test_params_prior_is_small_for_imbalanced_data(self, fitted):
        model, _, y = fitted
        assert model.params_.prior_match == pytest.approx(y.mean(), abs=0.05)

    def test_history_and_convergence(self, fitted):
        model, _, _ = fitted
        assert model.converged_
        assert model.n_iter_ == model.history_.n_iterations
        assert model.n_iter_ >= 2

    def test_match_means_exceed_unmatch_means(self, fitted):
        model, _, _ = fitted
        assert np.all(model.params_.match.mean > model.params_.unmatch.mean)


class TestPredict:
    def test_holdout_prediction(self, separable_mixture):
        X, y = separable_mixture
        model = ZeroER(transitivity=False).fit(X[:450])
        pred = model.predict(X[450:])
        assert f_score(y[450:], pred) > 0.85

    def test_predict_proba_range(self, separable_mixture):
        X, _ = separable_mixture
        model = ZeroER(transitivity=False).fit(X)
        proba = model.predict_proba(X[:50])
        assert np.all((proba >= 0) & (proba <= 1))

    def test_predict_with_nan(self, separable_mixture):
        X, _ = separable_mixture
        model = ZeroER(transitivity=False).fit(X)
        X_new = X[:5].copy()
        X_new[0, 0] = np.nan
        assert np.all(np.isfinite(model.predict_proba(X_new)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ZeroER().predict(np.ones((2, 3)))

    def test_training_prediction_consistent_with_labels(self, separable_mixture):
        # predict() on the training matrix ≈ labels_ (up to transitivity and
        # tail-averaging, both absent here)
        X, _ = separable_mixture
        model = ZeroER(transitivity=False).fit(X)
        assert np.array_equal(model.predict(X), model.labels_)
