"""Tests for ZeroERConfig and the Table 4 ablation variants."""

import pytest

from repro.core.config import ZeroERConfig, ablation_variants


class TestValidation:
    def test_defaults_are_papers_final_model(self):
        cfg = ZeroERConfig()
        assert cfg.covariance == "grouped"
        assert cfg.regularization == "adaptive"
        assert cfg.kappa == 0.15
        assert cfg.shared_correlation and cfg.transitivity
        assert cfg.init_threshold == 0.5
        assert cfg.max_iter == 200
        assert cfg.tol == 1e-5
        assert cfg.tail_window == 20

    @pytest.mark.parametrize(
        "field,value",
        [
            ("covariance", "diagonal"),
            ("regularization", "ridge"),
            ("kappa", -0.1),
            ("init_threshold", 1.5),
            ("max_iter", 0),
            ("tol", 0.0),
            ("tail_window", 0),
            ("prior_floor", 0.7),
            ("transitivity_max_degree", 1),
            ("transitivity_warmup", -1),
            ("linkage_mode", "parallel"),
            ("within_init_threshold", -0.2),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            ZeroERConfig(**{field: value})

    def test_frozen(self):
        cfg = ZeroERConfig()
        with pytest.raises(Exception):
            cfg.kappa = 0.3

    def test_replace(self):
        cfg = ZeroERConfig().replace(kappa=0.6, transitivity=False)
        assert cfg.kappa == 0.6 and not cfg.transitivity
        assert ZeroERConfig().kappa == 0.15  # original untouched


class TestAblationVariants:
    def test_table4_column_names(self):
        variants = ablation_variants()
        assert set(variants) == {
            "Full", "Independent", "Grouped",
            "F-Tik", "I-Tik", "G-Tik",
            "F-Adp", "I-Adp", "G-Adp",
            "G+A+P", "G+A+P+T",
        }

    def test_no_reg_variants(self):
        variants = ablation_variants()
        for name in ("Full", "Independent", "Grouped"):
            assert variants[name].regularization == "none"
            assert not variants[name].shared_correlation
            assert not variants[name].transitivity

    def test_covariance_structures(self):
        variants = ablation_variants()
        assert variants["F-Adp"].covariance == "full"
        assert variants["I-Adp"].covariance == "independent"
        assert variants["G-Adp"].covariance == "grouped"

    def test_partial_variants_use_kappa_point_six(self):
        variants = ablation_variants()
        assert variants["G-Adp"].kappa == 0.6
        assert variants["G-Tik"].kappa == 0.6

    def test_final_variants_use_default_kappa(self):
        variants = ablation_variants()
        assert variants["G+A+P"].kappa == 0.15
        assert variants["G+A+P+T"].kappa == 0.15

    def test_only_final_has_transitivity(self):
        variants = ablation_variants()
        for name, cfg in variants.items():
            assert cfg.transitivity == (name == "G+A+P+T")

    def test_p_variants_share_correlation(self):
        variants = ablation_variants()
        assert variants["G+A+P"].shared_correlation
        assert variants["G+A+P+T"].shared_correlation
        assert not variants["G-Adp"].shared_correlation

    def test_custom_kappas(self):
        variants = ablation_variants(kappa_partial=0.4, kappa_full=0.2)
        assert variants["I-Tik"].kappa == 0.4
        assert variants["G+A+P"].kappa == 0.2
