"""Tests for the experiment harness (on the tiny scale)."""

import pytest

from repro.core import ZeroERConfig
from repro.eval.harness import (
    blocker_for,
    co_candidate_pairs,
    format_table,
    prepare_dataset,
    run_zeroer,
    zeroer_f1,
)


@pytest.fixture(scope="module")
def prep():
    return prepare_dataset("rest_fz", scale="tiny", seed=1)


class TestCoCandidatePairs:
    def test_right_side_pairs(self):
        cross = [("l1", "r1"), ("l1", "r2"), ("l2", "r2"), ("l2", "r3")]
        pairs = co_candidate_pairs(cross, side=1)
        assert set(pairs) == {("r1", "r2"), ("r2", "r3")}

    def test_left_side_pairs(self):
        cross = [("l1", "r1"), ("l2", "r1")]
        assert co_candidate_pairs(cross, side=0) == [("l1", "l2")]

    def test_cap_limits_fanout(self):
        cross = [("l", f"r{i}") for i in range(10)]
        pairs = co_candidate_pairs(cross, side=1, cap=3)
        assert len(pairs) == 3  # C(3,2)

    def test_no_duplicates(self):
        cross = [("l1", "r1"), ("l1", "r2"), ("l2", "r1"), ("l2", "r2")]
        pairs = co_candidate_pairs(cross, side=1)
        assert len(pairs) == len(set(pairs)) == 1


class TestPrepareDataset:
    def test_prepared_shapes_align(self, prep):
        assert prep.X.shape == (len(prep.pairs), len(prep.feature_names))
        assert prep.y.shape == (len(prep.pairs),)

    def test_groups_cover_features(self, prep):
        flat = sorted(j for g in prep.feature_groups for j in g)
        assert flat == list(range(len(prep.feature_names)))

    def test_blocking_stats_present(self, prep):
        assert 0.0 < prep.blocking["recall"] <= 1.0
        assert prep.blocking["n_candidates"] == len(prep.pairs)

    def test_cache_returns_same_object(self, prep):
        again = prepare_dataset("rest_fz", scale="tiny", seed=1)
        assert again is prep

    def test_without_within_served_by_full_cache(self, prep):
        light = prepare_dataset("rest_fz", scale="tiny", seed=1, with_within=False)
        assert light is prep

    def test_blocker_recipe_exists_for_all(self):
        from repro.data import BENCHMARK_NAMES
        for name in BENCHMARK_NAMES:
            assert blocker_for(name) is not None


class TestRunZeroER:
    def test_metrics_shape(self, prep):
        res = run_zeroer(prep, ZeroERConfig(transitivity=False))
        assert 0.0 <= res["f1"] <= 1.0
        assert res["n_pairs"] == len(prep.pairs)
        assert res["scores"].shape == (len(prep.pairs),)

    def test_rest_fz_tiny_solves_well(self, prep):
        res = run_zeroer(prep)
        assert res["f1"] > 0.8

    def test_zeroer_f1_swallows_em_failures(self, prep):
        # ε = 0 is the paper's guaranteed-failure initialization
        assert zeroer_f1(prep, ZeroERConfig(init_threshold=0.0)) == 0.0


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        out = format_table(
            [{"dataset": "x", "f1": 0.5}, {"dataset": "y", "f1": 1.0}],
            ["dataset", "f1"],
            title="T",
        )
        assert "T" in out and "dataset" in out
        assert "0.5" in out and "1" in out

    def test_missing_cells_blank(self):
        out = format_table([{"a": 1}], ["a", "b"])
        assert out.splitlines()[-1].strip().endswith("|") or "1" in out

    def test_nan_rendered(self):
        out = format_table([{"a": float("nan")}], ["a"])
        assert "nan" in out
