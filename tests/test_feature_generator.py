"""Tests for the Magellan-style feature generator."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.features.generator import FeatureGenerator
from repro.features.types import AttributeType


@pytest.fixture
def tables():
    left = Table(
        [
            {"id": "l1", "name": "golden dragon", "desc": " ".join(["w"] * 12), "price": 10.0},
            {"id": "l2", "name": "blue lotus", "desc": " ".join(["x"] * 12), "price": 20.0},
        ],
        attributes=["name", "desc", "price"],
    )
    right = Table(
        [
            {"id": "r1", "name": "golden dragonn", "desc": " ".join(["w"] * 12), "price": 10.5},
            {"id": "r2", "name": "iron skillet", "desc": None, "price": None},
        ],
        attributes=["name", "desc", "price"],
    )
    return left, right


class TestFit:
    def test_types_inferred(self, tables):
        gen = FeatureGenerator().fit(*tables, attributes=["name", "desc", "price"])
        assert gen.attribute_types_["name"] is AttributeType.MEDIUM_STRING
        assert gen.attribute_types_["desc"] is AttributeType.LONG_STRING
        assert gen.attribute_types_["price"] is AttributeType.NUMERIC

    def test_groups_partition_features(self, tables):
        gen = FeatureGenerator().fit(*tables)
        d = len(gen.feature_names_)
        flat = sorted(j for g in gen.feature_groups_ for j in g)
        assert flat == list(range(d))
        assert len(gen.feature_groups_) == 3  # one group per attribute

    def test_feature_names_carry_attribute_prefix(self, tables):
        gen = FeatureGenerator().fit(*tables)
        for name in gen.feature_names_:
            assert name.split("_")[0] in ("name", "desc", "price")

    def test_type_override(self, tables):
        gen = FeatureGenerator(type_overrides={"name": AttributeType.SHORT_STRING}).fit(*tables)
        assert gen.attribute_types_["name"] is AttributeType.SHORT_STRING

    def test_unknown_attribute_raises(self, tables):
        with pytest.raises(KeyError, match="not in left"):
            FeatureGenerator().fit(*tables, attributes=["bogus"])

    def test_group_of(self, tables):
        gen = FeatureGenerator().fit(*tables)
        assert gen.group_of(gen.feature_names_[0]) == "name"
        with pytest.raises(KeyError):
            gen.group_of("nope")

    def test_unfitted_raises(self):
        gen = FeatureGenerator()
        with pytest.raises(RuntimeError, match="fitted"):
            _ = gen.feature_names_


class TestTransform:
    def test_shape(self, tables):
        left, right = tables
        gen = FeatureGenerator().fit(left, right)
        pairs = [("l1", "r1"), ("l2", "r2")]
        X = gen.transform(left, right, pairs)
        assert X.shape == (2, len(gen.feature_names_))

    def test_similar_pair_scores_higher(self, tables):
        left, right = tables
        gen = FeatureGenerator().fit(left, right)
        X = gen.transform(left, right, [("l1", "r1"), ("l2", "r1")])
        name_cols = gen.feature_groups_[0]
        assert np.nanmean(X[0, name_cols]) > np.nanmean(X[1, name_cols])

    def test_missing_values_produce_nan(self, tables):
        left, right = tables
        gen = FeatureGenerator().fit(left, right)
        X = gen.transform(left, right, [("l1", "r2")])
        desc_cols = gen.feature_groups_[1]
        price_cols = gen.feature_groups_[2]
        assert np.all(np.isnan(X[0, desc_cols]))
        assert np.all(np.isnan(X[0, price_cols]))

    def test_values_bounded(self, tables):
        left, right = tables
        gen = FeatureGenerator().fit(left, right)
        pairs = [(l, r) for l in ("l1", "l2") for r in ("r1", "r2")]
        X = gen.transform(left, right, pairs)
        finite = X[np.isfinite(X)]
        assert np.all(finite >= 0.0) and np.all(finite <= 1.0 + 1e-9)

    def test_dedup_mode(self, tables):
        left, _ = tables
        gen = FeatureGenerator().fit(left)
        X = gen.transform(left, None, [("l1", "l2"), ("l1", "l1")])
        # self-pair must be all-1 on string features (identical values)
        name_cols = gen.feature_groups_[0]
        assert np.allclose(X[1, name_cols], 1.0)

    def test_numeric_scale_from_data(self, tables):
        left, right = tables
        gen = FeatureGenerator().fit(left, right)
        price_specs = [s for s in gen.features_ if s.attribute == "price" and hasattr(s, "scale")]
        abs_spec = [s for s in price_specs if getattr(s, "kind", None) == "absolute"][0]
        assert abs_spec.scale > 0.0
