"""Run-report tests: schema, round-trips, artifact embedding, CLI, bench schema."""

import json
import sys
from pathlib import Path

import pytest

from repro import ERPipeline, load_benchmark
from repro.__main__ import main
from repro.incremental import load_artifacts
from repro.obs import (
    REPORT_VERSION,
    ReportError,
    RunTelemetry,
    build_report,
    configure_telemetry,
    reset_metrics,
    span_tree,
    validate_report,
)

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(autouse=True)
def telemetry_off():
    configure_telemetry(None)
    reset_metrics()
    yield
    configure_telemetry(None)
    reset_metrics()


@pytest.fixture(scope="module")
def dataset():
    return load_benchmark("rest_fz", scale="tiny", seed=2)


def _traced_result(dataset):
    configure_telemetry("memory")
    result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
    configure_telemetry(None)
    return result


class TestReportDocument:
    def test_traced_report_validates_and_nests(self, dataset):
        result = _traced_result(dataset)
        doc = validate_report(result.report())
        assert doc["report_version"] == REPORT_VERSION
        assert doc["traced"] is True
        assert doc["kind"] == "resolve"
        assert set(doc["timings"]) == {"blocking", "features", "matching"}
        roots = span_tree(doc["spans"])
        assert [r["name"] for r in roots] == ["resolve"]
        assert [c["name"] for c in roots[0]["children"]] == [
            "blocking",
            "features",
            "matching",
        ]
        stats = doc["candidate_statistics"]
        assert stats["n_candidates"] == len(result.pairs)
        assert 0.0 <= stats["reduction_ratio"] <= 1.0
        assert doc["em"]["n_iterations"] >= 1
        assert doc["metrics"]["counters"]["matching.pairs_scored"] == len(result.pairs)

    def test_untraced_report_still_validates(self, dataset):
        result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        doc = validate_report(result.report())
        assert doc["traced"] is False
        assert doc["spans"] == []
        assert doc["em"] is not None  # cheap summaries survive untraced runs
        assert doc["candidate_statistics"]["n_candidates"] == len(result.pairs)

    def test_report_round_trips_through_json(self, dataset):
        doc = _traced_result(dataset).report()
        restored = json.loads(json.dumps(doc))
        assert validate_report(restored) == doc

    def test_report_without_telemetry_attribute(self):
        telemetry = RunTelemetry(kind="resolve", traced=False)
        doc = validate_report(build_report(telemetry, {"blocking": 0.1}))
        assert doc["timings"] == {"blocking": 0.1}
        assert doc["em"] is None


class TestValidateReport:
    def test_rejects_non_dict(self):
        with pytest.raises(ReportError, match="must be a dict"):
            validate_report([])

    def test_rejects_missing_keys(self):
        with pytest.raises(ReportError, match="missing key"):
            validate_report({"report_version": REPORT_VERSION})

    def test_rejects_future_version(self, dataset):
        doc = _traced_result(dataset).report()
        doc["report_version"] = REPORT_VERSION + 1
        with pytest.raises(ReportError, match="report_version"):
            validate_report(doc)

    def test_rejects_bad_span_records(self, dataset):
        doc = _traced_result(dataset).report()
        doc["spans"] = [{"name": "x"}]
        with pytest.raises(ReportError, match="spans\\[0\\]"):
            validate_report(doc)

    def test_rejects_bad_timings(self, dataset):
        doc = _traced_result(dataset).report()
        doc["timings"]["blocking"] = "fast"
        with pytest.raises(ReportError, match="timings"):
            validate_report(doc)

    def test_lists_every_problem(self, dataset):
        doc = _traced_result(dataset).report()
        doc["kind"] = 7
        doc["metrics"] = {"counters": {}}
        with pytest.raises(ReportError) as err:
            validate_report(doc)
        message = str(err.value)
        assert "kind" in message and "gauges" in message


class TestResolveResultReport:
    def test_incremental_report(self, dataset):
        pipeline = ERPipeline(blocking_attribute="name")
        merged, _ = dataset.as_dedup()
        pipeline.run(merged)
        resolver = pipeline.freeze()
        configure_telemetry("memory")
        record = dict(next(iter(merged)))
        record["id"] = "fresh-1"
        result = resolver.resolve([record])
        configure_telemetry(None)
        doc = validate_report(result.report())
        assert doc["kind"] == "resolve.incremental"
        assert doc["traced"] is True
        assert set(doc["timings"]) == {"candidates", "features", "scoring"}
        roots = span_tree(doc["spans"])
        assert [r["name"] for r in roots] == ["resolve.incremental"]
        assert [c["name"] for c in roots[0]["children"]] == [
            "candidates",
            "features",
            "scoring",
        ]
        assert doc["context"]["batch_size"] == 1


class TestArtifactEmbeddingAndCli:
    def _write_tables(self, tmp_path, dataset):
        merged, _ = dataset.as_dedup()
        rows = list(merged)
        attrs = ["id", *merged.attributes]
        base, extra = rows[:-2], rows[-2:]

        def write(path, records):
            lines = [",".join(attrs)]
            for rec in records:
                lines.append(
                    ",".join(str(rec.get(a, "")).replace(",", " ") for a in attrs)
                )
            path.write_text("\n".join(lines) + "\n")

        write(tmp_path / "base.csv", base)
        write(tmp_path / "new.csv", extra)

    def test_fit_embeds_report_and_cli_prints_it(self, tmp_path, capsys, dataset):
        self._write_tables(tmp_path, dataset)
        art = tmp_path / "art"
        code = main(
            [
                "fit",
                "--left",
                str(tmp_path / "base.csv"),
                "--block-on",
                "name",
                "--artifacts",
                str(art),
                "--trace",
                str(tmp_path / "trace.jsonl"),
            ]
        )
        assert code == 0
        _generator, _model, manifest = load_artifacts(art)
        doc = validate_report(manifest["run_report"])
        assert doc["traced"] is True
        trace_lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert trace_lines and all(
            json.loads(line)["type"] == "span" for line in trace_lines
        )

        capsys.readouterr()
        code = main(["report", str(art), "-o", str(tmp_path / "report.json")])
        assert code == 0
        printed = json.loads((tmp_path / "report.json").read_text())
        assert validate_report(printed)["kind"] == "resolve"

        # resolve a batch: the embedded report is replaced with the batch's
        code = main(
            [
                "resolve",
                "--artifacts",
                str(art),
                "--records",
                str(tmp_path / "new.csv"),
            ]
        )
        assert code == 0
        _generator, _model, manifest = load_artifacts(art)
        doc = validate_report(manifest["run_report"])
        assert doc["kind"] == "resolve.incremental"
        assert doc["traced"] is False  # no --trace on this resolve

    def test_run_report_flag(self, tmp_path, capsys, dataset):
        self._write_tables(tmp_path, dataset)
        report_path = tmp_path / "run_report.json"
        code = main(
            [
                "run",
                "--left",
                str(tmp_path / "base.csv"),
                "--block-on",
                "name",
                "-o",
                str(tmp_path / "matches.csv"),
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        doc = validate_report(json.loads(report_path.read_text()))
        assert doc["kind"] == "resolve"
        assert doc["traced"] is False

    def test_report_errors_without_embedded_report(self, tmp_path, capsys):
        art = tmp_path / "art"
        art.mkdir()
        (art / "manifest.json").write_text(json.dumps({"schema_version": 1}))
        assert main(["report", str(art)]) == 2
        assert "no run report" in capsys.readouterr().err

    def test_report_errors_on_missing_directory(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "not an artifact directory" in capsys.readouterr().err

    def test_unwritable_trace_path_is_a_clean_error(self, tmp_path, capsys, dataset):
        self._write_tables(tmp_path, dataset)
        code = main(
            [
                "run",
                "--left",
                str(tmp_path / "base.csv"),
                "--block-on",
                "name",
                "-o",
                str(tmp_path / "matches.csv"),
                "--trace",
                str(tmp_path / "missing-dir" / "trace.jsonl"),
            ]
        )
        assert code == 2
        assert "cannot open trace file" in capsys.readouterr().err
        from repro.obs import get_sinks

        assert get_sinks() == ()  # the failed configure left nothing behind


class TestBenchSchema:
    @pytest.fixture(autouse=True)
    def _bench_utils_on_path(self):
        sys.path.insert(0, str(BENCHMARKS_DIR))
        yield
        sys.path.remove(str(BENCHMARKS_DIR))

    def test_checked_in_bench_reports_validate(self):
        from _bench_utils import BENCH_SCHEMA, validate_bench_report

        paths = sorted(BENCHMARKS_DIR.glob("BENCH_*.json"))
        assert len(paths) >= 3
        for path in paths:
            doc = json.loads(path.read_text())
            validate_bench_report(doc)
            assert doc["schema"] == BENCH_SCHEMA
            assert doc["benchmark"] in path.stem.lower()

    def test_bench_workload_derives_speedup(self):
        from _bench_utils import bench_workload

        row = bench_workload(
            "pub_da", "sparse", 0.5, baseline_engine="per-record", baseline_seconds=2.0
        )
        assert row["speedup"] == 4.0
        assert row["baseline_engine"] == "per-record"

    def test_bench_workload_requires_a_speedup_source(self):
        from _bench_utils import bench_workload

        with pytest.raises(ValueError, match="speedup"):
            bench_workload("pub_da", "sparse", 0.5)

    def test_validate_bench_report_rejects_bad_rows(self):
        from _bench_utils import validate_bench_report

        doc = {
            "schema": "repro-bench/1",
            "tool_version": "1.0",
            "benchmark": "x",
            "meta": {},
            "workloads": [{"dataset": "d", "engine": "e", "seconds": -1}],
        }
        with pytest.raises(ValueError, match="seconds"):
            validate_bench_report(doc)
