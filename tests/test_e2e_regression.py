"""End-to-end quality regression gate.

The full pipeline — generate → block → featurize → EM — runs on two tiny
fixture datasets and the resulting metrics are compared against checked-in
baselines (``tests/baselines/*.json``). Blocking is integer-deterministic,
so the candidate count and blocking recall must match *exactly*; F1 gets a
small tolerance for cross-platform float wiggle. A quality regression —
not just a crash — therefore fails CI.

To refresh a baseline after an intentional quality change, re-run the
metrics (see the JSON fields) and update the file in the same PR.
"""

import json
from pathlib import Path

import pytest

from repro.blocking import candidate_recall
from repro.eval.harness import clear_prepared_cache, prepare_dataset, run_zeroer

BASELINE_DIR = Path(__file__).parent / "baselines"
BASELINES = sorted(BASELINE_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    with path.open(encoding="utf-8") as handle:
        return json.load(handle)


def test_baselines_present():
    assert len(BASELINES) >= 2, "expected at least two checked-in e2e baselines"


@pytest.mark.parametrize("path", BASELINES, ids=lambda p: p.stem)
def test_pipeline_quality_matches_baseline(path):
    baseline = _load(path)
    clear_prepared_cache()
    prep = prepare_dataset(baseline["dataset"], scale=baseline["scale"], seed=baseline["seed"])

    # blocking is deterministic integer work: exact equality
    assert prep.n_pairs == baseline["n_pairs"], (
        f"candidate count changed: {prep.n_pairs} vs baseline {baseline['n_pairs']}"
    )
    recall = candidate_recall(prep.pairs, prep.dataset.matches)
    assert recall == pytest.approx(baseline["blocking_recall"], abs=1e-6)

    result = run_zeroer(prep)
    tolerance = baseline["f1_tolerance"]
    assert result["f1"] == pytest.approx(baseline["f1"], abs=tolerance), (
        f"F1 {result['f1']:.4f} drifted beyond ±{tolerance} of "
        f"baseline {baseline['f1']:.4f} on {baseline['dataset']}"
    )
