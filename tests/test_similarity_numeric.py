"""Tests for exact-match and numeric similarity measures."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    exact_match,
    numeric_absolute_similarity,
    numeric_relative_similarity,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestExactMatch:
    def test_equal_strings(self):
        assert exact_match("abc", "abc") == 1.0

    def test_unequal(self):
        assert exact_match("abc", "abd") == 0.0

    def test_numbers_compared_as_strings(self):
        assert exact_match(1995, 1995) == 1.0
        assert exact_match(1995, "1995") == 1.0

    def test_missing(self):
        assert math.isnan(exact_match(None, "x"))
        assert math.isnan(exact_match("x", None))


class TestNumericAbsolute:
    def test_equal_values(self):
        assert numeric_absolute_similarity(3.0, 3.0) == 1.0

    def test_decay_at_scale(self):
        assert numeric_absolute_similarity(0.0, 1.0, scale=1.0) == pytest.approx(math.exp(-1))

    def test_scale_controls_decay(self):
        near = numeric_absolute_similarity(0.0, 5.0, scale=100.0)
        far = numeric_absolute_similarity(0.0, 5.0, scale=1.0)
        assert near > far

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            numeric_absolute_similarity(1.0, 2.0, scale=0.0)

    def test_unparseable_is_nan(self):
        assert math.isnan(numeric_absolute_similarity("abc", 1.0))

    def test_missing_is_nan(self):
        assert math.isnan(numeric_absolute_similarity(None, 1.0))

    @given(finite_floats, finite_floats)
    def test_bounded_and_symmetric(self, a, b):
        val = numeric_absolute_similarity(a, b, scale=10.0)
        assert 0.0 <= val <= 1.0
        assert val == pytest.approx(numeric_absolute_similarity(b, a, scale=10.0))

    @given(finite_floats)
    def test_identity_scores_one(self, a):
        assert numeric_absolute_similarity(a, a, scale=5.0) == 1.0


class TestNumericRelative:
    def test_known_value(self):
        assert numeric_relative_similarity(100.0, 90.0) == pytest.approx(0.9)

    def test_both_zero(self):
        assert numeric_relative_similarity(0.0, 0.0) == 1.0

    def test_floor_at_zero(self):
        assert numeric_relative_similarity(1.0, -100.0) == 0.0

    def test_string_numbers_parse(self):
        assert numeric_relative_similarity("10", "10") == 1.0

    def test_missing_is_nan(self):
        assert math.isnan(numeric_relative_similarity(None, 3))

    @given(finite_floats, finite_floats)
    def test_bounded_and_symmetric(self, a, b):
        val = numeric_relative_similarity(a, b)
        assert 0.0 <= val <= 1.0
        assert val == pytest.approx(numeric_relative_similarity(b, a))
