"""Atomic-write primitives: replace semantics, checksums, retry, quarantine."""

import json

import pytest

from repro.reliability import (
    CHECKSUMS_NAME,
    TMP_MARKER,
    FaultInjector,
    IntegrityError,
    SimulatedCrash,
    atomic_directory,
    atomic_write_bytes,
    atomic_write_json,
    cleanup_stale_tmp,
    inject,
    quarantine,
    retry_io,
    sha256_file,
    verify_checksum_manifest,
    write_checksum_manifest,
)
from repro.reliability.atomic import tmp_sibling
from repro.reliability.faultinject import flip_byte, record_failpoints, truncate_file


def _tmp_entries(root):
    return [p for p in root.rglob("*") if TMP_MARKER in p.name]


class TestAtomicFileWrite:
    def test_replaces_content(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old-bytes")
        atomic_write_bytes(target, b"new-bytes")
        assert target.read_bytes() == b"new-bytes"
        assert _tmp_entries(tmp_path) == []

    def test_tmp_sibling_carries_marker(self, tmp_path):
        sibling = tmp_sibling(tmp_path / "x.json")
        assert TMP_MARKER in sibling.name
        assert sibling.parent == tmp_path

    @pytest.mark.parametrize(
        "failpoint",
        [
            "atomic.file.open",
            "atomic.file.mid_write",
            "atomic.file.before_fsync",
            "atomic.file.before_rename",
        ],
    )
    def test_crash_before_rename_keeps_old_bytes(self, tmp_path, failpoint):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old-bytes")
        with inject(FaultInjector().arm(failpoint)):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(target, b"new-bytes")
        assert target.read_bytes() == b"old-bytes"
        # a soft crash (in-process exception) cleans its own temp file
        assert _tmp_entries(tmp_path) == []

    def test_crash_after_rename_has_new_bytes(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old-bytes")
        with inject(FaultInjector().arm("atomic.file.after_rename")):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(target, b"new-bytes")
        assert target.read_bytes() == b"new-bytes"

    def test_hard_crash_leaves_tmp_for_sweep(self, tmp_path, hard_fault_injector):
        target = tmp_path / "data.bin"
        hard_fault_injector.arm("atomic.file.mid_write")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"0123456789abcdef")
        leftovers = _tmp_entries(tmp_path)
        assert len(leftovers) == 1
        # the partial write really is partial: half the payload
        assert leftovers[0].read_bytes() == b"01234567"

    def test_cleanup_stale_tmp_sweeps_leftovers(self, tmp_path):
        (tmp_path / f"arrays.npz{TMP_MARKER}123-0").write_bytes(b"junk")
        (tmp_path / f"v000001{TMP_MARKER}123-1").mkdir()
        (tmp_path / "keep.txt").write_text("keep")
        removed = cleanup_stale_tmp(tmp_path)
        assert len(removed) == 2
        assert _tmp_entries(tmp_path) == []
        assert (tmp_path / "keep.txt").exists()

    def test_atomic_write_json_round_trips(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"a": 1, "b": [1.5, None]})
        assert json.loads(target.read_text()) == {"a": 1, "b": [1.5, None]}


class TestAtomicDirectory:
    def test_publishes_all_or_nothing(self, tmp_path):
        final = tmp_path / "bundle"
        with atomic_directory(final) as staging:
            (staging / "a.txt").write_text("a")
            (staging / "b.txt").write_text("b")
            assert not final.exists()  # invisible until publish
        assert (final / "a.txt").read_text() == "a"
        assert (final / "b.txt").read_text() == "b"
        assert _tmp_entries(tmp_path) == []

    def test_refuses_existing_target(self, tmp_path):
        final = tmp_path / "bundle"
        final.mkdir()
        with pytest.raises(FileExistsError):
            with atomic_directory(final):
                pass

    def test_exception_removes_staging(self, tmp_path):
        final = tmp_path / "bundle"
        with pytest.raises(RuntimeError):
            with atomic_directory(final) as staging:
                (staging / "a.txt").write_text("a")
                raise RuntimeError("boom")
        assert not final.exists()
        assert _tmp_entries(tmp_path) == []

    def test_hard_crash_leaves_staging(self, tmp_path, hard_fault_injector):
        final = tmp_path / "bundle"
        hard_fault_injector.arm("atomic.dir.before_publish")
        with pytest.raises(SimulatedCrash):
            with atomic_directory(final) as staging:
                (staging / "a.txt").write_text("a")
        assert not final.exists()
        assert len(_tmp_entries(tmp_path)) >= 1
        cleanup_stale_tmp(tmp_path)
        assert _tmp_entries(tmp_path) == []


class TestRetryIO:
    def test_transient_oserror_is_retried(self):
        calls = []
        retried = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        result = retry_io(
            flaky, sleep=lambda _s: None, on_retry=lambda exc, n: retried.append(n)
        )
        assert result == "ok"
        assert len(calls) == 3
        assert retried == [0, 1]

    def test_exhausted_attempts_raise_last_error(self):
        def always_fails():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            retry_io(always_fails, attempts=3, sleep=lambda _s: None)

    def test_simulated_crash_is_never_retried(self):
        calls = []

        def crashes():
            calls.append(1)
            raise SimulatedCrash("died")

        with pytest.raises(SimulatedCrash):
            retry_io(crashes, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            retry_io(lambda: None, attempts=0)


class TestChecksumManifest:
    @pytest.fixture
    def signed_dir(self, tmp_path):
        d = tmp_path / "artifact"
        d.mkdir()
        (d / "a.bin").write_bytes(b"payload-a")
        (d / "b.json").write_text("{}")
        write_checksum_manifest(d)
        return d

    def test_round_trip_verifies(self, signed_dir):
        verify_checksum_manifest(signed_dir)  # does not raise
        payload = json.loads((signed_dir / CHECKSUMS_NAME).read_text())
        assert payload["algorithm"] == "sha256"
        assert set(payload["files"]) == {"a.bin", "b.json"}
        assert payload["files"]["a.bin"] == sha256_file(signed_dir / "a.bin")

    def test_flipped_byte_is_detected(self, signed_dir):
        flip_byte(signed_dir / "a.bin")
        with pytest.raises(IntegrityError, match="a.bin"):
            verify_checksum_manifest(signed_dir)

    def test_truncated_member_is_detected(self, signed_dir):
        truncate_file(signed_dir / "a.bin", drop_bytes=4)
        with pytest.raises(IntegrityError, match="a.bin"):
            verify_checksum_manifest(signed_dir)

    def test_missing_member_is_detected(self, signed_dir):
        (signed_dir / "b.json").unlink()
        with pytest.raises(IntegrityError, match="missing file 'b.json'"):
            verify_checksum_manifest(signed_dir)

    def test_missing_manifest_is_an_integrity_failure(self, tmp_path):
        d = tmp_path / "bare"
        d.mkdir()
        with pytest.raises(IntegrityError, match=CHECKSUMS_NAME):
            verify_checksum_manifest(d)

    def test_unparseable_manifest_is_an_integrity_failure(self, signed_dir):
        (signed_dir / CHECKSUMS_NAME).write_text("not json {")
        with pytest.raises(IntegrityError, match="unreadable"):
            verify_checksum_manifest(signed_dir)


class TestQuarantine:
    def test_moves_aside_and_numbers_collisions(self, tmp_path):
        for expected in ("bad.corrupt", "bad.corrupt-1", "bad.corrupt-2"):
            victim = tmp_path / "bad"
            victim.mkdir()
            (victim / "evidence.txt").write_text("x")
            moved = quarantine(victim)
            assert moved.name == expected
            assert not victim.exists()
            assert (moved / "evidence.txt").exists()


class TestFailpointEnumeration:
    def test_record_failpoints_covers_the_file_writer(self, tmp_path):
        hits = record_failpoints(lambda: atomic_write_bytes(tmp_path / "f", b"data"))
        assert hits == [
            "atomic.file.open",
            "atomic.file.mid_write",
            "atomic.file.before_fsync",
            "atomic.file.before_rename",
            "atomic.file.after_rename",
        ]
