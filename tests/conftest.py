"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.table import Table


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fault_injector():
    """A soft-crash :class:`FaultInjector` installed for the test.

    Arm it (``fault_injector.arm(...)`` / ``arm_hit(...)``) and run the
    operation under test; un-armed it just records every failpoint hit.
    """
    from repro.reliability import FaultInjector, inject

    injector = FaultInjector()
    with inject(injector):
        yield injector


@pytest.fixture
def hard_fault_injector():
    """Like ``fault_injector`` but modeling ``kill -9``: cleanup paths skipped."""
    from repro.reliability import FaultInjector, inject

    injector = FaultInjector(hard=True)
    with inject(injector):
        yield injector


@pytest.fixture
def separable_mixture(rng):
    """A tiny imbalanced two-class similarity-vector problem.

    Matches (8%) have high similarities, unmatches low — the geometry every
    matcher in this library is supposed to handle. Returns ``(X, y)``.
    """
    n = 600
    y = (rng.random(n) < 0.08).astype(np.float64)
    X = rng.normal(0.18, 0.1, size=(n, 6))
    X[y == 1] += 0.55
    return np.clip(X, 0.0, 1.0), y


@pytest.fixture
def grouped_mixture(rng):
    """Like ``separable_mixture`` but with two correlated feature groups.

    Features 0-2 are correlated copies of one signal, features 3-5 of
    another; the group partition is returned alongside.
    """
    n = 500
    y = (rng.random(n) < 0.1).astype(np.float64)
    base_a = rng.normal(0.2, 0.1, size=n) + 0.5 * y
    base_b = rng.normal(0.25, 0.1, size=n) + 0.45 * y
    X = np.stack(
        [
            base_a,
            base_a + rng.normal(0, 0.02, n),
            base_a + rng.normal(0, 0.02, n),
            base_b,
            base_b + rng.normal(0, 0.02, n),
            base_b + rng.normal(0, 0.02, n),
        ],
        axis=1,
    )
    return np.clip(X, 0.0, 1.0), y, [[0, 1, 2], [3, 4, 5]]


@pytest.fixture
def people_table():
    """A small table used across data/blocking/feature tests."""
    return Table(
        [
            {"id": "a", "name": "alice cooper", "city": "chicago", "age": 34},
            {"id": "b", "name": "alicia cooper", "city": "chicago", "age": 34},
            {"id": "c", "name": "bob dylan", "city": "duluth", "age": 80},
            {"id": "d", "name": "robert dylan", "city": "duluth", "age": 80},
            {"id": "e", "name": "carol king", "city": None, "age": None},
        ],
        attributes=["name", "city", "age"],
    )
