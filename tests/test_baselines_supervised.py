"""Tests for the supervised baselines (LR, tree, RF, MLP)."""

import numpy as np
import pytest

from repro.baselines import (
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.eval import f_score


@pytest.fixture
def train_test(separable_mixture, rng):
    """50/50 split with oversampled matches — the paper's §7.1 protocol."""
    from repro.baselines import oversample_minority

    X, y = separable_mixture
    idx = rng.permutation(len(y))
    half = len(y) // 2
    Xtr, ytr = oversample_minority(X[idx[:half]], y[idx[:half]], random_state=0)
    return Xtr, ytr, X[idx[half:]], y[idx[half:]]


ALL_MODELS = [
    lambda: LogisticRegression(l2=0.1),
    lambda: DecisionTreeClassifier(min_samples_leaf=3, random_state=0),
    lambda: RandomForestClassifier(n_estimators=15, min_samples_leaf=2, random_state=0),
    lambda: MLPClassifier(hidden=(16, 8), max_epochs=60, random_state=0),
]


@pytest.mark.parametrize("factory", ALL_MODELS)
class TestCommonBehavior:
    def test_learns_separable_problem(self, factory, train_test):
        Xtr, ytr, Xte, yte = train_test
        model = factory().fit(Xtr, ytr)
        assert f_score(yte, model.predict(Xte)) > 0.9

    def test_proba_in_unit_interval(self, factory, train_test):
        Xtr, ytr, Xte, _ = train_test
        proba = factory().fit(Xtr, ytr).predict_proba(Xte)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_predict_before_fit_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.ones((2, 6)))

    def test_rejects_non_binary_labels(self, factory, train_test):
        Xtr, ytr, _, _ = train_test
        with pytest.raises(ValueError):
            factory().fit(Xtr, ytr + 1)

    def test_rejects_shape_mismatch(self, factory, train_test):
        Xtr, ytr, _, _ = train_test
        with pytest.raises(ValueError):
            factory().fit(Xtr, ytr[:-1])


class TestLogisticRegression:
    def test_coefficients_point_toward_positive_class(self, train_test):
        Xtr, ytr, _, _ = train_test
        model = LogisticRegression().fit(Xtr, ytr)
        assert np.all(model.coef_ > 0)  # all features are positively informative

    def test_l2_shrinks_weights(self, train_test):
        Xtr, ytr, _, _ = train_test
        loose = LogisticRegression(l2=1e-6).fit(Xtr, ytr)
        tight = LogisticRegression(l2=100.0).fit(Xtr, ytr)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError, match="both classes"):
            LogisticRegression().fit(np.ones((5, 2)), np.ones(5))

    def test_rejects_negative_l2(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_decision_function_sign_matches_prediction(self, train_test):
        Xtr, ytr, Xte, _ = train_test
        model = LogisticRegression().fit(Xtr, ytr)
        z = model.decision_function(Xte)
        assert np.array_equal(model.predict(Xte), (z > 0).astype(int))


class TestDecisionTree:
    def test_pure_node_is_leaf(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 0.0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0

    def test_single_split_problem(self):
        X = np.array([[0.1], [0.2], [0.8], [0.9]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 1
        assert np.array_equal(tree.predict(X), y.astype(int))

    def test_max_depth_respected(self, separable_mixture):
        X, y = separable_mixture
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        X = np.linspace(0, 1, 10)[:, None]
        y = (X.ravel() > 0.55).astype(float)
        tree = DecisionTreeClassifier(min_samples_leaf=4).fit(X, y)
        # any split must leave >= 4 rows per side, so only positions 4..6 allowed
        assert tree.depth() <= 1

    def test_xor_needs_depth_two(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), y.astype(int))
        assert tree.depth() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestRandomForest:
    def test_seed_reproducibility(self, train_test):
        Xtr, ytr, Xte, _ = train_test
        a = RandomForestClassifier(n_estimators=8, random_state=7).fit(Xtr, ytr)
        b = RandomForestClassifier(n_estimators=8, random_state=7).fit(Xtr, ytr)
        assert np.array_equal(a.predict_proba(Xte), b.predict_proba(Xte))

    def test_probability_is_tree_average(self, train_test):
        Xtr, ytr, Xte, _ = train_test
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(Xtr, ytr)
        manual = np.mean([t.predict_proba(Xte) for t in forest.trees_], axis=0)
        assert np.allclose(forest.predict_proba(Xte), manual)

    def test_n_estimators_respected(self, train_test):
        Xtr, ytr, _, _ = train_test
        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(Xtr, ytr)
        assert len(forest.trees_) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestMLP:
    def test_loss_decreases(self, train_test):
        Xtr, ytr, _, _ = train_test
        model = MLPClassifier(hidden=(16,), max_epochs=30, random_state=0).fit(Xtr, ytr)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_early_stopping_on_plateau(self, rng):
        # pure-noise labels: the loss plateaus at ln(2) and patience kicks in
        X = rng.random((200, 4))
        y = (rng.random(200) < 0.5).astype(float)
        model = MLPClassifier(hidden=(4,), max_epochs=300, patience=3, random_state=0)
        model.fit(X, y)
        assert len(model.loss_curve_) < 300

    def test_seed_reproducibility(self, train_test):
        Xtr, ytr, Xte, _ = train_test
        a = MLPClassifier(hidden=(8,), max_epochs=10, random_state=3).fit(Xtr, ytr)
        b = MLPClassifier(hidden=(8,), max_epochs=10, random_state=3).fit(Xtr, ytr)
        assert np.allclose(a.predict_proba(Xte), b.predict_proba(Xte))

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden=())
        with pytest.raises(ValueError):
            MLPClassifier(l2=-0.1)
