"""Graceful degradation: pathological conditions become health flags, not crashes."""

import numpy as np
import pytest

from repro import ERPipeline, ZeroER, ZeroERConfig
from repro.core.exceptions import FeatureMatrixError, ZeroERError
from repro.data.table import Table
from repro.obs import validate_report
from repro.reliability import (
    ALL_NAN_FEATURE_COLUMN,
    EM_NON_CONVERGENCE,
    EMPTY_CANDIDATE_SET,
    SINGULAR_COVARIANCE_FALLBACK,
    HealthFlag,
    HealthReport,
    active_health,
    health_scope,
    record_condition,
)
from repro.utils.linalg import robust_cholesky
from repro.utils.validation import check_feature_matrix


class TestHealthReport:
    def test_record_and_query(self):
        report = HealthReport()
        report.record("thing_degraded", "something bent", widget=3)
        assert report.has("thing_degraded")
        flag = report["thing_degraded"]
        assert flag.severity == "warning"
        assert flag.context == {"widget": 3}
        assert len(report) == 1
        assert report.degraded
        assert report.ok  # warnings are degradations, not failures

    def test_rerecording_dedupes_and_counts(self):
        report = HealthReport()
        for _ in range(5):
            report.record("jitter", "needed jitter")
        assert len(report) == 1
        assert report["jitter"].count == 5

    def test_severity_upgrades_never_downgrades(self):
        report = HealthReport()
        report.record("x", "first", severity="info")
        report.record("x", "worse", severity="error")
        report.record("x", "calmer", severity="warning")
        assert report["x"].severity == "error"
        assert not report.ok

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            HealthReport().record("x", "boom", severity="catastrophic")

    def test_merge_accumulates(self):
        a = HealthReport()
        a.record("shared", "one", severity="info")
        b = HealthReport()
        b.record("shared", "two", severity="error")
        b.record("only_b", "three")
        a.merge(b)
        assert a["shared"].count == 2
        assert a["shared"].severity == "error"
        assert a.has("only_b")

    def test_dict_round_trip(self):
        report = HealthReport()
        report.record("x", "msg", severity="info", detail=1)
        doc = report.to_dict()
        assert doc["ok"] is True
        assert doc["degraded"] is False
        restored = HealthReport.from_dict(doc)
        assert restored["x"].to_dict() == report["x"].to_dict()

    def test_flag_from_dict_defaults(self):
        flag = HealthFlag.from_dict({"condition": "c"})
        assert flag.severity == "warning"
        assert flag.count == 1

    def test_summary_line(self):
        report = HealthReport()
        assert report.summary() == "healthy"
        report.record("x", "msg")
        assert "x[warning]x1" in report.summary()


class TestHealthScope:
    def test_unscoped_recording_is_a_noop(self):
        assert active_health() is None
        assert record_condition("whatever", "nothing listens") is None

    def test_scope_collects(self):
        with health_scope() as report:
            record_condition("inner", "recorded")
        assert report.has("inner")

    def test_nested_scopes_fold_outward(self):
        with health_scope() as outer:
            with health_scope() as inner:
                record_condition("deep", "recorded innermost")
            assert inner.has("deep")
        assert outer.has("deep")

    def test_scope_restores_previous(self):
        with health_scope() as outer:
            with health_scope():
                pass
            assert active_health() is outer
        assert active_health() is None


class TestDegradationSources:
    def test_singular_covariance_records_fallback(self):
        # a rank-1 covariance: plain Cholesky fails, jitter rescues it
        singular = np.ones((3, 3))
        with health_scope() as report:
            factor = robust_cholesky(singular)
        assert factor.shape == (3, 3)
        assert report.has(SINGULAR_COVARIANCE_FALLBACK)
        assert report[SINGULAR_COVARIANCE_FALLBACK].context["jitter"] > 0

    def test_all_nan_column_is_flagged_not_fatal(self):
        X = np.random.default_rng(0).random((20, 3))
        X[:, 1] = np.nan
        with health_scope() as report:
            out = check_feature_matrix(X, allow_nan=True)
        assert out.shape == (20, 3)
        assert report.has(ALL_NAN_FEATURE_COLUMN)
        assert report[ALL_NAN_FEATURE_COLUMN].context["columns"] == [1]

    def test_infinite_column_is_fatal_with_diagnostics(self):
        X = np.random.default_rng(0).random((20, 3))
        X[3, 2] = np.inf
        with pytest.raises(FeatureMatrixError, match="infinite"):
            check_feature_matrix(X, allow_nan=True)
        # names the offending column, and stays a ValueError for old callers
        with pytest.raises(ValueError, match=r"column\(s\) 2"):
            check_feature_matrix(X, allow_nan=True)
        assert issubclass(FeatureMatrixError, ZeroERError)

    def test_em_non_convergence_is_flagged(self, separable_mixture):
        X, _y = separable_mixture
        # one iteration can never satisfy the likelihood-delta test
        model = ZeroER(ZeroERConfig(transitivity=False, max_iter=1))
        with health_scope() as report:
            model.fit(X)
        assert not model.converged_
        assert report.has(EM_NON_CONVERGENCE)


class TestHealthSurfacing:
    @pytest.fixture
    def disjoint_tables(self):
        left = Table(
            [
                {"id": "L0", "name": "alpha beta"},
                {"id": "L1", "name": "gamma delta"},
            ],
            attributes=["name"],
        )
        right = Table(
            [
                {"id": "R0", "name": "epsilon zeta"},
                {"id": "R1", "name": "eta theta"},
            ],
            attributes=["name"],
        )
        return left, right

    def test_empty_candidate_set_flagged_in_result_and_report(self, disjoint_tables):
        left, right = disjoint_tables
        result = ERPipeline(blocking_attribute="name").run(left, right)
        assert result.pairs == []
        assert result.health is not None
        assert result.health.has(EMPTY_CANDIDATE_SET)

        report = result.report()
        validate_report(report)
        assert report["health"]["degraded"] is True
        conditions = {flag["condition"] for flag in report["health"]["flags"]}
        assert EMPTY_CANDIDATE_SET in conditions

    def test_healthy_run_reports_null_health(self, people_table):
        result = ERPipeline(blocking_attribute="name").run(people_table)
        report = result.report()
        validate_report(report)
        # no degradations → "health" is present but null (legacy consumers
        # never see a missing key change shape underneath them)
        assert "health" in report
