"""Tests for the EM engine."""

import numpy as np
import pytest

from repro.core.config import ZeroERConfig
from repro.core.em import EMRunner


def make_runner(X, groups=None, **cfg):
    defaults = dict(transitivity=False)
    defaults.update(cfg)
    return EMRunner(np.asarray(X), groups, ZeroERConfig(**defaults))


class TestSteps:
    def test_e_before_m_raises(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X)
        with pytest.raises(RuntimeError, match="m_step"):
            runner.e_step()

    def test_m_step_estimates_prior_from_gamma(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X)
        params = runner.m_step()
        assert params.prior_match == pytest.approx(runner.gamma.mean(), abs=1e-12)

    def test_m_step_means_reflect_hard_assignment(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X)
        params = runner.m_step()
        matches = runner.gamma == 1.0
        assert np.allclose(params.match.mean, X[matches].mean(axis=0))
        assert np.allclose(params.unmatch.mean, X[~matches].mean(axis=0))

    def test_e_step_returns_finite_ll_and_valid_gamma(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X)
        runner.m_step()
        ll = runner.e_step()
        assert np.isfinite(ll)
        assert np.all((runner.gamma >= 0) & (runner.gamma <= 1))

    def test_covariance_structure_full(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X, covariance="full")
        assert len(runner.groups) == 1
        assert runner.groups[0] == list(range(X.shape[1]))

    def test_covariance_structure_independent_ignores_declared_groups(self, grouped_mixture):
        X, _, groups = grouped_mixture
        runner = make_runner(X, groups, covariance="independent")
        assert runner.groups == [[j] for j in range(X.shape[1])]

    def test_covariance_structure_grouped_uses_declared(self, grouped_mixture):
        X, _, groups = grouped_mixture
        runner = make_runner(X, groups, covariance="grouped")
        assert runner.groups == groups

    def test_adaptive_regularization_on_covariance_diagonal(self, separable_mixture):
        X, _ = separable_mixture
        plain = make_runner(X, regularization="none")
        reg = make_runner(X, regularization="adaptive", kappa=0.5)
        p1, p2 = plain.m_step(), reg.m_step()
        gap = (p2.match.mean - p2.unmatch.mean) ** 2
        expected = p1.match.variances() + 0.5 * gap
        assert np.allclose(p2.match.variances(), expected)

    def test_shared_correlation_computed_once(self, grouped_mixture):
        X, _, groups = grouped_mixture
        runner = make_runner(X, groups, shared_correlation=True)
        assert runner._shared_correlation is not None
        first = [b.copy() for b in runner._shared_correlation]
        runner.m_step()
        runner.e_step()
        runner.m_step()
        for a, b in zip(first, runner._shared_correlation):
            assert np.array_equal(a, b)


class TestRun:
    def test_converges_on_separable_data(self, separable_mixture):
        X, y = separable_mixture
        runner = make_runner(X)
        history = runner.run()
        assert history.converged
        pred = (runner.gamma > 0.5).astype(float)
        accuracy = np.mean(pred == y)
        assert accuracy > 0.95

    def test_likelihood_monotone_for_exact_em(self, separable_mixture):
        # without shared correlation the M-step is the exact maximizer, so
        # the observed-data likelihood must be non-decreasing
        X, _ = separable_mixture
        for covariance in ("full", "independent", "grouped"):
            runner = make_runner(
                X, covariance=covariance, regularization="none", shared_correlation=False
            )
            history = runner.run()
            lls = np.array(history.log_likelihoods)
            assert np.all(np.diff(lls) >= -1e-7), covariance

    def test_likelihood_monotone_with_adaptive_regularization(self, separable_mixture):
        # Σ = S + K is the exact maximizer of the penalized objective;
        # monotonicity of the observed likelihood still holds in practice on
        # well-separated data
        X, _ = separable_mixture
        runner = make_runner(X, regularization="adaptive", shared_correlation=False)
        history = runner.run()
        lls = np.array(history.log_likelihoods)
        assert np.all(np.diff(lls) >= -1e-6)

    def test_respects_max_iter(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X, max_iter=3, tol=1e-30)
        history = runner.run()
        assert history.n_iterations == 3
        assert not history.converged

    def test_tail_averaging_on_non_convergence(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X, max_iter=5, tol=1e-30, tail_window=5)
        runner.run()
        # averaged gamma is generally strictly inside (0, 1)
        assert np.all(runner.gamma >= 0) and np.all(runner.gamma <= 1)

    def test_history_timings_recorded(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X)
        history = runner.run()
        assert len(history.iteration_seconds) == history.n_iterations
        assert all(t >= 0 for t in history.iteration_seconds)

    def test_posterior_on_new_rows(self, separable_mixture):
        X, y = separable_mixture
        runner = make_runner(X[:400])
        runner.run()
        scores = runner.posterior(X[400:])
        pred = (scores > 0.5).astype(float)
        assert np.mean(pred == y[400:]) > 0.9

    def test_component_collapse_guard_keeps_previous_params(self, separable_mixture):
        X, _ = separable_mixture
        runner = make_runner(X)
        runner.m_step()
        before = runner.params.match
        runner.gamma = np.zeros(X.shape[0])  # M component collapses
        runner.m_step()
        assert runner.params.match is before  # frozen, not NaN


class TestSingularityBehavior:
    def test_degenerate_feature_without_regularization_misleads(self, rng):
        """The paper's singularity scenario (§3.3, Figure 3).

        One feature is constant 1.0 for all initial matches. Without
        regularization the M-variance on that feature collapses; with
        adaptive regularization the model must still use other features.
        """
        n = 400
        y = (rng.random(n) < 0.1).astype(float)
        informative = np.clip(rng.normal(0.2, 0.1, n) + 0.6 * y, 0, 1)
        degenerate = np.where(y == 1, 1.0, rng.uniform(0, 0.5, n))
        X = np.column_stack([degenerate, informative])

        reg = make_runner(X, regularization="adaptive", kappa=0.15)
        reg.run()
        reg_var = reg.params.match.variances()[0]
        plain = make_runner(X, regularization="none")
        plain.run()
        plain_var = plain.params.match.variances()[0]
        assert reg_var > plain_var  # regularization inflates the collapsed variance
        assert reg_var >= 0.15 * (reg.params.match.mean[0] - reg.params.unmatch.mean[0]) ** 2
