"""Tests for min-max normalization and NaN imputation."""

import numpy as np
import pytest

from repro.features.normalize import MinMaxNormalizer, impute_nan


class TestMinMaxNormalizer:
    def test_scales_to_unit_interval(self, rng):
        X = rng.normal(5.0, 3.0, size=(50, 4))
        out = MinMaxNormalizer().fit_transform(X)
        assert np.nanmin(out) == pytest.approx(0.0)
        assert np.nanmax(out) == pytest.approx(1.0)

    def test_constant_column_maps_to_zero(self):
        X = np.array([[3.0, 1.0], [3.0, 2.0]])
        out = MinMaxNormalizer().fit_transform(X)
        assert np.all(out[:, 0] == 0.0)

    def test_nan_cells_stay_nan(self):
        X = np.array([[0.0, np.nan], [1.0, 2.0], [2.0, 4.0]])
        out = MinMaxNormalizer().fit_transform(X)
        assert np.isnan(out[0, 1])
        assert out[2, 0] == 1.0

    def test_transform_held_out_uses_training_stats(self):
        train = np.array([[0.0], [10.0]])
        norm = MinMaxNormalizer().fit(train)
        assert norm.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.5)

    def test_out_of_range_clipped(self):
        norm = MinMaxNormalizer().fit(np.array([[0.0], [1.0]]))
        out = norm.transform(np.array([[2.0], [-1.0]]))
        assert out.ravel().tolist() == [1.0, 0.0]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            MinMaxNormalizer().transform(np.ones((2, 2)))

    def test_wrong_width_raises(self):
        norm = MinMaxNormalizer().fit(np.ones((3, 2)))
        with pytest.raises(ValueError, match="features"):
            norm.transform(np.ones((3, 5)))

    def test_all_nan_column_transforms_to_constant_zero(self):
        # an all-NaN column has zero span, so it maps to the constant 0
        X = np.array([[np.nan, 1.0], [np.nan, 2.0]])
        out = MinMaxNormalizer().fit_transform(X)
        assert np.all(out[:, 0] == 0.0)


class TestImputeNan:
    def test_fills_with_column_mean(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        out = impute_nan(X)
        assert out[2, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(6.0)

    def test_no_nan_is_identity(self, rng):
        X = rng.random((10, 3))
        assert np.array_equal(impute_nan(X), X)

    def test_all_nan_column_gets_half(self):
        X = np.array([[np.nan], [np.nan]])
        out = impute_nan(X)
        assert np.all(out == 0.5)

    def test_explicit_means(self):
        X = np.array([[np.nan, 1.0]])
        out = impute_nan(X, column_means=np.array([0.25, 0.0]))
        assert out[0, 0] == 0.25
        assert out[0, 1] == 1.0  # existing values untouched

    def test_does_not_mutate_input(self):
        X = np.array([[np.nan, 1.0]])
        impute_nan(X)
        assert np.isnan(X[0, 0])
