"""Tests for the incremental inverted token index."""

import pytest

from repro.blocking import AttributeEquivalenceBlocker, TokenOverlapBlocker
from repro.data.table import Table
from repro.incremental.index import IncrementalTokenIndex
from repro.text.tokenizers import (
    AlnumTokenizer,
    DelimiterTokenizer,
    QgramTokenizer,
    WhitespaceTokenizer,
    tokenizer_from_spec,
    tokenizer_spec,
)


@pytest.fixture
def restaurants():
    return Table(
        [
            {"id": "r1", "name": "harbor view grill", "city": "oakland"},
            {"id": "r2", "name": "harbor view grill and bar", "city": "oakland"},
            {"id": "r3", "name": "maple street bistro", "city": "berkeley"},
            {"id": "r4", "name": "maple street cafe", "city": "berkeley"},
            {"id": "r5", "name": "sunset diner", "city": "alameda"},
        ]
    )


class TestIncrementalTokenIndex:
    def test_matches_batch_blocker_candidates(self, restaurants):
        """Probing an index over a table equals batch blocking against it."""
        probes = Table(
            [
                {"id": "p1", "name": "harbor grill", "city": None},
                {"id": "p2", "name": "maple street", "city": None},
                {"id": "p3", "name": "nothing shared", "city": None},
            ]
        )
        blocker = TokenOverlapBlocker("name", min_overlap=1, top_k=3)
        batch_pairs = blocker.block(probes, restaurants)

        index = IncrementalTokenIndex.from_blocker(blocker)
        index.add(restaurants)
        incremental_pairs = [
            (probe["id"], rid)
            for probe in probes
            for rid, _count in index.candidates(probe)
        ]
        assert incremental_pairs == batch_pairs

    def test_add_then_probe_grows(self, restaurants):
        index = IncrementalTokenIndex("name", max_df=0.5)
        assert index.candidates({"id": "x", "name": "harbor grill"}) == []
        index.add(restaurants)
        assert len(index) == 5
        assert "r1" in index
        hits = index.candidates({"id": "x", "name": "harbor grill"})
        assert [rid for rid, _ in hits][:2] == ["r1", "r2"]

    def test_probe_excludes_itself_when_indexed(self, restaurants):
        index = IncrementalTokenIndex("name")
        index.add(restaurants)
        hits = index.candidates(restaurants.get("r1"))
        assert "r1" not in [rid for rid, _ in hits]

    def test_min_overlap_filters(self, restaurants):
        index = IncrementalTokenIndex("name", min_overlap=2, max_df=0.5)
        index.add(restaurants)
        hits = index.candidates({"id": "x", "name": "harbor grill"})
        # only r1/r2 share both tokens
        assert {rid for rid, _ in hits} == {"r1", "r2"}

    def test_top_k_override(self, restaurants):
        index = IncrementalTokenIndex("name", max_df=0.5, top_k=10)
        index.add(restaurants)
        probe = {"id": "x", "name": "harbor view maple street sunset"}
        assert len(index.candidates(probe)) > 1
        assert len(index.candidates(probe, top_k=1)) == 1

    def test_df_pruning_tracks_index_size(self):
        index = IncrementalTokenIndex("name", max_df=0.5)
        index.add([{"id": "a", "name": "common rare"}, {"id": "b", "name": "common other"}])
        # "common" is in 2/2 records > 50% → pruned at query time
        assert index.candidates({"id": "x", "name": "common"}) == []
        assert [rid for rid, _ in index.candidates({"id": "x", "name": "rare"})] == ["a"]

    def test_duplicate_add_raises(self, restaurants):
        index = IncrementalTokenIndex("name")
        index.add(restaurants)
        with pytest.raises(ValueError, match="already indexed"):
            index.add([{"id": "r1", "name": "harbor view grill"}])

    def test_from_blocker_requires_token_overlap(self):
        with pytest.raises(TypeError, match="TokenOverlapBlocker"):
            IncrementalTokenIndex.from_blocker(AttributeEquivalenceBlocker("city"))

    def test_params_round_trip(self, restaurants):
        index = IncrementalTokenIndex(
            "name", tokenizer=QgramTokenizer(3), min_overlap=2, max_df=0.3, top_k=7
        )
        rebuilt = IncrementalTokenIndex.from_params(index.params())
        rebuilt.add(restaurants)
        index.add(restaurants)
        probe = {"id": "x", "name": "harbor grill"}
        assert rebuilt.candidates(probe) == index.candidates(probe)

    def test_validation(self):
        with pytest.raises(ValueError, match="min_overlap"):
            IncrementalTokenIndex("name", min_overlap=0)
        with pytest.raises(ValueError, match="max_df"):
            IncrementalTokenIndex("name", max_df=0.0)
        with pytest.raises(ValueError, match="top_k"):
            IncrementalTokenIndex("name", top_k=0)


class TestTokenizerSpec:
    @pytest.mark.parametrize(
        "tokenizer",
        [
            WhitespaceTokenizer(),
            WhitespaceTokenizer(lowercase=False),
            QgramTokenizer(2, padded=False),
            AlnumTokenizer(),
            DelimiterTokenizer(";", strip=False),
        ],
    )
    def test_round_trip(self, tokenizer):
        rebuilt = tokenizer_from_spec(tokenizer_spec(tokenizer))
        assert type(rebuilt) is type(tokenizer)
        text = "Harbor-View Grill; Est. 1999"
        assert rebuilt(text) == tokenizer(text)

    def test_custom_tokenizer_rejected(self):
        class Custom(WhitespaceTokenizer):
            pass

        with pytest.raises(TypeError, match="Custom"):
            tokenizer_spec(Custom())

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown tokenizer"):
            tokenizer_from_spec({"type": "bogus"})
