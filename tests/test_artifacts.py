"""Artifact round-trip tests: save/load must preserve scoring bit-for-bit."""

import json

import numpy as np
import pytest

from repro import ZeroER, ZeroERConfig, load_benchmark
from repro.blocking import TokenOverlapBlocker
from repro.features import FeatureGenerator
from repro.features.types import AttributeType
from repro.incremental import ArtifactError, load_artifacts, save_artifacts
from repro.incremental.artifacts import artifact_dir
from repro.reliability import write_checksum_manifest
from repro import ERPipeline


@pytest.fixture(scope="module")
def dataset():
    return load_benchmark("rest_fz", scale="tiny", seed=7)


@pytest.fixture(scope="module")
def linkage_fit(dataset):
    pipeline = ERPipeline(blocking_attribute="name")
    result = pipeline.run(dataset.left, dataset.right)
    return pipeline, result


class TestArtifactRoundTrip:
    def test_linkage_predict_proba_bit_identical(self, dataset, linkage_fit, tmp_path):
        """The transitivity (linkage) model round-trips exactly."""
        pipeline, result = linkage_fit
        save_artifacts(tmp_path / "art", pipeline.generator_, pipeline.model_)
        generator, model, manifest = load_artifacts(tmp_path / "art")

        assert manifest["model"]["kind"] == "linkage"
        X_orig = pipeline.generator_.transform(dataset.left, dataset.right, result.pairs)
        X_new = generator.transform(dataset.left, dataset.right, result.pairs)
        np.testing.assert_array_equal(X_orig, X_new)
        np.testing.assert_array_equal(
            pipeline.model_.predict_proba(X_orig), model.predict_proba(X_new)
        )

    def test_zeroer_with_type_overrides_bit_identical(self, dataset, tmp_path):
        """Dedup model + pinned attribute types survive the round trip."""
        merged, _ = dataset.as_dedup()
        pairs = TokenOverlapBlocker("name", top_k=40).block(merged)
        overrides = {"phone": AttributeType.SHORT_STRING}
        generator = FeatureGenerator(type_overrides=overrides).fit(merged)
        X = generator.transform(merged, None, pairs)
        model = ZeroER(ZeroERConfig(transitivity=True))
        model.fit(X, generator.feature_groups_, pairs)

        save_artifacts(tmp_path / "art", generator, model)
        generator2, model2, manifest = load_artifacts(tmp_path / "art")

        assert manifest["model"]["kind"] == "zeroer"
        assert generator2.type_overrides == overrides
        assert generator2.attribute_types_ == generator.attribute_types_
        assert generator2.feature_names_ == generator.feature_names_
        assert generator2.feature_groups_ == generator.feature_groups_
        X2 = generator2.transform(merged, None, pairs)
        np.testing.assert_array_equal(X, X2)
        np.testing.assert_array_equal(model.predict_proba(X), model2.predict_proba(X2))

    def test_loaded_config_matches(self, linkage_fit, tmp_path):
        pipeline, _ = linkage_fit
        save_artifacts(tmp_path / "art", pipeline.generator_, pipeline.model_)
        _, model, _ = load_artifacts(tmp_path / "art")
        assert model.config == pipeline.model_.config

    def test_unfitted_model_refuses_to_save(self):
        with pytest.raises(RuntimeError):
            ZeroER().get_fitted_state()

    def test_unfitted_generator_refuses_to_save(self):
        with pytest.raises(RuntimeError):
            FeatureGenerator().get_state()


class TestArtifactValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactError, match="not an artifact directory"):
            load_artifacts(tmp_path / "nope")

    def test_schema_version_mismatch(self, linkage_fit, tmp_path):
        pipeline, _ = linkage_fit
        path = save_artifacts(tmp_path / "art", pipeline.generator_, pipeline.model_)
        version_dir = artifact_dir(path)
        manifest = json.loads((version_dir / "manifest.json").read_text())
        manifest["schema_version"] = 999
        (version_dir / "manifest.json").write_text(json.dumps(manifest))
        # re-sign so the (valid) bytes pass integrity and hit the schema check
        write_checksum_manifest(version_dir)
        with pytest.raises(ArtifactError, match="schema version"):
            load_artifacts(path)
        # a schema mismatch is not corruption: the directory stays put
        assert version_dir.is_dir()

    def test_missing_arrays_file(self, linkage_fit, tmp_path):
        pipeline, _ = linkage_fit
        path = save_artifacts(tmp_path / "art", pipeline.generator_, pipeline.model_)
        version_dir = artifact_dir(path)
        (version_dir / "arrays.npz").unlink()
        write_checksum_manifest(version_dir)
        with pytest.raises(ArtifactError, match="arrays.npz"):
            load_artifacts(path)

    def test_unknown_model_kind(self, linkage_fit, tmp_path):
        pipeline, _ = linkage_fit
        path = save_artifacts(tmp_path / "art", pipeline.generator_, pipeline.model_)
        version_dir = artifact_dir(path)
        manifest = json.loads((version_dir / "manifest.json").read_text())
        manifest["model"]["kind"] = "mystery"
        (version_dir / "manifest.json").write_text(json.dumps(manifest))
        write_checksum_manifest(version_dir)
        with pytest.raises(ArtifactError, match="unknown model kind"):
            load_artifacts(path)
