"""Tests for the magnitude-based initialization (§6)."""

import numpy as np
import pytest

from repro.core.exceptions import InitializationError
from repro.core.initialization import magnitude_initialization


def test_hard_assignments_only():
    X = np.array([[0.9, 0.9], [0.1, 0.1], [0.8, 0.85]])
    gamma = magnitude_initialization(X, 0.5)
    assert set(gamma.tolist()) <= {0.0, 1.0}


def test_high_magnitude_rows_are_matches():
    X = np.vstack([np.full((5, 3), 0.9), np.full((5, 3), 0.05), [[0.5, 0.5, 0.5]]])
    gamma = magnitude_initialization(X, 0.5)
    assert np.all(gamma[:5] == 1.0)
    assert np.all(gamma[5:10] == 0.0)


def test_threshold_zero_fails():
    # §7.4: EM fails to run at the threshold extremes
    X = np.random.default_rng(0).random((10, 2))
    with pytest.raises(InitializationError, match="component"):
        magnitude_initialization(X, 0.0)


def test_threshold_one_fails():
    X = np.random.default_rng(0).random((10, 2))
    with pytest.raises(InitializationError):
        magnitude_initialization(X, 1.0)


def test_constant_magnitude_fails():
    X = np.ones((5, 2))
    with pytest.raises(InitializationError):
        magnitude_initialization(X, 0.5)


def test_threshold_monotonicity(rng):
    X = rng.random((100, 4))
    low = magnitude_initialization(X, 0.3).sum()
    high = magnitude_initialization(X, 0.7).sum()
    assert low >= high  # higher threshold -> fewer initial matches


def test_scale_invariance(rng):
    # min–max normalization of the magnitudes makes the split scale-free
    X = rng.random((50, 3)) + 0.2
    a = magnitude_initialization(X, 0.5)
    b = magnitude_initialization(X * 7.0, 0.5)
    assert np.array_equal(a, b)
