"""Property-based tests (hypothesis) on core EM invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import ZeroERConfig
from repro.core.covariance import weighted_covariance, weighted_mean
from repro.core.em import EMRunner
from repro.core.exceptions import ZeroERError
from repro.core.regularization import penalty_diagonal


def em_matrices(min_rows=30, max_rows=80, d=3):
    """Random feature matrices in [0, 1] with some spread."""
    return arrays(
        np.float64,
        st.tuples(st.integers(min_rows, max_rows), st.just(d)),
        elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
    ).filter(lambda X: np.ptp(np.linalg.norm(X, axis=1)) > 0.3)


@settings(max_examples=25, deadline=None)
@given(em_matrices())
def test_e_step_posteriors_valid_on_arbitrary_data(X):
    cfg = ZeroERConfig(transitivity=False, max_iter=5)
    try:
        runner = EMRunner(X, None, cfg)
    except ZeroERError:
        return  # degenerate init is allowed to fail loudly
    runner.m_step()
    ll = runner.e_step()
    assert np.isfinite(ll)
    assert np.all(runner.gamma >= 0.0) and np.all(runner.gamma <= 1.0)


@settings(max_examples=15, deadline=None)
@given(em_matrices())
def test_run_always_terminates_with_valid_state(X):
    cfg = ZeroERConfig(transitivity=False, max_iter=15)
    try:
        runner = EMRunner(X, None, cfg)
    except ZeroERError:
        return
    history = runner.run()
    assert history.n_iterations <= 15
    assert np.all(np.isfinite(runner.gamma))
    assert 0.0 < runner.params.prior_match < 1.0


@settings(max_examples=25, deadline=None)
@given(em_matrices(), st.floats(0.01, 1.0))
def test_regularized_variances_dominate_unregularized(X, kappa):
    base = ZeroERConfig(transitivity=False, regularization="none")
    reg = ZeroERConfig(transitivity=False, regularization="adaptive", kappa=kappa)
    try:
        r1 = EMRunner(X, None, base)
        r2 = EMRunner(X, None, reg)
    except ZeroERError:
        return
    p1, p2 = r1.m_step(), r2.m_step()
    assert np.all(p2.match.variances() >= p1.match.variances() - 1e-12)
    assert np.all(p2.unmatch.variances() >= p1.unmatch.variances() - 1e-12)


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(5, 40), st.just(4)),
        elements=st.floats(-5, 5, allow_nan=False, width=32),
    ),
    st.integers(0, 2**31 - 1),
)
def test_weighted_covariance_psd_for_any_weights(X, seed):
    w = np.random.default_rng(seed).random(X.shape[0]) + 1e-6
    mean = weighted_mean(X, w)
    S = weighted_covariance(X, w, mean)
    eigenvalues = np.linalg.eigvalsh(S)
    assert np.all(eigenvalues >= -1e-8)
    assert np.allclose(S, S.T)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, st.just(6), elements=st.floats(0, 1, allow_nan=False, width=32)),
    arrays(np.float64, st.just(6), elements=st.floats(0, 1, allow_nan=False, width=32)),
    st.floats(0.0, 2.0),
)
def test_penalty_diagonal_nonnegative_and_scales_with_kappa(mu_m, mu_u, kappa):
    cfg = ZeroERConfig(transitivity=False, regularization="adaptive", kappa=kappa)
    K = penalty_diagonal(cfg, mu_m, mu_u)
    assert np.all(K >= 0.0)
    if kappa > 0:
        double = penalty_diagonal(cfg.replace(kappa=2 * kappa), mu_m, mu_u)
        assert np.allclose(double, 2 * K)


@settings(max_examples=20, deadline=None)
@given(em_matrices(), st.integers(0, 1000))
def test_transitivity_calibration_preserves_probability_range(X, seed):
    from repro.core.transitivity import DedupTransitivityCalibrator

    rng = np.random.default_rng(seed)
    n = X.shape[0]
    nodes = [f"n{i}" for i in range(max(4, n // 4))]
    pairs = [
        (nodes[rng.integers(len(nodes))], nodes[rng.integers(len(nodes))]) for _ in range(n)
    ]
    pairs = [(a, b) for a, b in pairs if a != b]
    gamma = rng.random(len(pairs))
    DedupTransitivityCalibrator(pairs).calibrate(gamma)
    assert np.all(gamma >= 0.0) and np.all(gamma <= 1.0)
