"""End-to-end integration tests: generate → block → featurize → match.

These run at the tiny scale so the whole file stays under a few seconds.
"""

import numpy as np

from repro import FeatureGenerator, ZeroER, load_benchmark
from repro.blocking import TokenOverlapBlocker, candidate_recall
from repro.eval import f_score, transitive_closure
from repro.eval.harness import prepare_dataset, run_zeroer


class TestFullPipeline:
    def test_restaurants_end_to_end(self):
        ds = load_benchmark("rest_fz", scale="tiny")
        pairs = TokenOverlapBlocker("name").block(ds.left, ds.right)
        assert candidate_recall(pairs, ds.matches) > 0.8
        gen = FeatureGenerator().fit(ds.left, ds.right, ds.attributes)
        X = gen.transform(ds.left, ds.right, pairs)
        model = ZeroER(transitivity=False)
        labels = model.fit_predict(X, gen.feature_groups_, pairs)
        assert f_score(ds.labels_for(pairs), labels) > 0.8

    def test_dedup_view_end_to_end(self):
        ds = load_benchmark("rest_fz", scale="tiny")
        merged, matches = ds.as_dedup()
        pairs = TokenOverlapBlocker("name").block(merged)
        gen = FeatureGenerator().fit(merged)
        X = gen.transform(merged, None, pairs)
        labels = ZeroER().fit_predict(X, gen.feature_groups_, pairs)
        y = np.array(
            [1.0 if ((a, b) in matches or (b, a) in matches) else 0.0 for a, b in pairs]
        )
        assert f_score(y, labels) > 0.7

    def test_linkage_three_models_on_pub_ds(self):
        prep = prepare_dataset("pub_ds", scale="tiny", seed=0)
        res = run_zeroer(prep)
        assert res["f1"] > 0.5

    def test_match_scores_rank_gold_pairs_highly(self):
        prep = prepare_dataset("pub_da", scale="tiny", seed=0)
        res = run_zeroer(prep)
        scores, y = res["scores"], prep.y
        mean_match = scores[y == 1].mean()
        mean_unmatch = scores[y == 0].mean()
        assert mean_match > mean_unmatch + 0.5

    def test_predicted_matches_cluster_into_entities(self):
        prep = prepare_dataset("rest_fz", scale="tiny", seed=0)
        res = run_zeroer(prep)
        predicted_pairs = [p for p, l in zip(prep.pairs, res["labels"]) if l == 1]
        closure = transitive_closure(predicted_pairs)
        assert len(closure) >= len(predicted_pairs)

    def test_unsupervised_beats_random_on_hard_products(self):
        prep = prepare_dataset("prod_ag", scale="tiny", seed=0)
        res = run_zeroer(prep)
        # random guessing at the match rate would give F1 ≈ match fraction
        assert res["f1"] > 5 * prep.y.mean()


class TestCrossModelConsistency:
    def test_zeroer_outperforms_naive_gmm_on_benchmark(self):
        from repro.baselines import GaussianMixtureMatcher

        prep = prepare_dataset("pub_da", scale="tiny", seed=0)
        zeroer = run_zeroer(prep)["f1"]
        gmm_pred = GaussianMixtureMatcher(random_state=0).fit_predict(prep.X)
        gmm = f_score(prep.y, gmm_pred)
        assert zeroer >= gmm

    def test_supervised_with_labels_comparable_to_zeroer(self):
        from repro.baselines import RandomForestClassifier, oversample_minority, train_test_split

        prep = prepare_dataset("pub_da", scale="tiny", seed=0)
        tr, te = train_test_split(len(prep.y), 0.5, random_state=0)
        Xtr, ytr = oversample_minority(prep.X[tr], prep.y[tr], random_state=0)
        rf = RandomForestClassifier(n_estimators=15, min_samples_leaf=2, random_state=0)
        rf.fit(np.nan_to_num(Xtr, nan=0.5), ytr)
        rf_f1 = f_score(prep.y[te], rf.predict(np.nan_to_num(prep.X[te], nan=0.5)))
        zeroer_f1 = run_zeroer(prep)["f1"]
        assert abs(zeroer_f1 - rf_f1) < 0.35  # same ballpark, zero labels

    def test_per_dataset_difficulty_ordering(self):
        easy = run_zeroer(prepare_dataset("rest_fz", scale="tiny", seed=0))["f1"]
        hard = run_zeroer(prepare_dataset("prod_ag", scale="tiny", seed=0))["f1"]
        assert easy > hard
