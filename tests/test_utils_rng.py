"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng


def test_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_int_seed_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))


def test_generator_passthrough():
    gen = np.random.default_rng(7)
    assert ensure_rng(gen) is gen


def test_numpy_integer_accepted():
    assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)


def test_rejects_strings():
    with pytest.raises(TypeError, match="random_state"):
        ensure_rng("seed")
