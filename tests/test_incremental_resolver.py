"""End-to-end incremental resolution tests.

The fixture is a deduplication problem built to be unambiguous: 18 entities,
each with up to three near-identical variants; entities share a suffix token
("grill", "bistro", ...) with two other entities, so blocking produces both
clearly-matching intra-entity pairs and clearly-non-matching cross-entity
pairs — a geometry both the batch fit and the frozen model resolve the same
way. That makes the acceptance check exact: streaming the held-out variants
through a frozen resolver must land on the *same clusters* as a from-scratch
batch run over the union of all records.
"""

import numpy as np
import pytest

from repro.data.table import Table
from repro.eval.clustering import connected_components
from repro.incremental import IncrementalResolver
from repro import ERPipeline

_SUFFIXES = ("grill", "bistro", "cafe", "diner", "tavern", "kitchen")
_WORDS = (
    "harbor", "maple", "sunset", "copper", "willow", "granite",
    "juniper", "crimson", "meadow", "ivory", "cobalt", "timber",
    "velvet", "orchid", "saffron", "lagoon", "ember", "prairie",
)
_CITIES = ("oakland", "berkeley", "alameda")


def _record(entity: int, variant: str) -> dict:
    suffix = _SUFFIXES[entity % len(_SUFFIXES)]
    name = f"{_WORDS[entity]} {_WORDS[(entity + 7) % len(_WORDS)]} {suffix}"
    if variant == "c":  # the streamed variant drops one distinguishing token
        name = f"{_WORDS[entity]} {suffix}"
    return {
        "id": f"{variant}{entity}",
        "name": name,
        "city": _CITIES[entity % len(_CITIES)],
        "phone": f"555-01{entity:02d}",
    }


def _table(records) -> Table:
    return Table(records, attributes=["name", "city", "phone"])


@pytest.fixture(scope="module")
def fixture_tables():
    initial = [_record(e, v) for e in range(18) for v in ("a", "b")]
    batch1 = [_record(e, "c") for e in range(9)]
    batch2 = [_record(e, "c") for e in range(9, 18)]
    return _table(initial), batch1, batch2


def _batch_clusters(table: Table) -> set[frozenset]:
    """Clusters (incl. singletons) of a from-scratch batch dedup run."""
    result = ERPipeline(blocking_attribute="name").run(table)
    components = connected_components(result.matches)
    clustered = {rid for comp in components for rid in comp}
    clusters = {frozenset(comp) for comp in components}
    clusters |= {frozenset([rid]) for rid in table.ids() if rid not in clustered}
    return clusters


@pytest.fixture(scope="module")
def frozen_resolver(fixture_tables, tmp_path_factory):
    """Fit on the initial table, save, and reload in a fresh resolver."""
    initial, _, _ = fixture_tables
    pipeline = ERPipeline(blocking_attribute="name")
    pipeline.run(initial)
    path = tmp_path_factory.mktemp("artifacts") / "resolver"
    pipeline.freeze().save(path)
    return IncrementalResolver.load(path)


class TestIncrementalEndToEnd:
    def test_streaming_equals_batch_on_union(self, fixture_tables, frozen_resolver):
        """The acceptance scenario: fit → save → load → 2 batches → same clusters."""
        initial, batch1, batch2 = fixture_tables
        resolver = frozen_resolver

        out1 = resolver.resolve(batch1)
        out2 = resolver.resolve(batch2)
        assert out1.record_ids == [r["id"] for r in batch1]
        assert len(out1.matches) > 0 and len(out2.matches) > 0

        union = _table(list(initial) + batch1 + batch2)
        assert set(resolver.store.clusters()) == _batch_clusters(union)

    def test_resolve_never_refits_em(self, fixture_tables, frozen_resolver, monkeypatch):
        """The frozen path must not touch any EM training entry point."""
        import repro.core.em as em

        def _forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("incremental resolve must not re-fit EM")

        monkeypatch.setattr(em.EMRunner, "run", _forbidden)
        monkeypatch.setattr(em.EMRunner, "m_step", _forbidden)
        monkeypatch.setattr(em.EMRunner, "e_step", _forbidden)
        monkeypatch.setattr(em, "magnitude_initialization", _forbidden)

        extra = [
            {"id": "x0", "name": "harbor lagoon grill", "city": "oakland", "phone": "555-0100"}
        ]
        result = frozen_resolver.resolve(extra)
        assert result.assignments["x0"]

    def test_assignments_track_merges(self, fixture_tables, frozen_resolver):
        """A streamed duplicate lands in its entity's existing cluster."""
        resolver = frozen_resolver
        dup = dict(resolver.store.get("a0"), id="dup0")
        result = resolver.resolve([dup])
        assert result.assignments["dup0"] == resolver.store.entity_of("a0")

    def test_novel_record_becomes_singleton(self, frozen_resolver):
        record = {"id": "solo", "name": "zzyzx quasar", "city": None, "phone": None}
        result = frozen_resolver.resolve([record])
        assert result.pairs == []
        assert result.scores.shape == (0,)
        assert frozen_resolver.store.members(result.assignments["solo"]) == ["solo"]

    def test_intra_batch_records_can_match(self, fixture_tables):
        """Two copies arriving in the same batch merge with each other."""
        initial, _, _ = fixture_tables
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(initial)
        resolver = pipeline.freeze()
        twins = [
            {"id": "t1", "name": "quartz falcon lounge", "city": "oakland", "phone": "555-0999"},
            {"id": "t2", "name": "quartz falcon lounge", "city": "oakland", "phone": "555-0999"},
        ]
        result = resolver.resolve(twins)
        assert ("t1", "t2") in result.pairs
        assert result.assignments["t1"] == result.assignments["t2"]

    def test_duplicate_record_id_rejected(self, frozen_resolver):
        with pytest.raises(ValueError, match="already"):
            frozen_resolver.resolve([{"id": "a0", "name": "whatever"}])

    def test_bad_batch_leaves_store_untouched(self, frozen_resolver):
        """Validation happens before ingestion: a bad batch is fully rejected."""
        before = len(frozen_resolver.store)
        bad = [
            {"id": "fresh1", "name": "brand new place"},
            {"id": "a0", "name": "duplicate of an existing id"},
        ]
        with pytest.raises(ValueError, match="already"):
            frozen_resolver.resolve(bad)
        assert len(frozen_resolver.store) == before
        assert "fresh1" not in frozen_resolver.store
        with pytest.raises(ValueError, match="twice in the batch"):
            frozen_resolver.resolve(
                [{"id": "twin", "name": "x"}, {"id": "twin", "name": "x"}]
            )
        assert len(frozen_resolver.store) == before


class TestResolverConstruction:
    def test_threshold_validated(self, fixture_tables):
        initial, _, _ = fixture_tables
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(initial)
        with pytest.raises(ValueError, match="threshold"):
            pipeline.freeze(threshold=1.5)

    def test_index_store_size_mismatch(self, fixture_tables):
        from repro.incremental import IncrementalTokenIndex

        initial, _, _ = fixture_tables
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(initial)
        resolver = pipeline.freeze()
        with pytest.raises(ValueError, match="index covers"):
            IncrementalResolver(
                resolver.generator,
                resolver.model,
                IncrementalTokenIndex("name"),
                resolver.store,
            )

    def test_freeze_requires_completed_run(self):
        with pytest.raises(RuntimeError, match="run\\(\\) must complete"):
            ERPipeline(blocking_attribute="name").freeze()

    def test_freeze_rejects_overlapping_table_ids(self, fixture_tables):
        """Linkage freeze needs disjoint ids for the shared entity store."""
        initial, _, _ = fixture_tables
        clone = Table(list(initial), attributes=initial.attributes)
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(initial, clone)
        with pytest.raises(ValueError, match="both tables"):
            pipeline.freeze()

    def test_freeze_after_empty_run_raises_clearly(self, fixture_tables):
        """An empty-candidate run (even after a fitted one) cannot freeze."""
        initial, _, _ = fixture_tables
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(initial)           # fits a model
        no_overlap = _table(
            [{"id": f"n{i}", "name": f"tok{i}", "city": None, "phone": None} for i in range(4)]
        )
        pipeline.run(no_overlap)        # no shared tokens → no pairs, fit cleared
        with pytest.raises(RuntimeError, match="no candidate pairs"):
            pipeline.freeze()

    def test_scores_are_frozen_model_posteriors(self, fixture_tables, frozen_resolver):
        """Resolve scores equal predict_proba on the same featurized pairs."""
        resolver = frozen_resolver
        probe = dict(resolver.store.get("a1"), id="probe1")
        result = resolver.resolve([probe])
        assert len(result.pairs) > 0
        X = resolver.generator.transform(resolver.store, None, result.pairs)
        np.testing.assert_array_equal(result.scores, resolver.model.predict_proba(X))
