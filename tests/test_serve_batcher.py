"""MicroBatcher unit tests: coalescing, caps, failure isolation, serialization.

These run the batcher against a fake ``execute`` so the behaviors the
serving layer depends on are pinned down without sockets or a model:
concurrent submissions coalesce into few batches, ``max_batch`` bounds the
records per engine pass, a per-request failure reaches only its own
submitter, and :meth:`MicroBatcher.run_serialized` never overlaps a batch
(the single-writer guarantee hot-reload rides on).
"""

import asyncio
import threading
import time
from dataclasses import dataclass

import pytest

from repro.serve.batcher import MicroBatcher


@dataclass(frozen=True)
class Req:
    """Minimal request: the batcher only needs ``.records``."""

    records: tuple = ("x",)


def _run(coro_fn):
    return asyncio.run(coro_fn())


class TestCoalescing:
    def test_concurrent_submissions_coalesce(self):
        batch_sizes = []

        def execute(requests):
            batch_sizes.append(len(requests))
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=100.0)
            await batcher.start()
            try:
                return await asyncio.gather(*(batcher.submit(Req()) for _ in range(8)))
            finally:
                await batcher.stop()

        results = _run(main)
        assert results == ["ok"] * 8
        assert sum(batch_sizes) == 8
        # all 8 were queued before the first batch's wait expired
        assert len(batch_sizes) < 8

    def test_max_batch_bounds_each_engine_pass(self):
        batch_records = []

        def execute(requests):
            batch_records.append(sum(len(r.records) for r in requests))
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=3, max_wait_ms=100.0)
            await batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(Req()) for _ in range(8)))
            finally:
                await batcher.stop()

        _run(main)
        assert sum(batch_records) == 8
        assert all(n <= 3 for n in batch_records)

    def test_oversized_request_still_runs_alone(self):
        seen = []

        def execute(requests):
            seen.append([len(r.records) for r in requests])
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=2, max_wait_ms=0.0)
            await batcher.start()
            try:
                return await batcher.submit(Req(records=("a", "b", "c", "d", "e")))
            finally:
                await batcher.stop()

        assert _run(main) == "ok"
        assert seen == [[5]]

    def test_zero_wait_executes_immediately(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=0.0)
            await batcher.start()
            try:
                return await batcher.submit(Req())
            finally:
                await batcher.stop()

        assert _run(main) == "ok"

    def test_counters_track_batches_and_requests(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=50.0)
            await batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(Req()) for _ in range(5)))
            finally:
                await batcher.stop()
            return batcher

        batcher = _run(main)
        assert batcher.n_requests == 5
        assert 1 <= batcher.n_batches <= 5

    def test_on_batch_observer_sees_every_batch(self):
        observed = []

        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(
                execute,
                max_batch=64,
                max_wait_ms=50.0,
                on_batch=lambda n_req, n_rec: observed.append((n_req, n_rec)),
            )
            await batcher.start()
            try:
                await asyncio.gather(
                    *(batcher.submit(Req(records=("a", "b"))) for _ in range(4))
                )
            finally:
                await batcher.stop()

        _run(main)
        assert sum(n_req for n_req, _ in observed) == 4
        assert sum(n_rec for _, n_rec in observed) == 8


class TestFailureIsolation:
    def test_per_request_exception_reaches_only_its_submitter(self):
        def execute(requests):
            return [
                ValueError("bad one") if i == 1 else "ok"
                for i in range(len(requests))
            ]

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=100.0)
            await batcher.start()
            try:
                return await asyncio.gather(
                    *(batcher.submit(Req()) for _ in range(3)),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()

        results = _run(main)
        assert sum(isinstance(r, ValueError) for r in results) == 1
        assert sum(r == "ok" for r in results if isinstance(r, str)) == 2

    def test_execute_raising_fails_the_whole_batch_not_the_server(self):
        def execute(requests):
            raise RuntimeError("engine exploded")

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=50.0)
            await batcher.start()
            try:
                failed = await asyncio.gather(
                    *(batcher.submit(Req()) for _ in range(3)),
                    return_exceptions=True,
                )
                return failed
            finally:
                await batcher.stop()

        results = _run(main)
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_recovers_after_a_failed_batch(self):
        calls = []

        def execute(requests):
            calls.append(len(requests))
            if len(calls) == 1:
                raise RuntimeError("first batch dies")
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=0.0)
            await batcher.start()
            try:
                first = await asyncio.gather(
                    batcher.submit(Req()), return_exceptions=True
                )
                second = await batcher.submit(Req())
                return first, second
            finally:
                await batcher.stop()

        (first,), second = _run(main)
        assert isinstance(first, RuntimeError)
        assert second == "ok"


class TestSingleWriterSerialization:
    def test_run_serialized_never_overlaps_a_batch(self):
        """Batches and serialized fns share one thread: no concurrent entry."""
        active = []
        lock = threading.Lock()
        overlaps = []

        def _enter(tag):
            with lock:
                if active:
                    overlaps.append((tag, list(active)))
                active.append(tag)
            time.sleep(0.005)
            with lock:
                active.remove(tag)

        def execute(requests):
            _enter("batch")
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            try:
                jobs = []
                for i in range(6):
                    jobs.append(batcher.submit(Req()))
                    jobs.append(batcher.run_serialized(lambda: _enter("reload")))
                await asyncio.gather(*jobs)
            finally:
                await batcher.stop()

        _run(main)
        assert overlaps == []

    def test_run_serialized_returns_the_functions_value(self):
        async def main():
            batcher = MicroBatcher(lambda reqs: ["ok"] * len(reqs))
            await batcher.start()
            try:
                return await batcher.run_serialized(lambda: {"swapped": True})
            finally:
                await batcher.stop()

        assert _run(main) == {"swapped": True}


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def main():
            batcher = MicroBatcher(lambda reqs: [])
            with pytest.raises(RuntimeError, match="not started"):
                await batcher.submit(Req())

        _run(main)

    def test_stop_drains_queued_requests(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            pending = [
                asyncio.get_running_loop().create_task(batcher.submit(Req()))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await batcher.stop()
            return await asyncio.gather(*pending, return_exceptions=True)

        results = _run(main)
        assert results == ["ok"] * 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda reqs: [], max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(lambda reqs: [], max_wait_ms=-1.0)
