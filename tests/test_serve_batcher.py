"""MicroBatcher unit tests: coalescing, caps, failure isolation, serialization.

These run the batcher against a fake ``execute`` so the behaviors the
serving layer depends on are pinned down without sockets or a model:
concurrent submissions coalesce into few batches, ``max_batch`` bounds the
records per engine pass, a per-request failure reaches only its own
submitter, and :meth:`MicroBatcher.run_serialized` never overlaps a batch
(the single-writer guarantee hot-reload rides on). The overload classes
pin the admission/deadline/drain contract: sheds are immediate and typed,
expiry never reaches the engine, cancellation and stop() races leak no
inflight weight and strand no submitter.
"""

import asyncio
import threading
import time
from dataclasses import dataclass

import pytest

from repro.serve.batcher import (
    BatcherClosed,
    DeadlineExpired,
    MicroBatcher,
    Overloaded,
)


@dataclass(frozen=True)
class Req:
    """Minimal request: the batcher only needs ``.records``."""

    records: tuple = ("x",)


def _run(coro_fn):
    return asyncio.run(coro_fn())


class TestCoalescing:
    def test_concurrent_submissions_coalesce(self):
        batch_sizes = []

        def execute(requests):
            batch_sizes.append(len(requests))
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=100.0)
            await batcher.start()
            try:
                return await asyncio.gather(*(batcher.submit(Req()) for _ in range(8)))
            finally:
                await batcher.stop()

        results = _run(main)
        assert results == ["ok"] * 8
        assert sum(batch_sizes) == 8
        # all 8 were queued before the first batch's wait expired
        assert len(batch_sizes) < 8

    def test_max_batch_bounds_each_engine_pass(self):
        batch_records = []

        def execute(requests):
            batch_records.append(sum(len(r.records) for r in requests))
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=3, max_wait_ms=100.0)
            await batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(Req()) for _ in range(8)))
            finally:
                await batcher.stop()

        _run(main)
        assert sum(batch_records) == 8
        assert all(n <= 3 for n in batch_records)

    def test_oversized_request_still_runs_alone(self):
        seen = []

        def execute(requests):
            seen.append([len(r.records) for r in requests])
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=2, max_wait_ms=0.0)
            await batcher.start()
            try:
                return await batcher.submit(Req(records=("a", "b", "c", "d", "e")))
            finally:
                await batcher.stop()

        assert _run(main) == "ok"
        assert seen == [[5]]

    def test_zero_wait_executes_immediately(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=0.0)
            await batcher.start()
            try:
                return await batcher.submit(Req())
            finally:
                await batcher.stop()

        assert _run(main) == "ok"

    def test_counters_track_batches_and_requests(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=50.0)
            await batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(Req()) for _ in range(5)))
            finally:
                await batcher.stop()
            return batcher

        batcher = _run(main)
        assert batcher.n_requests == 5
        assert 1 <= batcher.n_batches <= 5

    def test_on_batch_observer_sees_every_batch(self):
        observed = []

        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(
                execute,
                max_batch=64,
                max_wait_ms=50.0,
                on_batch=lambda n_req, n_rec: observed.append((n_req, n_rec)),
            )
            await batcher.start()
            try:
                await asyncio.gather(
                    *(batcher.submit(Req(records=("a", "b"))) for _ in range(4))
                )
            finally:
                await batcher.stop()

        _run(main)
        assert sum(n_req for n_req, _ in observed) == 4
        assert sum(n_rec for _, n_rec in observed) == 8


class TestFailureIsolation:
    def test_per_request_exception_reaches_only_its_submitter(self):
        def execute(requests):
            return [
                ValueError("bad one") if i == 1 else "ok"
                for i in range(len(requests))
            ]

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=100.0)
            await batcher.start()
            try:
                return await asyncio.gather(
                    *(batcher.submit(Req()) for _ in range(3)),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()

        results = _run(main)
        assert sum(isinstance(r, ValueError) for r in results) == 1
        assert sum(r == "ok" for r in results if isinstance(r, str)) == 2

    def test_execute_raising_fails_the_whole_batch_not_the_server(self):
        def execute(requests):
            raise RuntimeError("engine exploded")

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=50.0)
            await batcher.start()
            try:
                failed = await asyncio.gather(
                    *(batcher.submit(Req()) for _ in range(3)),
                    return_exceptions=True,
                )
                return failed
            finally:
                await batcher.stop()

        results = _run(main)
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_recovers_after_a_failed_batch(self):
        calls = []

        def execute(requests):
            calls.append(len(requests))
            if len(calls) == 1:
                raise RuntimeError("first batch dies")
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=64, max_wait_ms=0.0)
            await batcher.start()
            try:
                first = await asyncio.gather(
                    batcher.submit(Req()), return_exceptions=True
                )
                second = await batcher.submit(Req())
                return first, second
            finally:
                await batcher.stop()

        (first,), second = _run(main)
        assert isinstance(first, RuntimeError)
        assert second == "ok"


class TestSingleWriterSerialization:
    def test_run_serialized_never_overlaps_a_batch(self):
        """Batches and serialized fns share one thread: no concurrent entry."""
        active = []
        lock = threading.Lock()
        overlaps = []

        def _enter(tag):
            with lock:
                if active:
                    overlaps.append((tag, list(active)))
                active.append(tag)
            time.sleep(0.005)
            with lock:
                active.remove(tag)

        def execute(requests):
            _enter("batch")
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            try:
                jobs = []
                for i in range(6):
                    jobs.append(batcher.submit(Req()))
                    jobs.append(batcher.run_serialized(lambda: _enter("reload")))
                await asyncio.gather(*jobs)
            finally:
                await batcher.stop()

        _run(main)
        assert overlaps == []

    def test_run_serialized_returns_the_functions_value(self):
        async def main():
            batcher = MicroBatcher(lambda reqs: ["ok"] * len(reqs))
            await batcher.start()
            try:
                return await batcher.run_serialized(lambda: {"swapped": True})
            finally:
                await batcher.stop()

        assert _run(main) == {"swapped": True}


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def main():
            batcher = MicroBatcher(lambda reqs: [])
            with pytest.raises(RuntimeError, match="not started"):
                await batcher.submit(Req())

        _run(main)

    def test_stop_drains_queued_requests(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            pending = [
                asyncio.get_running_loop().create_task(batcher.submit(Req()))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await batcher.stop()
            return await asyncio.gather(*pending, return_exceptions=True)

        results = _run(main)
        assert results == ["ok"] * 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda reqs: [], max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(lambda reqs: [], max_wait_ms=-1.0)


@dataclass(frozen=True)
class DeadlineReq:
    """Request with an absolute expiry, as /resolve builds them."""

    records: tuple = ("x",)
    deadline: float | None = None


class TestAdmissionControl:
    def test_queue_full_sheds_immediately(self):
        started = threading.Event()
        release = threading.Event()

        def execute(requests):
            started.set()
            release.wait(timeout=5)
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0, max_queue=2)
            await batcher.start()
            loop = asyncio.get_running_loop()
            # one request pinned on the writer thread + a full queue behind it
            blocker = loop.create_task(batcher.submit(Req()))
            await asyncio.to_thread(started.wait, 5)
            queued = [loop.create_task(batcher.submit(Req())) for _ in range(2)]
            while batcher.queue_depth < 2:
                await asyncio.sleep(0.01)
            with pytest.raises(Overloaded) as exc_info:
                await batcher.submit(Req())
            release.set()
            results = await asyncio.gather(blocker, *queued)
            await batcher.stop()
            return exc_info.value, results

        exc, results = _run(main)
        assert exc.reason == "queue_full"
        # the shed was immediate and nobody admitted was harmed
        assert results == ["ok"] * 3

    def test_inflight_record_budget_sheds(self):
        release = threading.Event()

        def execute(requests):
            release.wait(timeout=5)
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(
                execute, max_batch=4, max_wait_ms=0.0, max_inflight_records=4
            )
            await batcher.start()
            loop = asyncio.get_running_loop()
            first = loop.create_task(batcher.submit(Req(records=("a", "b", "c"))))
            while batcher.inflight_records < 3:
                await asyncio.sleep(0.01)
            with pytest.raises(Overloaded) as exc_info:
                await batcher.submit(Req(records=("d", "e")))
            release.set()
            result = await first
            await batcher.stop()
            return exc_info.value, result, batcher.inflight_records

        exc, result, inflight_after = _run(main)
        assert exc.reason == "inflight_records"
        assert result == "ok"
        assert inflight_after == 0

    def test_oversized_request_admitted_when_idle(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            # the single request is over the budget, but nothing is in
            # flight, so it must still make progress
            batcher = MicroBatcher(execute, max_inflight_records=2)
            await batcher.start()
            try:
                return await batcher.submit(Req(records=("a", "b", "c", "d")))
            finally:
                await batcher.stop()

        assert _run(main) == "ok"

    def test_shed_request_leaves_no_inflight_weight(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_inflight_records=4)
            await batcher.start()
            await batcher.submit(Req(records=("a",)))
            assert batcher.inflight_records == 0
            await batcher.stop()

        _run(main)


class TestDeadlines:
    def test_expired_while_queued_gets_deadline_expired(self):
        release = threading.Event()
        executed = []

        def execute(requests):
            release.wait(timeout=5)
            executed.extend(requests)
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            loop = asyncio.get_running_loop()
            blocker = loop.create_task(batcher.submit(Req()))
            await asyncio.sleep(0.05)  # blocker is on the writer thread now
            doomed = loop.create_task(
                batcher.submit(DeadlineReq(deadline=loop.time() + 0.05))
            )
            await asyncio.sleep(0.2)  # let the deadline lapse while queued
            release.set()
            outcomes = await asyncio.gather(blocker, doomed, return_exceptions=True)
            await batcher.stop()
            return outcomes, batcher.n_expired

        (blocker_out, doomed_out), n_expired = _run(main)
        assert blocker_out == "ok"
        assert isinstance(doomed_out, DeadlineExpired)
        assert n_expired == 1
        # the expired request never reached the engine
        assert all(not isinstance(r, DeadlineReq) for r in executed)

    def test_unexpired_deadline_executes_normally(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_wait_ms=0.0)
            await batcher.start()
            loop = asyncio.get_running_loop()
            try:
                return await batcher.submit(
                    DeadlineReq(deadline=loop.time() + 30.0)
                )
            finally:
                await batcher.stop()

        assert _run(main) == "ok"


class TestCancellationEdges:
    def test_future_cancelled_mid_flight_batch(self):
        started = threading.Event()
        release = threading.Event()

        def execute(requests):
            started.set()
            release.wait(timeout=5)
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=2, max_wait_ms=50.0)
            await batcher.start()
            loop = asyncio.get_running_loop()
            victim = loop.create_task(batcher.submit(Req()))
            survivor = loop.create_task(batcher.submit(Req()))
            await asyncio.to_thread(started.wait, 5)  # batch is executing
            victim.cancel()
            release.set()
            survivor_out = await survivor
            with pytest.raises(asyncio.CancelledError):
                await victim
            await batcher.stop()
            return survivor_out, batcher.inflight_records

        survivor_out, inflight = _run(main)
        # the cancelled submitter does not poison its co-batched peer, and
        # its record weight is still released
        assert survivor_out == "ok"
        assert inflight == 0

    def test_future_cancelled_while_queued_is_reaped(self):
        executed = []
        release = threading.Event()

        def execute(requests):
            release.wait(timeout=5)
            executed.append(len(requests))
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            loop = asyncio.get_running_loop()
            blocker = loop.create_task(batcher.submit(Req()))
            await asyncio.sleep(0.05)
            victim = loop.create_task(batcher.submit(Req()))
            await asyncio.sleep(0.05)  # queued, not executing
            victim.cancel()
            release.set()
            assert await blocker == "ok"
            with pytest.raises(asyncio.CancelledError):
                await victim
            await batcher.stop()
            return batcher.inflight_records

        assert _run(main) == 0
        # the reaped request never became a batch
        assert executed == [1]

    def test_stop_racing_concurrent_submit(self):
        def execute(requests):
            time.sleep(0.01)
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            loop = asyncio.get_running_loop()
            tasks = [loop.create_task(batcher.submit(Req())) for _ in range(6)]
            await asyncio.sleep(0)  # some enqueue, then stop races the rest
            stop_task = loop.create_task(batcher.stop())
            late = [loop.create_task(batcher.submit(Req())) for _ in range(3)]
            outcomes = await asyncio.gather(*tasks, *late, return_exceptions=True)
            await stop_task
            return outcomes

        outcomes = _run(main)
        # every submission resolved: "ok" for the admitted, BatcherClosed
        # for the raced — never a hang, never a silent drop
        assert all(
            out == "ok" or isinstance(out, BatcherClosed) for out in outcomes
        )
        assert "ok" in outcomes


class TestForcedStop:
    def test_stop_timeout_forces_stalled_writer(self):
        stall = threading.Event()

        def execute(requests):
            stall.wait(timeout=30)  # simulates a wedged engine pass
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute, max_batch=1, max_wait_ms=0.0)
            await batcher.start()
            loop = asyncio.get_running_loop()
            wedged = loop.create_task(batcher.submit(Req()))
            queued = loop.create_task(batcher.submit(Req()))
            await asyncio.sleep(0.05)
            clean = await batcher.stop(timeout=0.2)
            outcomes = await asyncio.gather(wedged, queued, return_exceptions=True)
            stall.set()  # let the abandoned thread finish
            return clean, outcomes

        clean, outcomes = _run(main)
        assert clean is False
        assert all(isinstance(out, BatcherClosed) for out in outcomes)

    def test_stop_without_timeout_is_clean(self):
        def execute(requests):
            return ["ok"] * len(requests)

        async def main():
            batcher = MicroBatcher(execute)
            await batcher.start()
            await batcher.submit(Req())
            return await batcher.stop(timeout=5.0)

        assert _run(main) is True

    def test_stop_twice_is_safe(self):
        async def main():
            batcher = MicroBatcher(lambda reqs: ["ok"] * len(reqs))
            await batcher.start()
            assert await batcher.stop() is True
            assert await batcher.stop() is True

        _run(main)
