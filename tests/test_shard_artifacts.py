"""Sharded artifact layout: versioned publish, link reuse, lazy loading."""

import json

import numpy as np
import pytest

from repro.data.table import Table
from repro.incremental import ArtifactError, IncrementalResolver
from repro.incremental.artifacts import artifact_dir
from repro.reliability.atomic import IntegrityError
from repro import ERPipeline

_SUFFIXES = ("grill", "bistro", "cafe", "diner", "tavern", "kitchen")
_WORDS = (
    "harbor", "maple", "sunset", "copper", "willow", "granite",
    "juniper", "crimson", "meadow", "ivory", "cobalt", "timber",
    "velvet", "orchid", "saffron", "lagoon", "ember", "prairie",
)
_CITIES = ("oakland", "berkeley", "alameda")


def _record(entity: int, variant: str) -> dict:
    suffix = _SUFFIXES[entity % len(_SUFFIXES)]
    name = f"{_WORDS[entity]} {_WORDS[(entity + 7) % len(_WORDS)]} {suffix}"
    return {
        "id": f"{variant}{entity}",
        "name": name,
        "city": _CITIES[entity % len(_CITIES)],
        "phone": f"555-01{entity:02d}",
    }


@pytest.fixture(scope="module")
def fitted_pipeline():
    pipeline = ERPipeline(blocking_attribute="name")
    pipeline.run(
        Table(
            [_record(e, v) for e in range(18) for v in ("a", "b")],
            attributes=["name", "city", "phone"],
        )
    )
    return pipeline


def _batch(prefix: str, entities=range(6)) -> list[dict]:
    return [dict(_record(e, "x"), id=f"{prefix}{e}") for e in entities]


def _manifest(root) -> dict:
    return json.loads((artifact_dir(root) / "manifest.json").read_text())


class TestShardedLayout:
    def test_save_writes_versioned_shard_files(self, fitted_pipeline, tmp_path):
        resolver = fitted_pipeline.freeze(shards=3)
        root = tmp_path / "art"
        resolver.save(root)
        live = artifact_dir(root)
        assert (root / "CURRENT").is_file()
        assert (live / "shards" / "ledger.shard").is_file()
        for i in range(3):
            assert (live / "shards" / f"store-{i:04d}.shard").is_file()
            assert (live / "shards" / f"index-{i:04d}.shard").is_file()
        meta = _manifest(root)["extra"]["resolver"]["sharded"]
        assert meta["n_shards"] == 3
        assert meta["n_records"] == 36
        entries = [meta["files"]["ledger"], *meta["files"]["store"], *meta["files"]["index"]]
        for entry in entries:
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] == (live / entry["name"]).stat().st_size

    def test_load_round_trips_state(self, fitted_pipeline, tmp_path):
        resolver = fitted_pipeline.freeze(shards=4)
        expected_entities = resolver.store.entities()
        root = tmp_path / "art"
        resolver.save(root)
        loaded = IncrementalResolver.load(root)
        assert loaded.sharded
        assert loaded.store.entities() == expected_entities
        assert len(loaded.index) == len(resolver.index)
        assert loaded.index.n_tokens == resolver.index.n_tokens
        # lazy: nothing mapped until a batch routes into a shard
        assert loaded.store.loader.stats()["loaded_shards"] == 0

    def test_loaded_resolver_resolves_identically(self, fitted_pipeline, tmp_path):
        live = fitted_pipeline.freeze(shards=4)
        root = tmp_path / "art"
        live.save(root)
        loaded = IncrementalResolver.load(root)
        batch = _batch("q")
        out_live = live.resolve(batch)
        out_loaded = loaded.resolve(batch)
        assert out_loaded.matches == out_live.matches
        np.testing.assert_array_equal(out_loaded.scores, out_live.scores)
        assert out_loaded.assignments == out_live.assignments

    def test_workers_survive_save_and_load_override(self, fitted_pipeline, tmp_path):
        root = tmp_path / "art"
        fitted_pipeline.freeze(shards=2, workers=3).save(root)
        assert IncrementalResolver.load(root).workers == 3
        assert IncrementalResolver.load(root, workers=1).workers == 1


class TestIncrementalSaves:
    def test_clean_shards_are_hardlinked_across_versions(self, fitted_pipeline, tmp_path):
        resolver = fitted_pipeline.freeze(shards=8)
        root = tmp_path / "art"
        resolver.save(root)
        first = artifact_dir(root)
        # a one-record batch dirties only the shards it lands in
        resolver.resolve([dict(_record(0, "z"), id="z0")])
        resolver.save(root)
        second = artifact_dir(root)
        assert second != first
        reused = rewritten = 0
        for path in sorted(second.glob("shards/*.shard")):
            if path.name == "ledger.shard":
                continue  # the ledger always rewrites (new record + dfs)
            old = first / "shards" / path.name
            if path.stat().st_ino == old.stat().st_ino:
                reused += 1
            else:
                rewritten += 1
        assert reused > 0, "expected untouched shards to be hardlinked"
        assert rewritten > 0, "expected the touched shards to be rewritten"

    def test_resolver_stays_usable_after_save(self, fitted_pipeline, tmp_path):
        """rebase_after_save folds overlays into the new base without data loss."""
        resolver = fitted_pipeline.freeze(shards=4)
        reference = fitted_pipeline.freeze(shards=1)
        root = tmp_path / "art"
        batches = [_batch("s1-"), _batch("s2-", range(6, 12)), _batch("s3-", range(12, 18))]
        out_sharded, out_classic = [], []
        for batch in batches:
            out_sharded.append(resolver.resolve(batch))
            resolver.save(root)  # rebase between every batch
            out_classic.append(reference.resolve(batch))
        for ours, ref in zip(out_sharded, out_classic):
            assert ours.matches == ref.matches
            np.testing.assert_array_equal(ours.scores, ref.scores)
        assert resolver.store.entities() == reference.store.entities()


class TestLazyLoading:
    def test_resolve_touches_only_needed_shards(self, fitted_pipeline, tmp_path):
        root = tmp_path / "art"
        fitted_pipeline.freeze(shards=16).save(root)
        loaded = IncrementalResolver.load(root)
        loaded.resolve([dict(_record(3, "y"), id="y3")])
        stats = loaded.store.loader.stats()
        assert 0 < stats["loaded_shards"] < 32  # 16 store + 16 index shards total
        assert stats["loaded_bytes"] > 0

    def test_load_budget_evicts_cold_shards(self, fitted_pipeline, tmp_path):
        root = tmp_path / "art"
        # ~2 KiB budget: single shards fit, the full set does not
        fitted_pipeline.freeze(shards=8, load_budget_mb=0.002).save(root)
        loaded = IncrementalResolver.load(root)
        reference = fitted_pipeline.freeze(shards=1)
        batch = _batch("bud-", range(18))
        out_budget = loaded.resolve(batch)
        out_reference = reference.resolve(batch)
        assert out_budget.matches == out_reference.matches
        np.testing.assert_array_equal(out_budget.scores, out_reference.scores)
        stats = loaded.store.loader.stats()
        assert stats["evictions"] > 0
        assert loaded.store.loader.budget_bytes == int(0.002 * 1024 * 1024)


class TestIntegrity:
    def test_corrupt_ledger_fails_load(self, fitted_pipeline, tmp_path):
        root = tmp_path / "art"
        fitted_pipeline.freeze(shards=2).save(root)
        ledger = artifact_dir(root) / "shards" / "ledger.shard"
        raw = bytearray(ledger.read_bytes())
        raw[-1] ^= 0xFF
        ledger.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError):
            IncrementalResolver.load(root)

    def test_corrupt_cold_shard_fails_on_first_touch(self, fitted_pipeline, tmp_path):
        root = tmp_path / "art"
        fitted_pipeline.freeze(shards=4).save(root)
        target = artifact_dir(root) / "shards" / "store-0002.shard"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        loaded = IncrementalResolver.load(root)  # lazy: corruption not seen yet
        victim = next(
            rid for rid in loaded.store._order if loaded.store.shard_of(rid) == 2
        )
        with pytest.raises(IntegrityError, match="checksum"):
            loaded.store.get(victim)


class TestServingSharded:
    def test_serving_state_loads_and_resolves_sharded_artifacts(
        self, fitted_pipeline, tmp_path
    ):
        from repro.serve.protocol import ResolveRequest
        from repro.serve.state import ServingState

        root = tmp_path / "art"
        fitted_pipeline.freeze(shards=4).save(root)
        state = ServingState(root)
        state.load()
        assert state.resolver.sharded
        records = tuple(_batch("srv", range(3)))
        request = ResolveRequest(
            records=records, record_ids=tuple(r["id"] for r in records)
        )
        (outcome,) = state.execute_batch([request])
        result, _info = outcome
        assert result.record_ids == [r["id"] for r in request.records]
        assert state.resolver.store.snapshot().n_records == 39

    def test_reload_closes_previous_resolver_pool(self, fitted_pipeline, tmp_path):
        from repro.serve.state import ServingState

        root = tmp_path / "art"
        fitted_pipeline.freeze(shards=2, workers=2).save(root)
        state = ServingState(root)
        state.load()
        retired = state.resolver
        retired._feature_pool()  # force the pool into existence
        assert retired._pool is not None
        state.reload()
        assert retired._pool is None  # reload shut the old pool down
        assert state.resolver is not retired
