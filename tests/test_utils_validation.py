"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_feature_groups,
    check_feature_matrix,
    check_posterior,
    check_probability,
)


class TestCheckFeatureMatrix:
    def test_accepts_clean_matrix(self):
        X = check_feature_matrix([[0.1, 0.2], [0.3, 0.4]])
        assert X.shape == (2, 2)
        assert X.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_feature_matrix([1.0, 2.0])

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError, match="at least one row"):
            check_feature_matrix(np.empty((0, 3)))

    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError, match="at least one feature"):
            check_feature_matrix(np.empty((3, 0)))

    def test_rejects_nan_by_default(self):
        with pytest.raises(ValueError, match="NaN"):
            check_feature_matrix([[0.1, np.nan]])

    def test_allows_nan_when_requested(self):
        X = check_feature_matrix([[0.1, np.nan]], allow_nan=True)
        assert np.isnan(X[0, 1])

    def test_rejects_inf_even_with_allow_nan(self):
        with pytest.raises(ValueError, match="infinite"):
            check_feature_matrix([[0.1, np.inf]], allow_nan=True)

    def test_error_uses_argument_name(self):
        with pytest.raises(ValueError, match="my_matrix"):
            check_feature_matrix([1.0], name="my_matrix")


class TestCheckFeatureGroups:
    def test_none_expands_to_singletons(self):
        assert check_feature_groups(None, 3) == [[0], [1], [2]]

    def test_valid_partition_passes(self):
        assert check_feature_groups([[0, 2], [1]], 3) == [[0, 2], [1]]

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="empty"):
            check_feature_groups([[0, 1], []], 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_feature_groups([[0, 5]], 2)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="more than one group"):
            check_feature_groups([[0, 1], [1]], 2)

    def test_rejects_incomplete_cover(self):
        with pytest.raises(ValueError, match="missing"):
            check_feature_groups([[0]], 2)


class TestCheckPosterior:
    def test_valid(self):
        out = check_posterior([0.0, 0.5, 1.0])
        assert out.shape == (3,)

    def test_rejects_out_of_unit_interval(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_posterior([0.5, 1.2])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_posterior([0.5, float("nan")])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="expected 5"):
            check_posterior([0.5], n_rows=5)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_posterior([[0.5]])


class TestCheckProbability:
    def test_inclusive_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p", inclusive=False)
        with pytest.raises(ValueError):
            check_probability(1.0, "p", inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="must be in"):
            check_probability(1.5, "p")
