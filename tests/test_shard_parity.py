"""Sharded-vs-unsharded parity on the six fixture benchmarks.

The acceptance bar for the sharded engine: for every fixture dataset
(linkage and dedup), any shard count, and workers 1 or 4, a resolve batch
must produce bit-identical candidate pairs, scores, match sets, and stable
entity ids to the classic single-process engine. One batch fit per dataset
is shared across configurations (``freeze`` re-derives the frozen state,
so each configuration still gets its own store/index).
"""

import numpy as np
import pytest

from repro.api.pipeline import ERPipeline
from repro.blocking.overlap import TokenOverlapBlocker
from repro.eval.harness import _BLOCKING, load_benchmark

DATASETS = ("rest_fz", "pub_da", "pub_ds", "mv_ri", "prod_ab", "prod_ag")

_FITTED: dict = {}


def _fitted(name):
    """One batch fit per dataset, shared by every parity configuration."""
    if name not in _FITTED:
        bench = load_benchmark(name, scale="tiny", seed=11)
        attr, min_overlap, top_k, _cap = _BLOCKING[name]
        pipeline = ERPipeline(
            blocker=TokenOverlapBlocker(attr, min_overlap=min_overlap, top_k=top_k)
        )
        if bench.right is not None:
            pipeline.run(bench.left, bench.right)
        else:
            pipeline.run(bench.left)
        _FITTED[name] = (pipeline, bench)
    return _FITTED[name]


def _held_out_batch(bench, n=25):
    batch = []
    for i, rec in enumerate(bench.left):
        if i >= n:
            break
        batch.append(dict(rec, **{bench.left.id_attr: f"probe-{i}"}))
    return batch


def _resolve_fingerprint(pipeline, bench, *, shards, workers):
    resolver = pipeline.freeze(0.5, shards=shards, workers=workers)
    try:
        result = resolver.resolve(_held_out_batch(bench))
        return {
            "pairs": result.pairs,
            "scores": result.scores.tobytes(),
            "matches": result.matches,
            "assignments": result.assignments,
            "entities": {
                rid: resolver.store.entity_of(rid) for rid in result.assignments
            },
            "clusters": set(resolver.store.clusters()),
            "sharded": resolver.sharded,
        }
    finally:
        resolver.close()


@pytest.mark.parametrize("name", DATASETS)
def test_sharded_resolve_is_bit_identical(name):
    pipeline, bench = _fitted(name)
    reference = _resolve_fingerprint(pipeline, bench, shards=1, workers=1)
    assert not reference["sharded"]
    for shards in (2, 5, 16):
        sharded = _resolve_fingerprint(pipeline, bench, shards=shards, workers=1)
        assert sharded.pop("sharded")
        reference_view = {k: v for k, v in reference.items() if k != "sharded"}
        assert sharded == reference_view, f"{name} diverged at shards={shards}"


@pytest.mark.parametrize("name", ["rest_fz", "mv_ri"])
def test_worker_pool_is_bit_identical(name):
    """workers=4 featurizes in subprocesses; scores must not move a bit."""
    pipeline, bench = _fitted(name)
    reference = _resolve_fingerprint(pipeline, bench, shards=1, workers=1)
    parallel = _resolve_fingerprint(pipeline, bench, shards=3, workers=4)
    assert parallel.pop("sharded")
    assert parallel == {k: v for k, v in reference.items() if k != "sharded"}


def test_shard_stats_only_on_sharded_engine():
    pipeline, bench = _fitted("rest_fz")
    classic = pipeline.freeze(0.5)
    sharded = pipeline.freeze(0.5, shards=4)
    try:
        batch = _held_out_batch(bench, n=10)
        assert classic.resolve(batch).shard_stats is None
        result = sharded.resolve(batch)
        stats = result.shard_stats
        assert stats is not None
        assert stats["n_shards"] == 4
        assert stats["workers"] == 1
        assert set(stats["index_shards_touched"]) <= set(range(4))
        assert sum(stats["pairs_per_shard"].values()) == len(result.pairs)
    finally:
        classic.close()
        sharded.close()


def test_mixed_batch_merges_match_reference():
    """In-batch duplicates + cross-store merges land on identical entity ids."""
    pipeline, bench = _fitted("rest_fz")
    id_attr = bench.left.id_attr
    twins = []
    for i, rec in enumerate(bench.left):
        if i >= 8:
            break
        twins.append(dict(rec, **{id_attr: f"dup-a-{i}"}))
        twins.append(dict(rec, **{id_attr: f"dup-b-{i}"}))
    classic = pipeline.freeze(0.5)
    sharded = pipeline.freeze(0.5, shards=5)
    try:
        out_classic = classic.resolve(twins)
        out_sharded = sharded.resolve(twins)
        assert out_sharded.matches == out_classic.matches
        np.testing.assert_array_equal(out_sharded.scores, out_classic.scores)
        assert out_sharded.assignments == out_classic.assignments
    finally:
        classic.close()
        sharded.close()
