"""Tests for the three-model record-linkage trainer (§5)."""

import numpy as np
import pytest

from repro.core import ZeroERConfig, ZeroERLinkage
from repro.eval import f_score
from repro.utils.rng import ensure_rng


def linkage_problem(seed=0, n_left=120, copies_for=30):
    """A synthetic linkage task with 1-to-many matches.

    Left entities have similarity-vector signatures; right side holds one or
    two copies per matched entity. Returns cross/left/right matrices, pair
    id lists, and gold labels for the cross pairs.
    """
    rng = ensure_rng(seed)
    cross_pairs, rows, labels = [], [], []
    right_pairs, right_rows, right_labels = [], [], []

    def match_row():
        return np.clip(rng.normal(0.8, 0.08, 4), 0, 1)

    def unmatch_row():
        return np.clip(rng.normal(0.2, 0.08, 4), 0, 1)

    rid = 0
    for i in range(n_left):
        lid = f"L{i}"
        n_copies = 2 if i < copies_for else 1
        copy_ids = []
        for _ in range(n_copies):
            cross_pairs.append((lid, f"R{rid}"))
            rows.append(match_row())
            labels.append(1.0)
            copy_ids.append(f"R{rid}")
            rid += 1
        if len(copy_ids) == 2:
            right_pairs.append((copy_ids[0], copy_ids[1]))
            right_rows.append(match_row())
            right_labels.append(1.0)
        # distractor cross pair + its closing right pair (true unmatch)
        cross_pairs.append((lid, f"R{rid}"))
        rows.append(unmatch_row())
        labels.append(0.0)
        right_pairs.append((copy_ids[0], f"R{rid}"))
        right_rows.append(unmatch_row())
        right_labels.append(0.0)
        rid += 1

    return (
        np.array(rows),
        cross_pairs,
        np.array(labels),
        np.array(right_rows),
        right_pairs,
        np.array(right_labels),
    )


class TestFitModes:
    @pytest.mark.parametrize("mode", ["staged", "joint"])
    def test_linkage_solves_one_to_many(self, mode):
        X, pairs, y, Xr, pr, yr = linkage_problem()
        model = ZeroERLinkage(ZeroERConfig(linkage_mode=mode))
        model.fit(X, pairs, X_right=Xr, right_pairs=pr)
        assert f_score(y, model.labels_) > 0.9

    def test_without_within_models(self):
        X, pairs, y, *_ = linkage_problem()
        model = ZeroERLinkage(transitivity=False)
        model.fit(X, pairs)
        assert f_score(y, model.labels_) > 0.9

    def test_transitivity_improves_or_matches_f1(self):
        X, pairs, y, Xr, pr, yr = linkage_problem(seed=3)
        with_t = ZeroERLinkage(transitivity=True).fit(X, pairs, X_right=Xr, right_pairs=pr)
        without = ZeroERLinkage(transitivity=False).fit(X, pairs)
        assert f_score(y, with_t.labels_) >= f_score(y, without.labels_) - 0.02

    def test_right_scores_exposed(self):
        X, pairs, y, Xr, pr, yr = linkage_problem()
        model = ZeroERLinkage().fit(X, pairs, X_right=Xr, right_pairs=pr)
        assert model.right_scores_ is not None
        assert model.right_scores_.shape == (len(pr),)
        assert model.left_scores_ is None

    def test_within_model_finds_right_duplicates(self):
        X, pairs, y, Xr, pr, yr = linkage_problem()
        model = ZeroERLinkage().fit(X, pairs, X_right=Xr, right_pairs=pr)
        pred_right = (model.right_scores_ > 0.5).astype(float)
        assert f_score(yr, pred_right) > 0.9


class TestValidation:
    def test_misaligned_cross_pairs(self):
        with pytest.raises(ValueError, match="align"):
            ZeroERLinkage().fit(np.ones((3, 2)), [("a", "b")])

    def test_misaligned_within_pairs(self):
        X, pairs, *_ = linkage_problem()
        with pytest.raises(ValueError, match="align"):
            ZeroERLinkage().fit(X, pairs, X_right=np.ones((4, 4)), right_pairs=[("a", "b")])

    def test_unfitted_access(self):
        with pytest.raises(RuntimeError, match="fitted"):
            _ = ZeroERLinkage().labels_

    def test_history_available(self):
        X, pairs, y, *_ = linkage_problem()
        model = ZeroERLinkage(transitivity=False).fit(X, pairs)
        assert model.history_.n_iterations >= 2

    def test_all_unmatch_within_table_handled(self):
        # a clean table's within-pair set may initialize to a single class;
        # the linkage trainer must degrade gracefully (runner dropped)
        X, pairs, y, *_ = linkage_problem()
        n = 30
        X_left = np.clip(np.random.default_rng(0).normal(0.2, 0.01, (n, 4)), 0, 1)
        left_pairs = [(f"L{i}", f"L{i+1}") for i in range(n)]
        model = ZeroERLinkage().fit(X, pairs, X_left=X_left, left_pairs=left_pairs)
        assert f_score(y, model.labels_) > 0.85
