"""Shard container format: column codec, round trips, integrity, teardown."""

import gc

import numpy as np
import pytest

from repro.reliability.atomic import IntegrityError
from repro.shard import ShardFile, pack_column, unpack_column, write_shard_file
from repro.shard.storage import ABSENT, MAGIC, shard_file_bytes


class TestColumnCodec:
    def test_round_trips_scalars(self):
        values = ["plain", None, 3, 2.5, "", "unicode é中", -1.75e-9, True]
        packed = pack_column(values)
        assert unpack_column(packed["kind"], packed["offsets"], packed["blob"]) == values

    def test_absent_is_distinct_from_none(self):
        packed = pack_column([None, ABSENT, "x"], allow_absent=True)
        out = unpack_column(packed["kind"], packed["offsets"], packed["blob"])
        assert out[0] is None
        assert out[1] is ABSENT
        assert out[2] == "x"

    def test_absent_rejected_outside_record_columns(self):
        with pytest.raises(ValueError, match="ABSENT"):
            pack_column([ABSENT])

    def test_float_round_trip_is_exact(self):
        values = [0.1, 1 / 3, float(np.float64(7).item()) ** 0.5, -0.0]
        packed = pack_column(values)
        out = unpack_column(packed["kind"], packed["offsets"], packed["blob"])
        assert all(a == b for a, b in zip(out, values))


class TestContainerRoundTrip:
    def _segments(self):
        return {
            "plist": np.arange(17, dtype=np.int64),
            "indptr": np.array([0, 5, 17], dtype=np.int64),
            "kinds": np.array([1, 0, 2], dtype=np.uint8),
            "empty": np.empty(0, dtype=np.int64),
        }

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "s.shard"
        meta = {"shard": 3, "columns": ["name", "city"]}
        sha = write_shard_file(path, self._segments(), meta)
        shard = ShardFile(path, expected_sha256=sha)
        assert shard.meta == meta
        assert shard.segment_names() == ["empty", "indptr", "kinds", "plist"]
        for name, expected in self._segments().items():
            got = shard.segment(name)
            assert got.dtype == expected.dtype
            np.testing.assert_array_equal(got, expected)
        shard.release()  # views may still be alive in this frame

    def test_segments_are_zero_copy_views(self, tmp_path):
        path = tmp_path / "s.shard"
        write_shard_file(path, self._segments(), {})
        shard = ShardFile(path)
        view = shard.segment("plist")
        assert not view.flags.writeable  # backed by the read-only map
        shard.release()

    def test_image_is_deterministic(self):
        image_a = shard_file_bytes(self._segments(), {"shard": 1})
        image_b = shard_file_bytes(self._segments(), {"shard": 1})
        assert image_a == image_b

    def test_missing_segment_raises_key_error(self, tmp_path):
        path = tmp_path / "s.shard"
        write_shard_file(path, self._segments(), {})
        with ShardFile(path) as shard:
            with pytest.raises(KeyError, match="nope"):
                shard.segment("nope")


class TestIntegrity:
    def test_corrupt_byte_fails_checksum(self, tmp_path):
        path = tmp_path / "s.shard"
        sha = write_shard_file(path, {"a": np.arange(8)}, {})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(IntegrityError, match="checksum"):
            ShardFile(path, expected_sha256=sha)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "s.shard"
        path.write_bytes(b"NOTSHARD" + b"\0" * 64)
        with pytest.raises(IntegrityError, match="magic"):
            ShardFile(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "s.shard"
        image = shard_file_bytes({"a": np.arange(4)}, {})
        path.write_bytes(image[: len(MAGIC) + 8 + 5])
        with pytest.raises(IntegrityError):
            ShardFile(path)


class TestTeardown:
    def test_close_with_live_views_raises_buffer_error(self, tmp_path):
        path = tmp_path / "s.shard"
        write_shard_file(path, {"a": np.arange(8)}, {})
        shard = ShardFile(path)
        view = shard.segment("a")
        with pytest.raises(BufferError):
            shard.close()
        del view
        gc.collect()
        shard.close()

    def test_release_is_safe_with_live_views(self, tmp_path):
        path = tmp_path / "s.shard"
        write_shard_file(path, {"a": np.arange(8, dtype=np.int64)}, {})
        shard = ShardFile(path)
        view = shard.segment("a")
        shard.release()  # must not raise; the view stays readable
        np.testing.assert_array_equal(view, np.arange(8))
        shard.release()  # idempotent
