"""Deprecation shims: old import paths warn (never raise) and stay functional."""

import pytest

import repro


def test_import_repro_is_warning_free():
    # importing the package itself must not trip -W error::DeprecationWarning
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", "import repro"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_repro_pipeline_module_warns_and_forwards():
    import repro.pipeline as legacy

    with pytest.warns(DeprecationWarning, match="moved to repro.api"):
        pipeline_cls = legacy.ERPipeline
    with pytest.warns(DeprecationWarning, match="moved to repro.api"):
        result_cls = legacy.ERResult
    assert pipeline_cls is repro.ERPipeline
    assert result_cls is repro.ERResult


def test_repro_pipeline_from_import_warns():
    with pytest.warns(DeprecationWarning, match="moved to repro.api"):
        from repro.pipeline import ERPipeline  # noqa: F401


def test_repro_pipeline_unknown_attribute_raises():
    import repro.pipeline as legacy

    with pytest.raises(AttributeError):
        legacy.no_such_name


def test_autoer_alias_warns_and_forwards():
    with pytest.warns(DeprecationWarning, match="AutoER is deprecated"):
        alias = repro.AutoER
    assert alias is repro.ZeroER


def test_autoer_not_in_all():
    assert "AutoER" not in repro.__all__
    assert "AutoER" in dir(repro)


def test_tokenizer_spec_moved_to_text():
    import repro.incremental.index as legacy
    from repro.text.tokenizers import tokenizer_from_spec, tokenizer_spec

    with pytest.warns(DeprecationWarning, match="moved to repro.text.tokenizers"):
        assert legacy.tokenizer_spec is tokenizer_spec
    with pytest.warns(DeprecationWarning, match="moved to repro.text.tokenizers"):
        assert legacy.tokenizer_from_spec is tokenizer_from_spec


def test_repro_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.no_such_name
