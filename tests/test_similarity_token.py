"""Tests for token-based similarity measures."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    build_idf,
    cosine,
    dice,
    jaccard,
    monge_elkan,
    overlap_coefficient,
    tfidf_cosine,
)

token_sets = st.sets(st.text(alphabet="abcde", min_size=1, max_size=4), max_size=8)


class TestJaccard:
    def test_known_value(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_identical(self):
        assert jaccard({"x", "y"}, {"x", "y"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard(set(), {"a"}) == 0.0

    def test_missing_is_nan(self):
        assert math.isnan(jaccard(None, {"a"}))

    def test_accepts_lists_with_duplicates(self):
        assert jaccard(["a", "a", "b"], ["b", "b"]) == pytest.approx(0.5)

    @given(token_sets, token_sets)
    def test_symmetric(self, a, b):
        assert jaccard(a, b) == pytest.approx(jaccard(b, a))

    @given(token_sets, token_sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(token_sets)
    def test_self_similarity_is_one(self, a):
        assert jaccard(a, a) == 1.0


class TestCosineDiceOverlap:
    def test_cosine_known(self):
        # |A∩B|=1, |A|=2, |B|=2 → 1/2
        assert cosine({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_dice_known(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_overlap_known(self):
        assert overlap_coefficient({"a", "b", "c"}, {"b", "c"}) == pytest.approx(1.0)

    @given(token_sets, token_sets)
    def test_all_symmetric_and_bounded(self, a, b):
        for func in (cosine, dice, overlap_coefficient):
            val = func(a, b)
            assert 0.0 <= val <= 1.0
            assert val == pytest.approx(func(b, a))

    @given(token_sets, token_sets)
    def test_ordering_overlap_ge_dice(self, a, b):
        # overlap divides by min size, dice by mean size → overlap >= dice
        assert overlap_coefficient(a, b) >= dice(a, b) - 1e-12

    @given(token_sets, token_sets)
    def test_ordering_dice_ge_jaccard(self, a, b):
        assert dice(a, b) >= jaccard(a, b) - 1e-12

    def test_nan_for_missing(self):
        for func in (cosine, dice, overlap_coefficient):
            assert math.isnan(func(None, {"a"}))


class TestTfidf:
    def test_idf_rare_tokens_weigh_more(self):
        idf = build_idf([["common", "rare"], ["common"], ["common", "x"]])
        assert idf["rare"] > idf["common"]

    def test_idf_positive(self):
        idf = build_idf([["a"], ["a"], ["a"]])
        assert all(v > 0 for v in idf.values())

    def test_identical_docs_score_one(self):
        idf = build_idf([["a", "b"], ["c"]])
        assert tfidf_cosine(["a", "b"], ["a", "b"], idf) == pytest.approx(1.0)

    def test_disjoint_docs_score_zero(self):
        idf = build_idf([["a"], ["b"]])
        assert tfidf_cosine(["a"], ["b"], idf) == 0.0

    def test_shared_rare_token_beats_shared_common_token(self):
        corpus = [["common", "rare"]] + [["common", f"w{i}"] for i in range(20)]
        idf = build_idf(corpus)
        rare_pair = tfidf_cosine(["rare", "x1"], ["rare", "x2"], idf)
        common_pair = tfidf_cosine(["common", "x1"], ["common", "x2"], idf)
        assert rare_pair > common_pair

    def test_unknown_tokens_use_default(self):
        idf = build_idf([["a"]])
        value = tfidf_cosine(["zzz"], ["zzz"], idf)
        assert value == pytest.approx(1.0)

    def test_missing_nan(self):
        assert math.isnan(tfidf_cosine(None, ["a"], {}))


class TestMongeElkan:
    def test_identical_token_lists(self):
        assert monge_elkan(["deep", "learning"], ["deep", "learning"]) == pytest.approx(1.0)

    def test_word_reorder_invariant(self):
        a = monge_elkan(["entity", "resolution"], ["resolution", "entity"])
        assert a == pytest.approx(1.0)

    def test_symmetric_by_default(self):
        a = monge_elkan(["abc"], ["abc", "xyz"])
        b = monge_elkan(["abc", "xyz"], ["abc"])
        assert a == pytest.approx(b)

    def test_asymmetric_mode(self):
        a = monge_elkan(["abc"], ["abc", "zzz"], symmetric=False)
        assert a == pytest.approx(1.0)  # every token of A matches perfectly

    def test_partial_tokens_score_between(self):
        val = monge_elkan(["smith", "john"], ["smyth", "jon"])
        assert 0.5 < val < 1.0

    def test_empty_and_missing(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan([], ["a"]) == 0.0
        assert math.isnan(monge_elkan(None, ["a"]))
