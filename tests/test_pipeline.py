"""Tests for the high-level ERPipeline."""

import numpy as np
import pytest

from repro import ZeroERConfig, load_benchmark
from repro.blocking import AttributeEquivalenceBlocker
from repro.eval import f_score
from repro import ERPipeline, ERResult


@pytest.fixture(scope="module")
def dataset():
    return load_benchmark("rest_fz", scale="tiny", seed=2)


class TestERPipeline:
    def test_requires_blocker_or_attribute(self):
        with pytest.raises(ValueError, match="blocking_attribute"):
            ERPipeline()

    def test_linkage_run(self, dataset):
        pipeline = ERPipeline(blocking_attribute="name")
        result = pipeline.run(dataset.left, dataset.right)
        y = dataset.labels_for(result.pairs)
        assert f_score(y, result.labels) > 0.7
        assert result.scores.shape == (len(result.pairs),)

    def test_transitivity_disabled_uses_single_model(self, dataset):
        from repro.core.model import ZeroER

        pipeline = ERPipeline(
            blocking_attribute="name", config=ZeroERConfig(transitivity=False)
        )
        pipeline.run(dataset.left, dataset.right)
        assert isinstance(pipeline.model_, ZeroER)

    def test_transitivity_enabled_uses_linkage_model(self, dataset):
        from repro.core.linkage import ZeroERLinkage

        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(dataset.left, dataset.right)
        assert isinstance(pipeline.model_, ZeroERLinkage)

    def test_dedup_run(self, dataset):
        merged, _ = dataset.as_dedup()
        pipeline = ERPipeline(blocking_attribute="name")
        result = pipeline.run(merged)
        assert len(result.pairs) > 0
        assert set(np.unique(result.labels)) <= {0, 1}

    def test_custom_blocker(self, dataset):
        pipeline = ERPipeline(blocker=AttributeEquivalenceBlocker("city"))
        result = pipeline.run(dataset.left, dataset.right)
        # equivalence blocking on city produces only same-city pairs
        for left_id, right_id in result.pairs:
            assert dataset.left.get(left_id)["city"] == dataset.right.get(right_id)["city"]

    def test_empty_candidates(self, dataset):
        pipeline = ERPipeline(
            blocker=AttributeEquivalenceBlocker("name", transform=lambda v: v + "-no-match")
        )
        left = dataset.left.head(3)
        right_records = [dict(r, id=f"X{i}", name="zzz") for i, r in enumerate(dataset.right.head(3))]
        from repro.data.table import Table

        right = Table(right_records, attributes=dataset.right.attributes)
        result = pipeline.run(left, right)
        assert result.pairs == []
        assert result.labels.shape == (0,)

    def test_result_helpers(self, dataset):
        pipeline = ERPipeline(blocking_attribute="name")
        result = pipeline.run(dataset.left, dataset.right)
        assert isinstance(result, ERResult)
        top = result.top_matches(3)
        assert len(top) <= 3
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)
        assert set(result.matches) == {p for p, l in zip(result.pairs, result.labels) if l == 1}

    def test_blocking_engine_override_shares_no_state(self, dataset):
        # regression: the engine override used to shallow-copy the caller's
        # blocker, sharing its mutable tokenizer with the pipeline's copy
        from repro.blocking import TokenOverlapBlocker

        blocker = TokenOverlapBlocker("name", engine="per-record")
        pipeline = ERPipeline(blocker=blocker, blocking_engine="sparse")
        assert blocker.engine == "per-record", "caller's blocker must stay untouched"
        assert pipeline.blocker is not blocker
        assert pipeline.blocker.engine == "sparse"
        assert pipeline.blocker.tokenizer is not blocker.tokenizer, (
            "deep copy required: mutable blocker state must never be shared"
        )

    def test_timings_recorded(self, dataset):
        pipeline = ERPipeline(blocking_attribute="name")
        result = pipeline.run(dataset.left, dataset.right)
        assert set(result.seconds) == {"blocking", "features", "matching"}
        assert all(v >= 0 for v in result.seconds.values())
