"""Telemetry subsystem tests: spans, sinks, metrics, and engine instrumentation."""

import io
import json

import numpy as np
import pytest

from repro import ERPipeline, load_benchmark
from repro.api.spec import BlockingSpec, PipelineSpec, SpecError, TelemetrySpec
from repro.features import jw_cache_info
from repro.obs import (
    InMemorySink,
    MetricsRegistry,
    RunCollector,
    Span,
    StderrSink,
    add_counter,
    collect_run,
    collector_scope,
    configure_telemetry,
    current_span,
    get_metrics,
    histogram_of,
    observe,
    reset_metrics,
    set_gauge,
    span,
    span_tree,
    telemetry_active,
)


@pytest.fixture(autouse=True)
def telemetry_off():
    """Every test starts and ends with telemetry disabled and metrics clean."""
    configure_telemetry(None)
    reset_metrics()
    yield
    configure_telemetry(None)
    reset_metrics()


@pytest.fixture(scope="module")
def dataset():
    return load_benchmark("rest_fz", scale="tiny", seed=2)


class TestNoOpFastPath:
    def test_inactive_span_retains_nothing(self):
        assert not telemetry_active()
        with span("outer", foo=1) as sp:
            sp.set(bar=2)  # dropped, no record exists
            with span("inner"):
                assert current_span() is None
        assert sp.seconds >= 0.0
        assert not hasattr(sp, "attributes")

    def test_inactive_run_yields_no_collector(self):
        with collect_run("resolve") as col:
            assert col is None

    def test_inactive_metric_emits_are_dropped(self):
        add_counter("x", 5)
        set_gauge("y", 1.0)
        observe("z", [0.5])
        snapshot = get_metrics().snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_untraced_pipeline_run_retains_zero_spans(self, dataset):
        result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        assert result.telemetry is not None
        assert result.telemetry.traced is False
        assert result.telemetry.spans == []
        assert result.telemetry.metrics == {}
        # the legacy timing dict still carries real measured stage seconds
        assert set(result.seconds) == {"blocking", "features", "matching"}
        assert all(v > 0.0 for v in result.seconds.values())


class TestSpans:
    def test_nesting_parent_links_and_depth(self):
        sink = configure_telemetry("memory")
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id == outer.span_id
                assert inner.depth == outer.depth + 1
        assert current_span() is None
        names = [s["name"] for s in sink.spans]
        assert names == ["inner", "outer"]  # completion order: children first

    def test_attributes_and_set(self):
        sink = configure_telemetry("memory")
        with span("work", engine="batch") as sp:
            sp.set(n_pairs=7)
        record = sink.spans[0]
        assert record["attributes"] == {"engine": "batch", "n_pairs": 7}
        assert record["seconds"] >= 0.0
        assert isinstance(sp, Span)

    def test_collect_run_wraps_a_root_span(self):
        configure_telemetry("memory")
        with collect_run("resolve.incremental", batch_size=3) as col:
            assert isinstance(col, RunCollector)
            with span("candidates"):
                pass
        names = [s["name"] for s in col.spans]
        assert names == ["candidates", "resolve.incremental"]
        root = col.spans[-1]
        assert root["parent_id"] is None
        assert col.spans[0]["parent_id"] == root["span_id"]

    def test_collector_scope_is_reentrant_safe(self):
        configure_telemetry("memory")
        col = RunCollector("resolve")
        with collector_scope(col):
            with collector_scope(col):  # nested stage call, same collector
                with span("stage"):
                    pass
        assert len(col.spans) == 1  # not double-captured


class TestSinks:
    def test_jsonl_sink_writes_one_record_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_telemetry("jsonl", path=path)
        with span("a"):
            with span("b"):
                pass
        configure_telemetry(None)  # closes the file
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [rec["name"] for rec in lines] == ["b", "a"]
        assert all(rec["type"] == "span" for rec in lines)

    def test_jsonl_sink_requires_path(self):
        with pytest.raises(ValueError, match="path"):
            configure_telemetry("jsonl")

    def test_stderr_sink_pretty_prints_with_indent(self):
        stream = io.StringIO()
        configure_telemetry(StderrSink(stream))
        with span("outer"):
            with span("inner", engine="batch"):
                pass
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[trace]   inner")
        assert "engine=batch" in lines[0]
        assert lines[1].startswith("[trace] outer")

    def test_replacing_sinks_closes_the_old_one(self, tmp_path):
        sink = configure_telemetry("jsonl", path=tmp_path / "t.jsonl")
        configure_telemetry("memory")
        assert sink._handle.closed

    def test_unknown_sink_rejected(self):
        with pytest.raises(ValueError, match="unknown sink"):
            configure_telemetry("graphite")

    def test_in_memory_sink_helpers(self):
        sink = configure_telemetry("memory")
        with span("a"):
            pass
        with span("b"):
            pass
        assert isinstance(sink, InMemorySink)
        assert len(sink.by_name("a")) == 1
        sink.clear()
        assert sink.spans == []


class TestMetrics:
    def test_counters_gauges_histograms(self):
        configure_telemetry("memory")
        add_counter("pairs", 5)
        add_counter("pairs", 2)
        set_gauge("cache.hits", 9)
        observe("gamma", [0.05, 0.95, 0.95])
        snap = get_metrics().snapshot()
        assert snap["counters"]["pairs"] == 7
        assert snap["gauges"]["cache.hits"] == 9
        hist = snap["histograms"]["gamma"]
        assert hist["count"] == 3
        assert sum(hist["counts"]) == 3

    def test_collector_mirrors_global_registry(self):
        configure_telemetry("memory")
        col = RunCollector("resolve")
        with collector_scope(col):
            add_counter("inside", 1)
        add_counter("outside", 1)
        assert col.registry.snapshot()["counters"] == {"inside": 1}
        assert get_metrics().snapshot()["counters"] == {"inside": 1, "outside": 1}

    def test_histogram_of_clips_and_drops_nan(self):
        hist = histogram_of([np.nan, -0.5, 0.5, 1.5])
        assert hist["count"] == 3  # NaN dropped, out-of-range clipped into edge bins
        assert sum(hist["counts"]) == 3

    def test_registry_reset(self):
        reg = MetricsRegistry()
        reg.counter_add("a", 1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestEngineInstrumentation:
    def test_traced_session_produces_nested_stage_spans(self, dataset):
        configure_telemetry("memory")
        session = ERPipeline(blocking_attribute="name").session(
            dataset.left, dataset.right
        )
        result = session.run()
        spans = result.telemetry.spans
        names = {s["name"] for s in spans}
        assert {"resolve", "blocking", "features", "matching", "em.fit"} <= names
        roots = span_tree(spans)
        assert [r["name"] for r in roots] == ["resolve"]
        stage_names = [c["name"] for c in roots[0]["children"]]
        assert stage_names == ["blocking", "features", "matching"]

    def test_staged_calls_share_one_session_trace(self, dataset):
        configure_telemetry("memory")
        session = ERPipeline(blocking_attribute="name").session(
            dataset.left, dataset.right
        )
        session.block()
        session.featurize()
        matches = session.match()
        spans = matches.result.telemetry.spans
        names = [s["name"] for s in spans]
        assert names.count("blocking") == 1
        assert names.count("features") == 1
        assert names.count("matching") == 1
        # without run()'s root span each stage is a root of its own
        assert [r["name"] for r in span_tree(spans)] == [
            "blocking",
            "features",
            "matching",
        ]

    def test_counter_parity_between_feature_engines(self, dataset):
        counters = {}
        for engine in ("batch", "per-pair"):
            configure_telemetry("memory")
            reset_metrics()
            result = ERPipeline(
                blocking_attribute="name", feature_engine=engine
            ).run(dataset.left, dataset.right)
            counters[engine] = result.telemetry.metrics["counters"]
            configure_telemetry(None)
        keys = (
            "blocking.candidate_pairs",
            "features.pairs_scored",
            "matching.pairs_scored",
            "matching.matches",
        )
        for key in keys:
            assert counters["batch"][key] == counters["per-pair"][key], key

    def test_per_feature_kernel_spans_and_gauges(self, dataset):
        sink = configure_telemetry("memory")
        result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        feature_spans = [
            s for s in sink.spans if s["name"].startswith("features.")
            and s["name"] not in ("features.fit", "features.transform")
        ]
        assert len(feature_spans) >= len(result.feature_names)
        gauges = result.telemetry.metrics["gauges"]
        kernel_gauges = [k for k in gauges if k.startswith("features.kernel_seconds.")]
        assert sorted(k.split(".", 2)[2] for k in kernel_gauges) == sorted(
            result.feature_names
        )

    def test_jw_cache_statistics_surface(self, dataset):
        info = jw_cache_info()
        assert set(info) == {"hits", "misses", "maxsize", "currsize"}
        configure_telemetry("memory")
        result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        gauges = result.telemetry.metrics["gauges"]
        assert "features.jw_cache.hits" in gauges
        assert "features.jw_cache.misses" in gauges
        assert gauges["features.jw_cache.currsize"] >= 0

    def test_em_metrics_in_traced_run(self, dataset):
        configure_telemetry("memory")
        result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        metrics = result.telemetry.metrics
        assert metrics["counters"]["em.iterations"] >= 1
        assert "em.log_likelihood.F" in metrics["gauges"]
        assert "em.match_probability" in metrics["histograms"]
        em = result.telemetry.em
        assert em["n_iterations"] == len(em["log_likelihoods"])
        assert len(em["match_probability_histograms"]) == em["n_iterations"]

    def test_zero_candidate_resolver_timings_are_measured(self, dataset):
        # satellite: empty batches must carry real span-measured timings,
        # not fabricated zeros
        pipeline = ERPipeline(blocking_attribute="name")
        merged, _ = dataset.as_dedup()
        pipeline.run(merged)
        resolver = pipeline.freeze()
        result = resolver.resolve(
            [{"id": "zz-no-tokens-1", "name": "", "addr": "", "city": "", "phone": "",
              "type": "", "cuisine": ""}][:1]
        )
        assert result.pairs == []
        assert set(result.seconds) == {"candidates", "features", "scoring"}
        assert all(v > 0.0 for v in result.seconds.values())

    def test_traced_incremental_resolve(self, dataset):
        pipeline = ERPipeline(blocking_attribute="name")
        merged, _ = dataset.as_dedup()
        pipeline.run(merged)
        resolver = pipeline.freeze()
        configure_telemetry("memory")
        record = dict(next(iter(merged)))
        record["id"] = "fresh-record-1"
        result = resolver.resolve([record])
        telemetry = result.telemetry
        assert telemetry.traced is True
        names = [s["name"] for s in telemetry.spans]
        assert names[-1] == "resolve.incremental"
        assert {"candidates", "features", "scoring"} <= set(names)
        counters = telemetry.metrics["counters"]
        assert counters["resolve.records"] == 1
        assert counters["resolve.candidate_pairs"] == len(result.pairs)


class TestTelemetrySpec:
    def test_defaults_and_round_trip(self):
        spec = TelemetrySpec()
        assert spec.sink == "none"
        assert not spec.enabled
        assert TelemetrySpec.from_dict(spec.to_dict()) == spec

    def test_jsonl_requires_path(self):
        with pytest.raises(SpecError, match="path"):
            TelemetrySpec(sink="jsonl")

    def test_path_invalid_for_other_sinks(self):
        with pytest.raises(SpecError, match="path"):
            TelemetrySpec(sink="memory", path="x.jsonl")

    def test_unknown_sink_rejected(self):
        with pytest.raises(SpecError, match="sink"):
            TelemetrySpec(sink="graphite")

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            TelemetrySpec.from_dict({"sink": "memory", "bogus": 1})

    def test_pipeline_spec_round_trips_telemetry(self):
        spec = PipelineSpec(
            blocking=BlockingSpec("token_overlap", {"attribute": "name"}),
            telemetry=TelemetrySpec(sink="memory"),
        )
        restored = PipelineSpec.from_dict(spec.to_dict())
        assert restored.telemetry == spec.telemetry

    def test_apply_configures_the_global_sink(self):
        sink = TelemetrySpec(sink="memory").apply()
        assert isinstance(sink, InMemorySink)
        assert telemetry_active()
        assert TelemetrySpec().apply() is None
        assert not telemetry_active()

    def test_enabled_spec_build_applies_telemetry(self, dataset):
        spec = PipelineSpec(
            blocking=BlockingSpec("token_overlap", {"attribute": "name"}),
            telemetry=TelemetrySpec(sink="memory"),
        )
        pipeline = spec.build()
        assert telemetry_active()
        result = pipeline.run(dataset.left, dataset.right)
        assert result.telemetry.traced is True

    def test_default_spec_build_leaves_telemetry_alone(self):
        configure_telemetry("memory")
        PipelineSpec(
            blocking=BlockingSpec("token_overlap", {"attribute": "name"})
        ).build()
        assert telemetry_active()  # sink="none" did not tear down the config


class TestSessionIsolation:
    def test_two_runs_resolve_without_cross_talk(self, dataset):
        # two traced runs back-to-back: each result sees only its own spans
        configure_telemetry("memory")
        first = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        second = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        first_ids = {s["span_id"] for s in first.telemetry.spans}
        second_ids = {s["span_id"] for s in second.telemetry.spans}
        assert first_ids and second_ids
        assert not (first_ids & second_ids)
