"""Documentation anti-rot gates.

Three contracts keep the docs tree honest:

* ``docs/api/`` is generated from the live docstrings by
  ``tools/gen_api_reference.py`` and checked in — these tests regenerate it
  in memory and fail on drift, and fail on any docstring cross-reference
  (``:class:`` / ``:meth:`` / ...) that no longer resolves.
* ``docs/cli.md`` documents every subcommand and every flag that
  ``repro.__main__.build_parser()`` actually exposes, in both directions —
  a flag added without docs, or docs for a removed flag, fail here.
* Relative links in the hand-written docs pages point at files that exist.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

from repro.__main__ import _SUBCOMMANDS, build_parser

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


@pytest.fixture(scope="module")
def gen_api():
    """The generator tool, imported from tools/ as a module."""
    spec = importlib.util.spec_from_file_location(
        "gen_api_reference", REPO / "tools" / "gen_api_reference.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiReference:
    def test_checked_in_pages_match_the_sources(self, gen_api):
        pages, _ = gen_api.render_all()
        stale = []
        for filename, content in pages.items():
            path = DOCS / "api" / filename
            if not path.is_file():
                stale.append(f"missing: docs/api/{filename}")
            elif path.read_text(encoding="utf-8") != content:
                stale.append(f"out of date: docs/api/{filename}")
        for path in (DOCS / "api").glob("*.md"):
            if path.name not in pages:
                stale.append(f"orphaned: docs/api/{path.name}")
        assert not stale, (
            f"{stale}; regenerate with: "
            "PYTHONPATH=src python tools/gen_api_reference.py"
        )

    def test_docstring_cross_references_resolve(self, gen_api):
        _, xrefs = gen_api.render_all()
        assert xrefs, "expected the documented modules to cross-reference each other"
        broken = sorted(
            {
                (context, target)
                for context, owner, target in xrefs
                if not gen_api.resolve_xref(context, owner, target)
            }
        )
        assert not broken

    def test_every_documented_module_imports(self, gen_api):
        for module_name in gen_api.MODULES:
            assert importlib.import_module(module_name).__doc__


def _cli_sections() -> dict:
    """``{subcommand: section text}`` from docs/cli.md's ``##`` headings."""
    text = (DOCS / "cli.md").read_text(encoding="utf-8")
    sections = {}
    name = None
    for line in text.splitlines():
        if line.startswith("## "):
            name = line[3:].strip()
            sections[name] = []
        elif name is not None:
            sections[name].append(line)
    return {name: "\n".join(body) for name, body in sections.items()}


def _flags(parser) -> set:
    """All long option strings of a parser, nested subparsers included."""
    found = set()
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                found.add(option)
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            for sub in action.choices.values():
                found |= _flags(sub)
    return found


class TestCliDocs:
    def test_every_subcommand_has_a_section(self):
        missing = set(_SUBCOMMANDS) - set(_cli_sections())
        assert not missing, f"docs/cli.md lacks a '## <name>' section for {missing}"

    def test_every_section_is_a_real_subcommand(self):
        unknown = set(_cli_sections()) - set(_SUBCOMMANDS)
        assert not unknown, f"docs/cli.md documents unknown subcommands {unknown}"

    def test_every_flag_is_documented_in_its_section(self):
        parser = build_parser()
        (subparsers_action,) = [
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        ]
        sections = _cli_sections()
        undocumented = []
        for name, sub in subparsers_action.choices.items():
            for flag in _flags(sub):
                if f"`{flag}" not in sections[name] and f"{flag} " not in sections[name]:
                    undocumented.append(f"{name}: {flag}")
        assert not undocumented, f"flags missing from docs/cli.md: {undocumented}"

    def test_documented_flags_exist(self):
        parser = build_parser()
        (subparsers_action,) = [
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        ]
        stale = []
        for name, section in _cli_sections().items():
            real = _flags(subparsers_action.choices[name])
            # only the flag-table rows: prose may mention other subcommands'
            # flags (e.g. "pass the spec back via --spec" under `spec`)
            table = "\n".join(
                line for line in section.splitlines() if line.startswith("| `")
            )
            for flag in set(re.findall(r"(--[a-z][a-z-]*)", table)):
                if flag not in real:
                    stale.append(f"{name}: {flag}")
        assert not stale, f"docs/cli.md documents flags that no longer exist: {stale}"


class TestDocLinks:
    def test_relative_links_resolve(self):
        broken = []
        for page in sorted(DOCS.rglob("*.md")) + [REPO / "README.md"]:
            text = page.read_text(encoding="utf-8")
            for target in re.findall(r"\]\(([^)#]+?)(?:#[^)]*)?\)", text):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if not (page.parent / target).exists():
                    broken.append(f"{page.relative_to(REPO)}: {target}")
        assert not broken, f"broken relative links: {broken}"
