"""Tests for the unsupervised baselines (K-Means, GMM, ECM)."""

import numpy as np
import pytest

from repro.baselines import ECMClassifier, GaussianMixtureMatcher, KMeansMatcher
from repro.eval import f_score


class TestKMeans:
    def test_sk_separates_balanced_clusters(self, rng):
        X = np.vstack([rng.normal(0.2, 0.05, (100, 4)), rng.normal(0.8, 0.05, (100, 4))])
        y = np.array([0.0] * 100 + [1.0] * 100)
        pred = KMeansMatcher("sk", random_state=0).fit_predict(X)
        assert f_score(y, pred) > 0.95

    def test_match_cluster_is_high_magnitude(self, rng):
        X = np.vstack([rng.normal(0.1, 0.03, (150, 3)), rng.normal(0.9, 0.03, (20, 3))])
        model = KMeansMatcher("sk", random_state=0).fit(X)
        pred = model.predict(X)
        assert pred[-5:].all()  # the high-similarity rows are the matches
        assert not pred[:5].any()

    def test_rl_weighting_favors_minority(self, separable_mixture):
        X, y = separable_mixture
        rl = KMeansMatcher("rl", match_weight=4.0, random_state=0).fit_predict(X)
        sk = KMeansMatcher("sk", random_state=0).fit_predict(X)
        # RL assigns at least as many pairs to the match cluster
        assert rl.sum() >= sk.sum()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeansMatcher().predict(np.ones((2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeansMatcher("other")
        with pytest.raises(ValueError):
            KMeansMatcher(match_weight=0.0)

    def test_deterministic_with_seed(self, separable_mixture):
        X, _ = separable_mixture
        a = KMeansMatcher("sk", random_state=5).fit_predict(X)
        b = KMeansMatcher("sk", random_state=5).fit_predict(X)
        assert np.array_equal(a, b)

    def test_constant_data_does_not_crash(self):
        X = np.full((20, 3), 0.5)
        pred = KMeansMatcher("sk", random_state=0).fit_predict(X)
        assert pred.shape == (20,)


class TestGaussianMixtureMatcher:
    def test_separates_clusters(self, separable_mixture):
        X, y = separable_mixture
        pred = GaussianMixtureMatcher(random_state=0).fit_predict(X)
        assert f_score(y, pred) > 0.85

    def test_scores_stored(self, separable_mixture):
        X, _ = separable_mixture
        model = GaussianMixtureMatcher(random_state=0)
        model.fit_predict(X)
        assert model.match_scores_.shape == (X.shape[0],)

    def test_accepts_nan(self, separable_mixture):
        X, y = separable_mixture
        X = X.copy()
        X[::9, 1] = np.nan
        pred = GaussianMixtureMatcher(random_state=0).fit_predict(X)
        assert f_score(y, pred) > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixtureMatcher(reg_covar=-1.0)


class TestECM:
    def test_strong_agreement_pattern_learned(self, rng):
        # matches agree on all 5 features, unmatches agree on ~1
        n_match, n_unmatch = 40, 400
        X_match = rng.uniform(0.85, 1.0, (n_match, 5))
        X_unmatch = rng.uniform(0.0, 0.4, (n_unmatch, 5))
        X_unmatch[:, 0] = rng.uniform(0.85, 1.0, n_unmatch)  # one noisy feature
        X = np.vstack([X_match, X_unmatch])
        y = np.array([1.0] * n_match + [0.0] * n_unmatch)
        model = ECMClassifier()
        pred = model.fit_predict(X)
        assert f_score(y, pred) > 0.9
        # m probability for agreeing features must exceed u probability
        assert np.all(model.m_[1:] > model.u_[1:])

    def test_prior_learned_roughly(self, rng):
        X = np.vstack([rng.uniform(0.9, 1.0, (30, 4)), rng.uniform(0.0, 0.3, (270, 4))])
        model = ECMClassifier()
        model.fit_predict(X)
        assert 0.02 < model.prior_ < 0.3

    def test_binarization_threshold_matters(self, rng):
        X = np.vstack([rng.uniform(0.55, 0.7, (30, 4)), rng.uniform(0.0, 0.3, (270, 4))])
        # matches sit at ~0.6 similarity: a 0.8 binarization erases them
        high = ECMClassifier(binarize_threshold=0.95)
        pred_high = high.fit_predict(X)
        low = ECMClassifier(binarize_threshold=0.5)
        pred_low = low.fit_predict(X)
        y = np.array([1.0] * 30 + [0.0] * 270)
        assert f_score(y, pred_low) > f_score(y, pred_high)

    def test_scores_in_range(self, separable_mixture):
        X, _ = separable_mixture
        model = ECMClassifier()
        model.fit_predict(X)
        assert np.all((model.match_scores_ >= 0) & (model.match_scores_ <= 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            ECMClassifier(binarize_threshold=1.5)
        with pytest.raises(ValueError):
            ECMClassifier(init_prior=0.0)
