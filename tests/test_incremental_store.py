"""Tests for the persistent entity store (union-find cluster registry)."""

import pytest

from repro.incremental.store import EntityStore


def _store_with(n: int) -> EntityStore:
    store = EntityStore()
    store.add_records({"id": f"r{i}", "name": f"record {i}"} for i in range(n))
    return store


class TestEntityStore:
    def test_add_assigns_singleton_entities(self):
        store = _store_with(3)
        assert len(store) == 3
        assert store.n_entities == 3
        assert store.entity_of("r0") != store.entity_of("r1")

    def test_duplicate_add_raises(self):
        store = _store_with(1)
        with pytest.raises(ValueError, match="already in the store"):
            store.add({"id": "r0"})

    def test_merge_is_transitive(self):
        store = _store_with(4)
        store.merge("r0", "r1")
        store.merge("r1", "r2")
        assert store.entity_of("r0") == store.entity_of("r2")
        assert store.n_entities == 2
        assert frozenset(["r0", "r1", "r2"]) in store.clusters()

    def test_entity_ids_are_stable_under_merges(self):
        """A merge keeps the older entity id, so ids never churn."""
        store = _store_with(5)
        first = store.entity_of("r0")
        store.merge("r3", "r4")       # young pair merges under r3's id
        assert store.merge("r0", "r3") == first
        assert store.entity_of("r4") == first

    def test_merge_already_same_cluster_is_noop(self):
        store = _store_with(2)
        eid = store.merge("r0", "r1")
        assert store.merge("r1", "r0") == eid
        assert store.n_entities == 1

    def test_members_and_entities(self):
        store = _store_with(3)
        store.merge("r0", "r2")
        entities = store.entities()
        eid = store.entity_of("r0")
        assert entities[eid] == ["r0", "r2"]
        assert store.members(eid) == ["r0", "r2"]
        assert store.members("e999") == []

    def test_get_and_records_round_trip(self):
        store = _store_with(2)
        assert store.get("r1")["name"] == "record 1"
        with pytest.raises(KeyError):
            store.get("missing")
        assert [r["id"] for r in store.records()] == ["r0", "r1"]
        assert "r0" in store and "zz" not in store

    def test_state_round_trip_preserves_entity_ids(self):
        store = _store_with(6)
        store.merge("r0", "r3")
        store.merge("r4", "r5")
        store.merge("r1", "r4")
        rebuilt = EntityStore.from_state(store.to_state())
        assert rebuilt.entities() == store.entities()
        assert len(rebuilt) == len(store)
        for rid in ("r0", "r1", "r2", "r5"):
            assert rebuilt.entity_of(rid) == store.entity_of(rid)
        # the rebuilt store keeps accepting new records and merges
        rebuilt.add({"id": "r6", "name": "record 6"})
        assert rebuilt.merge("r6", "r0") == store.entity_of("r0")

    def test_state_is_json_serializable(self):
        import json

        store = _store_with(3)
        store.merge("r0", "r1")
        rebuilt = EntityStore.from_state(json.loads(json.dumps(store.to_state())))
        assert rebuilt.entities() == store.entities()
