"""Tests for repro.data.table."""

import numpy as np
import pytest

from repro.data.table import Table


class TestConstruction:
    def test_basic(self, people_table):
        assert len(people_table) == 5
        assert people_table.attributes == ["name", "city", "age"]

    def test_missing_attributes_default_none(self):
        t = Table([{"id": 1, "a": "x"}, {"id": 2}], attributes=["a"])
        assert t.get(2)["a"] is None

    def test_attribute_order_inferred_from_first_record(self):
        t = Table([{"id": 1, "b": 2, "a": 1}])
        assert t.attributes == ["b", "a"]

    def test_rejects_missing_id(self):
        with pytest.raises(ValueError, match="missing the id"):
            Table([{"name": "x"}])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table([{"id": 1}, {"id": 1}])

    def test_custom_id_attribute(self):
        t = Table([{"key": "k1", "v": 2}], id_attr="key")
        assert t.get("k1")["v"] == 2

    def test_empty_table(self):
        t = Table([], attributes=["a"])
        assert len(t) == 0
        assert t.ids() == []


class TestAccess:
    def test_ids_in_row_order(self, people_table):
        assert people_table.ids() == ["a", "b", "c", "d", "e"]

    def test_get_by_id(self, people_table):
        assert people_table.get("c")["name"] == "bob dylan"

    def test_get_unknown_raises(self, people_table):
        with pytest.raises(KeyError):
            people_table.get("zzz")

    def test_contains(self, people_table):
        assert "a" in people_table
        assert "zzz" not in people_table

    def test_column(self, people_table):
        assert people_table.column("city")[:2] == ["chicago", "chicago"]

    def test_column_unknown_raises(self, people_table):
        with pytest.raises(KeyError):
            people_table.column("height")

    def test_iteration_and_indexing(self, people_table):
        assert people_table[0]["id"] == "a"
        assert [r["id"] for r in people_table] == people_table.ids()


class TestRelationalOps:
    def test_select(self, people_table):
        chicago = people_table.select(lambda r: r["city"] == "chicago")
        assert chicago.ids() == ["a", "b"]

    def test_select_preserves_attributes(self, people_table):
        out = people_table.select(lambda r: True)
        assert out.attributes == people_table.attributes

    def test_project(self, people_table):
        out = people_table.project(["name"])
        assert out.attributes == ["name"]
        assert "city" not in out[0]

    def test_project_unknown_raises(self, people_table):
        with pytest.raises(KeyError):
            people_table.project(["height"])

    def test_head(self, people_table):
        assert people_table.head(2).ids() == ["a", "b"]

    def test_head_beyond_length(self, people_table):
        assert len(people_table.head(100)) == 5

    def test_sample_deterministic(self, people_table):
        rng = np.random.default_rng(0)
        s1 = people_table.sample(3, rng)
        s2 = people_table.sample(3, np.random.default_rng(0))
        assert s1.ids() == s2.ids()
        assert len(s1) == 3

    def test_sample_too_many_raises(self, people_table):
        with pytest.raises(ValueError, match="cannot sample"):
            people_table.sample(10, np.random.default_rng(0))

    def test_with_column_adds(self, people_table):
        out = people_table.with_column("flag", [1, 2, 3, 4, 5])
        assert out.column("flag") == [1, 2, 3, 4, 5]
        assert people_table.attributes == ["name", "city", "age"]  # original untouched

    def test_with_column_replaces(self, people_table):
        out = people_table.with_column("age", [1, 1, 1, 1, 1])
        assert out.column("age") == [1, 1, 1, 1, 1]
        assert out.attributes == people_table.attributes

    def test_with_column_length_mismatch(self, people_table):
        with pytest.raises(ValueError, match="values for"):
            people_table.with_column("flag", [1])

    def test_equality(self, people_table):
        same = Table(list(people_table), attributes=people_table.attributes)
        assert same == people_table
        assert people_table != people_table.head(2)
