"""Service chaos harness: overload, deadlines, drain, and injected faults.

These tests drive a real :class:`~repro.serve.app.ServeApp` over real
sockets while the fault-injection layer (installed process-wide with
:func:`~repro.reliability.faultinject.inject_global`, because the server's
event loop and writer thread never see a test's contextvars) arms the
serve failpoints: slow or failing engine passes (``serve.engine.pass``),
writer-thread stalls (``serve.writer.job``), reload failures
(``serve.reload``), and socket resets mid-response
(``serve.http.write_response``).

The invariants, stated once and checked throughout:

* **no silent drops** — every request the client managed to send gets an
  HTTP response with a typed status (200, or 503/504/429 with a ``reason``),
  or a visibly dead socket; never a hang;
* **never a third state** — a record id is in the store iff its request
  was answered 200 (or its response was cut after execution by an injected
  socket reset); shed and expired requests leave no trace;
* **bounded latency while shedding** — read endpoints (``/healthz``,
  ``/metrics``) answer fast even while the writer thread is wedged inside
  a long engine pass;
* **drain is graceful** — after SIGTERM / ``POST /admin/drain``, in-flight
  requests finish, new resolves shed with typed 503s, ``/healthz`` reports
  ``draining``, and the process exits within the drain budget.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

import pytest

import repro
from repro import ERPipeline
from repro.data.table import Table
from repro.reliability.faultinject import FaultInjector, SimulatedCrash, inject_global
from repro.serve import BackgroundServer, ServeApp

_SUFFIXES = ("grill", "bistro", "cafe", "diner", "tavern", "kitchen")
_WORDS = (
    "harbor", "maple", "sunset", "copper", "willow", "granite",
    "juniper", "crimson", "meadow", "ivory", "cobalt", "timber",
    "velvet", "orchid", "saffron", "lagoon", "ember", "prairie",
)
_CITIES = ("oakland", "berkeley", "alameda")


def _record(entity: int, variant: str) -> dict:
    suffix = _SUFFIXES[entity % len(_SUFFIXES)]
    name = f"{_WORDS[entity % len(_WORDS)]} {_WORDS[(entity + 7) % len(_WORDS)]} {suffix}"
    return {
        "id": f"{variant}{entity}",
        "name": name,
        "city": _CITIES[entity % len(_CITIES)],
        "phone": f"555-01{entity % 100:02d}",
    }


def _call(base_url: str, path: str, method: str = "GET", body=None, headers=None,
          timeout: float = 30.0):
    """One HTTP exchange; returns ``(status, parsed_json, headers)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = Request(base_url + path, data=data, method=method,
                      headers=dict(headers or {}))
    try:
        with urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@pytest.fixture(scope="module")
def artifact_template(tmp_path_factory):
    """Fit once on the a/b variants and freeze to a versioned artifact dir."""
    initial = [_record(e, v) for e in range(18) for v in ("a", "b")]
    table = Table(initial, attributes=["name", "city", "phone"])
    pipeline = ERPipeline(blocking_attribute="name")
    pipeline.run(table)
    path = tmp_path_factory.mktemp("chaos-template") / "artifacts"
    pipeline.freeze().save(path)
    return path


@pytest.fixture
def artifacts(artifact_template, tmp_path):
    dst = tmp_path / "artifacts"
    shutil.copytree(artifact_template, dst)
    return dst


def _resolve_from_thread(base_url, rid, results, *, headers=None, variant="c"):
    """One client: resolve one record, record (rid, status, body) or the error."""
    record = _record(int(rid[1:]) % 18, rid[0])
    record["id"] = rid
    try:
        status, body, _ = _call(
            base_url, "/resolve", "POST", {"records": [record]}, headers=headers
        )
        results.append((rid, status, body))
    except (URLError, ConnectionError, socket.timeout, TimeoutError) as exc:
        results.append((rid, None, repr(exc)))


class TestOverloadShedding:
    def test_queue_overflow_sheds_typed_503_with_retry_after(self, artifacts):
        """Flood a tiny queue behind a slow engine: sheds are 503 + Retry-After."""
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=0.3, times=None
        )
        app = ServeApp(
            artifacts, port=0, max_wait_ms=0.0, max_batch=1, max_queue=2
        )
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            threads = [
                threading.Thread(
                    target=_resolve_from_thread,
                    args=(server.base_url, f"c{i}", results),
                )
                for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads), "a client hung"

            assert len(results) == 16, "a request was silently dropped"
            ok = [r for r in results if r[1] == 200]
            shed = [r for r in results if r[1] == 503]
            assert len(ok) + len(shed) == 16
            assert ok, "nothing got through at all"
            assert shed, "a 2-deep queue absorbed 16 concurrent slow resolves"
            for _rid, _status, body in shed:
                assert body["reason"] in ("queue_full", "inflight_records")

            # shed responses carry the backoff hint
            status, _body, headers = _call(server.base_url, "/metrics")
            assert status == 200
            metrics = _body["metrics"]["counters"]
            assert metrics["serve.shed_total"] == len(shed)

            # never a third state: resolved ids are in the store, shed ids
            # are not — checked through the same server
            for rid, status, _body in results:
                lookup_status, _, _ = _call(server.base_url, f"/lookup/{rid}")
                assert lookup_status == (200 if status == 200 else 404)

    def test_shed_response_carries_retry_after_header(self, artifacts):
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=0.5, times=None
        )
        app = ServeApp(
            artifacts, port=0, max_wait_ms=0.0, max_batch=1, max_queue=1
        )
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            threads = [
                threading.Thread(
                    target=_resolve_from_thread,
                    args=(server.base_url, f"c{i}", results),
                )
                for i in range(6)
            ]
            for t in threads:
                t.start()
            # overload is in flight; this request must shed with the header
            deadline = time.monotonic() + 10
            saw_header = False
            while time.monotonic() < deadline and not saw_header:
                record = _record(17, "d")
                request = Request(
                    server.base_url + "/resolve",
                    data=json.dumps({"records": [record]}).encode(),
                    method="POST",
                )
                try:
                    with urlopen(request, timeout=30):
                        pass
                except HTTPError as exc:
                    if exc.code == 503:
                        assert exc.headers["Retry-After"] is not None
                        saw_header = True
                    exc.read()
            for t in threads:
                t.join(timeout=60)
            assert saw_header, "never observed a 503 shed despite overload"

    def test_per_connection_rate_limit_answers_429(self, artifacts):
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0, conn_rate_limit=2.0)
        with BackgroundServer(app) as server:
            # one keep-alive connection, hand-rolled so every request rides
            # the same socket (urllib opens a fresh connection per request)
            host, port = server.base_url.removeprefix("http://").split(":")
            statuses = []
            with socket.create_connection((host, int(port)), timeout=30) as sock:
                f = sock.makefile("rwb")
                for i in range(8):
                    payload = json.dumps(
                        {"records": [dict(_record(i, "r"), id=f"r{i}")]}
                    ).encode()
                    f.write(
                        b"POST /resolve HTTP/1.1\r\n"
                        b"Host: x\r\nContent-Type: application/json\r\n"
                        + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                        + payload
                    )
                    f.flush()
                    status_line = f.readline().decode()
                    statuses.append(int(status_line.split()[1]))
                    length = 0
                    while True:
                        line = f.readline()
                        if line in (b"\r\n", b""):
                            break
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":")[1])
                    f.read(length)
            assert 429 in statuses, f"burst of 8 never hit the 2 rps limit: {statuses}"
            assert statuses[0] == 200, "the first request must be admitted"


class TestDeadlines:
    def test_request_expired_in_queue_gets_504_and_no_store_mutation(self, artifacts):
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=0.5, times=None
        )
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0, max_batch=1)
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            # a blocker pinning the writer + a doomed request with a budget
            # far shorter than the blocker's injected 500ms pass
            blocker = threading.Thread(
                target=_resolve_from_thread, args=(server.base_url, "c0", results)
            )
            blocker.start()
            time.sleep(0.15)  # blocker is inside the slow engine pass
            doomed = threading.Thread(
                target=_resolve_from_thread,
                args=(server.base_url, "c1", results),
                kwargs={"headers": {"X-Request-Deadline-Ms": "100"}},
            )
            doomed.start()
            blocker.join(timeout=60)
            doomed.join(timeout=60)

            by_rid = {rid: (status, body) for rid, status, body in results}
            assert by_rid["c0"][0] == 200
            status, body = by_rid["c1"]
            assert status == 504
            assert body["reason"] == "deadline"
            # the expired request never reached the engine
            assert _call(server.base_url, "/lookup/c1")[0] == 404
            assert _call(server.base_url, "/lookup/c0")[0] == 200

    def test_server_default_deadline_applies_without_header(self, artifacts):
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=0.5, times=None
        )
        app = ServeApp(
            artifacts, port=0, max_wait_ms=0.0, max_batch=1, default_deadline_ms=100.0
        )
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            blocker = threading.Thread(
                target=_resolve_from_thread, args=(server.base_url, "c0", results)
            )
            blocker.start()
            time.sleep(0.15)
            doomed = threading.Thread(
                target=_resolve_from_thread, args=(server.base_url, "c1", results)
            )
            doomed.start()
            blocker.join(timeout=60)
            doomed.join(timeout=60)
            by_rid = {rid: status for rid, status, _ in results}
            assert by_rid == {"c0": 200, "c1": 504}

    def test_garbled_deadline_header_is_400(self, artifacts):
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0)
        with BackgroundServer(app) as server:
            status, body, _ = _call(
                server.base_url,
                "/resolve",
                "POST",
                {"records": [_record(0, "x")]},
                headers={"X-Request-Deadline-Ms": "soon"},
            )
            assert status == 400
            assert "X-Request-Deadline-Ms".lower() in body["error"].lower()


class TestReadPathStaysLive:
    def test_healthz_and_metrics_answer_while_writer_is_wedged(self, artifacts):
        """Satellite invariant: a long engine pass never blocks the read path."""
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=1.5, times=None
        )
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0)
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            wedged = threading.Thread(
                target=_resolve_from_thread, args=(server.base_url, "c0", results)
            )
            wedged.start()
            time.sleep(0.2)  # the writer thread is now sleeping in the pass
            for path in ("/healthz", "/metrics", "/lookup/a0", "/"):
                t0 = time.monotonic()
                status, _body, _ = _call(server.base_url, path, timeout=5)
                elapsed = time.monotonic() - t0
                assert status == 200, f"{path} -> {status} while writer busy"
                assert elapsed < 1.0, f"{path} took {elapsed:.2f}s behind the writer"
            wedged.join(timeout=60)
            assert results and results[0][1] == 200


class TestInjectedFaults:
    def test_engine_crash_fails_batch_but_not_store_or_server(self, artifacts):
        injector = FaultInjector().arm("serve.engine.pass", exc=SimulatedCrash)
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0)
        with inject_global(injector), BackgroundServer(app) as server:
            status, body, _ = _call(
                server.base_url, "/resolve", "POST",
                {"records": [dict(_record(0, "c"), id="c0")]},
            )
            assert status == 500
            # the crash fired before resolver.resolve: old state, no third one
            assert _call(server.base_url, "/lookup/c0")[0] == 404
            # the arm is exhausted; the very next resolve succeeds
            status, _body, _ = _call(
                server.base_url, "/resolve", "POST",
                {"records": [dict(_record(0, "c"), id="c0")]},
            )
            assert status == 200
            assert _call(server.base_url, "/lookup/c0")[0] == 200

    def test_socket_reset_mid_response_does_not_poison_server(self, artifacts):
        injector = FaultInjector().arm(
            "serve.http.write_response", exc=ConnectionResetError
        )
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0)
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            _resolve_from_thread(server.base_url, "c0", results)
            rid, status, detail = results[0]
            # this client's socket died before the response flushed
            assert status is None, f"expected a dead socket, got {status}"
            # but the request executed (the reset hit on the way out), the
            # store is consistent, and the server keeps serving everyone else
            assert _call(server.base_url, "/lookup/c0")[0] == 200
            assert _call(server.base_url, "/healthz")[0] == 200
            status, _body, _ = _call(
                server.base_url, "/resolve", "POST",
                {"records": [dict(_record(1, "c"), id="c1")]},
            )
            assert status == 200

    def test_writer_stall_during_save_answers_typed_500(self, artifacts):
        injector = FaultInjector().arm("serve.writer.job", exc=SimulatedCrash)
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0)
        with inject_global(injector), BackgroundServer(app) as server:
            status, body, _ = _call(server.base_url, "/admin/save", "POST")
            assert status == 500
            assert "SimulatedCrash" in body["error"]
            # the writer thread survives for the next serialized job
            status, _body, _ = _call(server.base_url, "/admin/save", "POST")
            assert status == 200


class TestGracefulDrain:
    def test_admin_drain_finishes_inflight_sheds_new_and_exits(self, artifacts):
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=0.8, times=None
        )
        app = ServeApp(
            artifacts, port=0, max_wait_ms=0.0, max_batch=1, drain_timeout_s=30.0
        )
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            inflight = [
                threading.Thread(
                    target=_resolve_from_thread,
                    args=(server.base_url, f"c{i}", results),
                )
                for i in range(3)
            ]
            for t in inflight:
                t.start()
            time.sleep(0.2)  # the first is executing, the rest are queued

            status, body, _ = _call(server.base_url, "/admin/drain", "POST")
            assert status == 200
            assert body["draining"] is True

            # healthz flips to draining (503) while in-flight work finishes
            status, body, _ = _call(server.base_url, "/healthz")
            assert status == 503
            assert body["status"] == "draining"

            # new resolves shed with the typed reason
            status, body, _ = _call(
                server.base_url, "/resolve", "POST",
                {"records": [dict(_record(9, "z"), id="z9")]},
            )
            assert status == 503
            assert body["reason"] == "draining"

            # reload during drain is refused, not wedged
            status, _body, _ = _call(server.base_url, "/admin/reload", "POST")
            assert status == 503

            # zero failed in-flight: everything admitted before the drain
            # completes with 200
            for t in inflight:
                t.join(timeout=60)
            assert sorted(r[1] for r in results) == [200, 200, 200]

            # and the server then exits on its own (drain completed)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    _call(server.base_url, "/healthz", timeout=2)
                except (URLError, ConnectionError, socket.timeout, TimeoutError):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("server kept listening after drain completed")
        assert app.drained_clean is True

    def test_drain_is_idempotent(self, artifacts):
        app = ServeApp(artifacts, port=0, max_wait_ms=0.0, drain_timeout_s=30.0)
        with BackgroundServer(app) as server:
            first, _, _ = _call(server.base_url, "/admin/drain", "POST")
            assert first == 200
            try:
                status, body, _ = _call(server.base_url, "/admin/drain", "POST")
            except (URLError, ConnectionError):
                return  # already fully drained and gone: acceptable
            assert status == 200
            assert body.get("already_draining", False) or body["draining"]

    def test_drain_budget_forces_a_wedged_writer(self, artifacts):
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=20.0, times=None
        )
        app = ServeApp(
            artifacts, port=0, max_wait_ms=0.0, max_batch=1, drain_timeout_s=0.5
        )
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            wedged = threading.Thread(
                target=_resolve_from_thread, args=(server.base_url, "c0", results)
            )
            wedged.start()
            time.sleep(0.2)
            t0 = time.monotonic()
            status, _body, _ = _call(server.base_url, "/admin/drain", "POST")
            assert status == 200
            wedged.join(timeout=30)
            elapsed = time.monotonic() - t0
            assert elapsed < 15.0, f"forced drain took {elapsed:.1f}s"
            # the wedged request got a typed answer (503 via BatcherClosed
            # mapping), or its socket was cut — never silence
            assert results, "the wedged client never returned"
        assert app.drained_clean is False


class TestChaosSwarm:
    def test_32_clients_with_armed_failpoints_leave_consistent_state(self, artifacts):
        """The headline invariant run: 32 concurrent clients, slow passes,
        a tiny queue, tight deadlines on some requests — every request is
        answered, and the store matches the answers exactly."""
        injector = FaultInjector().arm(
            "serve.engine.pass", exc=None, delay_s=0.05, times=None
        )
        app = ServeApp(
            artifacts,
            port=0,
            max_wait_ms=5.0,
            max_batch=4,
            max_queue=8,
            drain_timeout_s=30.0,
        )
        with inject_global(injector), BackgroundServer(app) as server:
            results: list = []
            threads = []
            for i in range(32):
                headers = {"X-Request-Deadline-Ms": "120"} if i % 4 == 0 else None
                threads.append(
                    threading.Thread(
                        target=_resolve_from_thread,
                        args=(server.base_url, f"s{i}", results),
                        kwargs={"headers": headers},
                    )
                )
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads), "a client hung"

            # invariant 1: no silent drops — 32 in, 32 answered
            assert len(results) == 32
            allowed = {200, 503, 504}
            by_rid = {}
            for rid, status, body in results:
                assert status in allowed, f"{rid}: unexpected {status}: {body}"
                if status in (503, 504):
                    assert body["reason"] in (
                        "queue_full", "inflight_records", "deadline", "draining"
                    )
                by_rid[rid] = status

            # invariant 2: the store is exactly the set of 200s — shed and
            # expired requests left no trace (never a third state)
            for rid, status in by_rid.items():
                lookup, _, _ = _call(server.base_url, f"/lookup/{rid}")
                assert lookup == (200 if status == 200 else 404), (
                    f"{rid} answered {status} but lookup says {lookup}"
                )

            # invariant 3: the shed accounting matches the responses
            _status, metrics_body, _ = _call(server.base_url, "/metrics")
            counters = metrics_body["metrics"]["counters"]
            n_shed = sum(1 for s in by_rid.values() if s in (503, 504))
            assert counters.get("serve.shed_total", 0) == n_shed


class TestSigterm:
    def test_sigterm_drains_and_exits_cleanly(self, artifacts):
        """The full CLI process: SIGTERM → drain banner → exit 0 in budget."""
        src_root = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--artifacts", str(artifacts),
                "--port", "0",
                "--drain-timeout", "10",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving" in banner and "http://" in banner, banner
            base_url = next(
                tok for tok in banner.split() if tok.startswith("http://")
            )
            status, _body, _ = _call(base_url, "/healthz", timeout=10)
            assert status == 200

            t0 = time.monotonic()
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            elapsed = time.monotonic() - t0
            assert proc.returncode == 0, f"exit {proc.returncode}: {out}"
            assert elapsed < 15.0, f"drain took {elapsed:.1f}s against a 10s budget"
            assert "draining" in out
            assert "drained (clean)" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
