"""Failure-injection tests: hostile inputs a production ER system survives.

Each test feeds a pathological-but-plausible input through a public API and
asserts either a clean error or a sane (finite, bounded) result — never a
crash deep inside numpy or a silent NaN.
"""

import numpy as np
import pytest

from repro import FeatureGenerator, Table, ZeroER, ZeroERError
from repro.blocking import TokenOverlapBlocker
from repro.core.exceptions import InitializationError
from repro.text.similarity import jaccard, levenshtein_similarity


class TestHostileFeatureMatrices:
    def test_all_nan_column_survives(self, separable_mixture):
        X, _ = separable_mixture
        X = np.column_stack([X, np.full(X.shape[0], np.nan)])
        model = ZeroER(transitivity=False).fit(X)
        assert np.all(np.isfinite(model.match_scores_))

    def test_constant_matrix_fails_cleanly(self):
        X = np.full((50, 4), 0.7)
        with pytest.raises(ZeroERError):
            ZeroER(transitivity=False).fit(X)

    def test_single_distinct_match_row(self, rng):
        X = np.vstack([rng.normal(0.1, 0.02, (99, 4)), [[0.95] * 4]])
        X = np.clip(X, 0, 1)
        model = ZeroER(transitivity=False).fit(X)
        assert np.all(np.isfinite(model.match_scores_))

    def test_two_rows_minimum(self):
        X = np.array([[0.9, 0.9], [0.1, 0.1]])
        try:
            model = ZeroER(transitivity=False).fit(X)
            assert np.all(np.isfinite(model.match_scores_))
        except ZeroERError:
            pass  # clean refusal is also acceptable at n=2

    def test_huge_magnitude_features_rejected_or_normalized(self, separable_mixture):
        X, _ = separable_mixture
        X = X.copy() * 1e9  # unnormalized input; min–max scaling must absorb it
        model = ZeroER(transitivity=False).fit(X)
        assert np.all(np.isfinite(model.match_scores_))

    def test_inf_rejected(self, separable_mixture):
        X, _ = separable_mixture
        X = X.copy()
        X[0, 0] = np.inf
        with pytest.raises(ValueError, match="infinite"):
            ZeroER().fit(X)

    def test_duplicate_rows_no_singularity_blowup(self, rng):
        base = rng.random((20, 5))
        X = np.vstack([base] * 10)  # massive exact duplication
        try:
            model = ZeroER(transitivity=False).fit(X)
            assert np.all(np.isfinite(model.match_scores_))
        except InitializationError:
            pass


class TestHostileTables:
    def test_all_values_missing(self):
        table = Table(
            [{"id": i, "name": None, "x": None} for i in range(6)],
            attributes=["name", "x"],
        )
        gen = FeatureGenerator().fit(table)
        X = gen.transform(table, None, [(0, 1), (2, 3)])
        assert np.all(np.isnan(X))

    def test_unicode_and_emoji_values(self):
        table = Table(
            [
                {"id": 1, "name": "café ☕ münchen"},
                {"id": 2, "name": "cafe munchen"},
                {"id": 3, "name": "日本語 テスト"},
            ],
            attributes=["name"],
        )
        pairs = [(1, 2), (1, 3)]
        gen = FeatureGenerator().fit(table)
        X = gen.transform(table, None, pairs)
        finite = X[np.isfinite(X)]
        assert np.all(finite >= 0) and np.all(finite <= 1 + 1e-9)
        assert X[0].mean() > X[1].mean()  # the latin pair is more similar

    def test_extremely_long_strings(self):
        long_text = "word " * 2000
        table = Table(
            [{"id": 1, "d": long_text}, {"id": 2, "d": long_text + "extra"}],
            attributes=["d"],
        )
        gen = FeatureGenerator().fit(table)
        X = gen.transform(table, None, [(1, 2)])
        assert np.all(np.isfinite(X))

    def test_numeric_strings_with_garbage(self):
        table = Table(
            [{"id": 1, "price": "12.5"}, {"id": 2, "price": "n/a"}, {"id": 3, "price": "13"}],
            attributes=["price"],
        )
        gen = FeatureGenerator().fit(table)
        X = gen.transform(table, None, [(1, 3), (1, 2)])
        assert np.all(np.isfinite(X[0]) | np.isnan(X[0]))

    def test_blocking_on_whitespace_only_values(self):
        table = Table(
            [{"id": 1, "name": "   "}, {"id": 2, "name": "\t\n"}, {"id": 3, "name": "real name"}],
            attributes=["name"],
        )
        assert TokenOverlapBlocker("name", max_df=1.0).block(table) == []


class TestSimilarityEdgeCases:
    def test_jaccard_of_huge_sets(self):
        a = set(f"t{i}" for i in range(10000))
        b = set(f"t{i}" for i in range(5000, 15000))
        assert jaccard(a, b) == pytest.approx(5000 / 15000)

    def test_levenshtein_empty_vs_long(self):
        assert levenshtein_similarity("", "x" * 500) == 0.0

    def test_levenshtein_long_identical(self):
        s = "abcdefghij" * 50
        assert levenshtein_similarity(s, s) == 1.0
