"""PipelineSpec tests: round-trips, build parity, validation, provenance."""

import json

import numpy as np
import pytest

from repro import (
    ERPipeline,
    IncrementalResolver,
    PipelineSpec,
    SpecError,
    ZeroERConfig,
    load_benchmark,
    load_spec,
)
from repro.api import BlockingSpec, FeatureSpec, ModelSpec, OutputSpec
from repro.blocking import (
    AttributeEquivalenceBlocker,
    QgramBlocker,
    SortedNeighborhoodBlocker,
    TokenOverlapBlocker,
    UnionBlocker,
)


def _spec(blocking_type="token_overlap", **options):
    options.setdefault("attribute", "name")
    return PipelineSpec(blocking=BlockingSpec(blocking_type, options))


class TestRoundTrips:
    @pytest.mark.parametrize(
        "blocker",
        [
            TokenOverlapBlocker("name", min_overlap=2, top_k=30, engine="per-record"),
            QgramBlocker("name", q=2, min_overlap=3),
            AttributeEquivalenceBlocker("city"),
            SortedNeighborhoodBlocker("name", window=7),
            UnionBlocker(
                [TokenOverlapBlocker("name"), AttributeEquivalenceBlocker("city")]
            ),
        ],
        ids=lambda b: type(b).__name__,
    )
    def test_blocker_spec_round_trip(self, blocker):
        spec = BlockingSpec.from_blocker(blocker)
        via_json = BlockingSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert via_json == spec
        assert via_json.build().to_spec() == blocker.to_spec()

    def test_pipeline_spec_json_round_trip(self):
        spec = PipelineSpec(
            blocking=BlockingSpec("qgram", {"attribute": "name", "q": 2}),
            features=FeatureSpec(engine="per-pair", type_overrides={"age": "numeric"}),
            model=ModelSpec(
                config=ZeroERConfig(kappa=0.4, transitivity=False), co_candidate_cap=5
            ),
            output=OutputSpec(threshold=0.7, one_to_one=True),
        )
        assert PipelineSpec.from_json(spec.to_json()) == spec
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_save_load_file_round_trip(self, tmp_path):
        spec = _spec(top_k=10)
        path = spec.save(tmp_path / "spec.json")
        assert PipelineSpec.load(path) == spec
        assert load_spec(path) == spec
        assert load_spec(spec.to_dict()) == spec
        assert load_spec(spec) is spec

    def test_partial_dict_fills_defaults(self):
        spec = PipelineSpec.from_dict(
            {"blocking": {"type": "token_overlap", "attribute": "name"}}
        )
        assert spec.version == 1
        assert spec.features == FeatureSpec()
        assert spec.model.config == ZeroERConfig()
        assert spec.output.threshold == 0.5


class TestBuildParity:
    """Spec-built pipelines reproduce code-built pipelines bit-identically."""

    def _code_built(self):
        return ERPipeline(
            blocker=TokenOverlapBlocker("name", min_overlap=1, top_k=60),
            config=ZeroERConfig(),
        )

    def _spec_built(self):
        spec_dict = {
            "version": 1,
            "blocking": {"type": "token_overlap", "attribute": "name", "top_k": 60},
        }
        rebuilt = PipelineSpec.from_json(json.dumps(spec_dict))  # the full JSON trip
        return rebuilt.build()

    def test_linkage_parity(self):
        ds = load_benchmark("pub_da", scale="tiny", seed=0)
        expected = self._code_built().run(ds.left, ds.right)
        actual = self._spec_built().run(ds.left, ds.right)
        assert actual.pairs == expected.pairs
        assert np.array_equal(actual.scores, expected.scores)
        assert np.array_equal(actual.labels, expected.labels)

    def test_dedup_parity(self):
        ds = load_benchmark("rest_fz", scale="tiny", seed=2)
        merged, _ = ds.as_dedup()
        expected = self._code_built().run(merged)
        actual = self._spec_built().run(merged)
        assert actual.pairs == expected.pairs
        assert np.array_equal(actual.scores, expected.scores)
        assert np.array_equal(actual.labels, expected.labels)

    def test_build_carries_every_knob(self):
        spec = PipelineSpec(
            blocking=BlockingSpec("token_overlap", {"attribute": "name"}),
            features=FeatureSpec(engine="per-pair", type_overrides={"age": "numeric"}),
            model=ModelSpec(config=ZeroERConfig(kappa=0.3), co_candidate_cap=4),
        )
        pipeline = spec.build()
        assert pipeline.feature_engine == "per-pair"
        assert pipeline.config.kappa == 0.3
        assert pipeline.co_candidate_cap == 4
        from repro.features import AttributeType

        assert pipeline.type_overrides == {"age": AttributeType.NUMERIC}


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="unknown key"):
            PipelineSpec.from_dict(
                {"blocking": {"type": "token_overlap", "attribute": "a"}, "blocky": {}}
            )

    def test_unknown_blocking_key(self):
        with pytest.raises(SpecError, match="unknown key"):
            _spec(min_overlpa=2)

    def test_unknown_blocker_type(self):
        with pytest.raises(SpecError, match="unknown blocker type"):
            PipelineSpec.from_dict({"blocking": {"type": "lsh", "attribute": "a"}})

    def test_missing_blocking_section(self):
        with pytest.raises(SpecError, match="blocking"):
            PipelineSpec.from_dict({"version": 1})

    def test_bad_blocking_value(self):
        with pytest.raises(SpecError, match="min_overlap"):
            _spec(min_overlap=0)

    def test_bad_model_value(self):
        with pytest.raises(SpecError, match="kappa"):
            PipelineSpec.from_dict(
                {
                    "blocking": {"type": "token_overlap", "attribute": "a"},
                    "model": {"config": {"kappa": -1.0}},
                }
            )

    def test_unknown_config_key(self):
        with pytest.raises(SpecError, match="unknown key"):
            PipelineSpec.from_dict(
                {
                    "blocking": {"type": "token_overlap", "attribute": "a"},
                    "model": {"config": {"kapa": 0.2}},
                }
            )

    def test_bad_feature_engine(self):
        with pytest.raises(SpecError, match="engine"):
            FeatureSpec(engine="vectorized")

    def test_bad_type_override(self):
        with pytest.raises(SpecError, match="unknown attribute type"):
            FeatureSpec(type_overrides={"age": "integer"})

    def test_non_dict_type_overrides_is_spec_error(self):
        for bogus in ("oops", 5, ["a"]):
            with pytest.raises(SpecError, match="type_overrides"):
                PipelineSpec.from_dict(
                    {
                        "blocking": {"type": "token_overlap", "attribute": "a"},
                        "features": {"type_overrides": bogus},
                    }
                )

    def test_bad_threshold(self):
        with pytest.raises(SpecError, match="threshold"):
            OutputSpec(threshold=1.5)

    def test_bad_co_candidate_cap(self):
        with pytest.raises(SpecError, match="co_candidate_cap"):
            ModelSpec(co_candidate_cap=0)

    def test_unsupported_version(self):
        with pytest.raises(SpecError, match="version 99"):
            PipelineSpec.from_dict(
                {"version": 99, "blocking": {"type": "token_overlap", "attribute": "a"}}
            )

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            PipelineSpec.from_json("{nope")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="not found"):
            PipelineSpec.load(tmp_path / "absent.json")

    def test_load_spec_rejects_other_types(self):
        with pytest.raises(TypeError, match="cannot load a spec"):
            load_spec(42)


class TestProvenance:
    def test_from_pipeline_captures_configuration(self):
        pipeline = ERPipeline(
            blocker=QgramBlocker("name", q=2),
            config=ZeroERConfig(kappa=0.33),
            co_candidate_cap=7,
            feature_engine="per-pair",
        )
        spec = PipelineSpec.from_pipeline(pipeline, threshold=0.8)
        assert spec.blocking.type == "qgram"
        assert spec.model.config.kappa == 0.33
        assert spec.model.co_candidate_cap == 7
        assert spec.features.engine == "per-pair"
        assert spec.output.threshold == 0.8
        # and the captured spec rebuilds an equivalent pipeline
        rebuilt = spec.build()
        assert rebuilt.blocker.to_spec() == pipeline.blocker.to_spec()
        assert rebuilt.config == pipeline.config

    def test_from_pipeline_rejects_non_serializable_blocker(self):
        pipeline = ERPipeline(
            blocker=AttributeEquivalenceBlocker("city", transform=str.lower)
        )
        with pytest.raises(SpecError, match="transform"):
            PipelineSpec.from_pipeline(pipeline)

    def test_frozen_artifacts_embed_and_round_trip_spec(self, tmp_path):
        from repro.data.table import Table

        ds = load_benchmark("rest_fz", scale="tiny", seed=3)
        merged, _ = ds.as_dedup()
        table = Table(list(merged), attributes=merged.attributes)
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(table)
        resolver = pipeline.freeze(threshold=0.6)
        assert resolver.spec is not None
        assert resolver.spec.output.threshold == 0.6

        path = resolver.save(tmp_path / "art")
        from repro.incremental.artifacts import artifact_dir

        manifest = json.loads((artifact_dir(path) / "manifest.json").read_text())
        assert manifest["pipeline_spec"]["blocking"]["type"] == "token_overlap"

        loaded = IncrementalResolver.load(path)
        assert loaded.spec == resolver.spec
        # the embedded spec is buildable: full provenance, not just metadata
        assert loaded.spec.build().blocker.to_spec() == pipeline.blocker.to_spec()

    def test_freeze_without_serializable_spec_still_works(self):
        # a custom tokenizer defeats declarative capture; freeze must not fail
        from repro.text.tokenizers import WhitespaceTokenizer

        class CustomTokenizer(WhitespaceTokenizer):
            pass

        ds = load_benchmark("rest_fz", scale="tiny", seed=3)
        merged, _ = ds.as_dedup()
        pipeline = ERPipeline(
            blocker=TokenOverlapBlocker("name", tokenizer=CustomTokenizer(), top_k=60)
        )
        pipeline.run(merged)
        resolver = pipeline.freeze()
        assert resolver.spec is None


class TestFreezeHonorsSessionOverrides:
    def test_frozen_spec_records_rematch_config(self):
        ds = load_benchmark("rest_fz", scale="tiny", seed=3)
        merged, _ = ds.as_dedup()
        pipeline = ERPipeline(blocking_attribute="name")
        session = pipeline.session(merged)
        session.match(kappa=0.9)
        resolver = pipeline.freeze()
        assert resolver.spec.model.config.kappa == 0.9, (
            "the embedded spec must describe the config that fitted model_"
        )

    def test_frozen_index_uses_session_blocker_override(self):
        ds = load_benchmark("rest_fz", scale="tiny", seed=3)
        merged, _ = ds.as_dedup()
        pipeline = ERPipeline(blocking_attribute="name")
        session = pipeline.session(merged)
        session.block(blocker=TokenOverlapBlocker("name", min_overlap=2, top_k=9))
        session.match()
        resolver = pipeline.freeze()
        assert resolver.index.min_overlap == 2
        assert resolver.index.top_k == 9
        assert resolver.spec.blocking.options["top_k"] == 9

    def test_plain_run_after_staged_override_resets_capture(self):
        ds = load_benchmark("rest_fz", scale="tiny", seed=3)
        merged, _ = ds.as_dedup()
        pipeline = ERPipeline(blocking_attribute="name")
        session = pipeline.session(merged)
        session.match(kappa=0.9)
        pipeline.run(merged)  # a fresh run supersedes the staged override
        resolver = pipeline.freeze()
        assert resolver.spec.model.config.kappa == pipeline.config.kappa


class TestLoadTolerance:
    def test_unreadable_embedded_spec_does_not_block_load(self, tmp_path):
        ds = load_benchmark("rest_fz", scale="tiny", seed=3)
        merged, _ = ds.as_dedup()
        pipeline = ERPipeline(blocking_attribute="name")
        pipeline.run(merged)
        path = pipeline.freeze().save(tmp_path / "art")

        from repro.incremental.artifacts import artifact_dir
        from repro.reliability import write_checksum_manifest

        version_dir = artifact_dir(path)
        manifest_path = version_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["pipeline_spec"]["version"] = 99  # a future spec schema
        manifest_path.write_text(json.dumps(manifest))
        write_checksum_manifest(version_dir)  # re-sign the edited manifest

        with pytest.warns(RuntimeWarning, match="unreadable pipeline_spec"):
            loaded = IncrementalResolver.load(path)
        assert loaded.spec is None
        assert len(loaded.store) == len(merged)
