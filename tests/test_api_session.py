"""Staged-session tests: parity with run(), caching, overrides, invalidation."""

import numpy as np
import pytest

from repro import ERPipeline, ERResult, ZeroERConfig, load_benchmark
from repro.api import CandidateSet, FeatureMatrix, MatchSet
from repro.blocking import AttributeEquivalenceBlocker


@pytest.fixture(scope="module")
def dataset():
    return load_benchmark("rest_fz", scale="tiny", seed=2)


@pytest.fixture(scope="module")
def dedup_table(dataset):
    merged, _ = dataset.as_dedup()
    return merged


def _assert_result_equal(a: ERResult, b: ERResult):
    assert a.pairs == b.pairs
    assert np.array_equal(a.scores, b.scores)
    assert np.array_equal(a.labels, b.labels)
    assert a.feature_names == b.feature_names


class TestStagedParity:
    def test_linkage_chain_matches_run(self, dataset):
        run_result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        staged = session.block().featurize().match()
        assert isinstance(staged, MatchSet)
        _assert_result_equal(staged.to_result(), run_result)

    def test_dedup_chain_matches_run(self, dedup_table):
        run_result = ERPipeline(blocking_attribute="name").run(dedup_table)
        session = ERPipeline(blocking_attribute="name").session(dedup_table)
        staged = session.block().featurize().match()
        _assert_result_equal(staged.to_result(), run_result)

    def test_session_run_equals_pipeline_run(self, dataset):
        run_result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
        session_result = (
            ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right).run()
        )
        _assert_result_equal(session_result, run_result)
        assert set(session_result.seconds) == {"blocking", "features", "matching"}


class TestArtifacts:
    def test_candidate_set(self, dataset):
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        candidates = session.block()
        assert isinstance(candidates, CandidateSet)
        assert len(candidates) == len(candidates.pairs) > 0
        stats = candidates.statistics(dataset.matches)
        assert stats["n_candidates"] == len(candidates)
        assert 0.0 < stats["recall"] <= 1.0

    def test_candidate_statistics_dedup_denominator(self, dedup_table):
        session = ERPipeline(blocking_attribute="name").session(dedup_table)
        stats = session.block().statistics()
        n = len(dedup_table)
        # reduction ratio uses n(n-1)/2, so it must stay in [0, 1]
        assert 0.0 <= stats["reduction_ratio"] <= 1.0

    def test_feature_matrix(self, dataset):
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        features = session.featurize()
        assert isinstance(features, FeatureMatrix)
        assert features.shape == (len(session.block()), len(features.feature_names))
        name = features.feature_names[0]
        assert np.array_equal(
            features.column(name), features.X[:, 0], equal_nan=True
        )
        with pytest.raises(KeyError, match="unknown feature"):
            features.column("nope")

    def test_match_set_helpers(self, dataset, tmp_path):
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        matches = session.match()
        assert matches.pairs == matches.result.pairs
        assert set(matches.matches) == set(matches.result.matches)
        rows = matches.to_frame()
        assert len(rows) == len(matches.matches)
        path = matches.to_csv(tmp_path / "m.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "left_id,right_id,score"
        assert len(lines) == len(rows) + 1


class TestCachingAndOverrides:
    def test_stages_are_cached(self, dataset):
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        assert session.block() is session.block()
        assert session.featurize() is session.featurize()
        assert session.match() is session.match()

    def test_rematch_reuses_features(self, dataset):
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        first = session.match()
        features = session.features_
        candidates = session.candidates_
        second = session.match(kappa=0.6)
        assert session.features_ is features, "re-match must not re-featurize"
        assert session.candidates_ is candidates, "re-match must not re-block"
        assert second.config.kappa == 0.6
        assert second is not first

    def test_match_accepts_whole_config(self, dataset):
        from repro.core.model import ZeroER

        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        matches = session.match(config=ZeroERConfig(transitivity=False))
        assert isinstance(matches.model, ZeroER)

    def test_block_override_invalidates_downstream(self, dataset):
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        session.match()
        assert session.features_ is not None
        session.block(blocker=AttributeEquivalenceBlocker("city"))
        assert session.features_ is None
        assert session.matches_ is None

    def test_blocking_engine_override(self, dataset):
        pipeline = ERPipeline(blocking_attribute="name")
        sparse_pairs = pipeline.session(dataset.left, dataset.right).block().pairs
        session = pipeline.session(dataset.left, dataset.right)
        per_record = session.block(blocking_engine="per-record")
        assert per_record.blocker.engine == "per-record"
        assert pipeline.blocker.engine == "sparse", "pipeline blocker must stay untouched"
        assert per_record.pairs == sparse_pairs

    def test_blocking_engine_override_rejects_other_blockers(self, dataset):
        pipeline = ERPipeline(blocker=AttributeEquivalenceBlocker("city"))
        session = pipeline.session(dataset.left, dataset.right)
        with pytest.raises(ValueError, match="TokenOverlapBlocker"):
            session.block(blocking_engine="per-record")

    def test_feature_engine_override_matches_batch(self, dataset):
        pipeline = ERPipeline(blocking_attribute="name")
        session = pipeline.session(dataset.left, dataset.right)
        batch = session.featurize()
        per_pair = session.featurize(engine="per-pair")
        assert per_pair.engine == "per-pair"
        assert session.matches_ is None or session.matches_ is per_pair  # invalidated
        assert np.array_equal(np.isnan(batch.X), np.isnan(per_pair.X))
        assert np.allclose(batch.X, per_pair.X, equal_nan=True)

    def test_bad_overrides_raise(self, dataset):
        session = ERPipeline(blocking_attribute="name").session(dataset.left, dataset.right)
        with pytest.raises(ValueError, match="engine"):
            session.featurize(engine="bogus")
        with pytest.raises(ValueError, match="engine"):
            session.block(blocking_engine="bogus")


class TestPipelineStatePublishing:
    def test_staged_match_enables_freeze(self, dataset):
        from repro.data.table import Table

        left = Table(
            [dict(r, id=f"L{r['id']}") for r in dataset.left],
            attributes=dataset.left.attributes,
        )
        right = Table(
            [dict(r, id=f"R{r['id']}") for r in dataset.right],
            attributes=dataset.right.attributes,
        )
        pipeline = ERPipeline(blocking_attribute="name")
        session = pipeline.session(left, right)
        matches = session.block().featurize().match()
        assert pipeline.model_ is matches.model
        assert pipeline.generator_ is matches.generator
        assert pipeline.result_ is matches.result
        resolver = pipeline.freeze()
        assert len(resolver.store) == len(left) + len(right)

    def test_empty_candidates(self, dataset):
        blocker = AttributeEquivalenceBlocker("name", transform=lambda v: str(v) + "-none")
        from repro.data.table import Table

        left = dataset.left.head(3)
        right = Table(
            [dict(r, id=f"X{i}", name="zzz") for i, r in enumerate(dataset.right.head(3))],
            attributes=dataset.right.attributes,
        )
        pipeline = ERPipeline(blocker=blocker)
        session = pipeline.session(left, right)
        matches = session.match()
        assert matches.pairs == []
        assert matches.model is None
        assert matches.labels.shape == (0,)
        assert set(matches.result.seconds) == {"blocking"}
        with pytest.raises(RuntimeError, match="no candidate pairs"):
            pipeline.freeze()
