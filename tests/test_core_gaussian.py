"""Tests for the block-diagonal Gaussian."""

import numpy as np
import pytest
import scipy.stats

from repro.core.gaussian import BlockDiagonalGaussian


@pytest.fixture
def two_block(rng):
    mean = np.array([0.1, 0.2, 0.3, 0.4])
    a = np.array([[0.05, 0.01], [0.01, 0.04]])
    b = np.array([[0.03, -0.005], [-0.005, 0.06]])
    return BlockDiagonalGaussian(mean, [[0, 1], [2, 3]], [a, b])


class TestConstruction:
    def test_valid(self, two_block):
        assert two_block.n_features == 4

    def test_rejects_group_block_count_mismatch(self):
        with pytest.raises(ValueError, match="covariance blocks"):
            BlockDiagonalGaussian(np.zeros(2), [[0, 1]], [np.eye(2), np.eye(1)])

    def test_rejects_non_partition(self):
        with pytest.raises(ValueError, match="partition"):
            BlockDiagonalGaussian(np.zeros(3), [[0, 1]], [np.eye(2)])

    def test_rejects_wrong_block_shape(self):
        with pytest.raises(ValueError, match="shape"):
            BlockDiagonalGaussian(np.zeros(2), [[0, 1]], [np.eye(3)])


class TestLogpdf:
    def test_equals_full_gaussian_on_block_diagonal_cov(self, two_block, rng):
        X = rng.normal(0.25, 0.2, size=(25, 4))
        full_cov = two_block.covariance_matrix()
        reference = scipy.stats.multivariate_normal(two_block.mean, full_cov).logpdf(X)
        assert np.allclose(two_block.logpdf(X), reference)

    def test_single_block_equals_multivariate(self, rng):
        A = rng.normal(size=(3, 3))
        cov = A @ A.T + np.eye(3)
        mean = rng.normal(size=3)
        g = BlockDiagonalGaussian(mean, [[0, 1, 2]], [cov])
        X = rng.normal(size=(10, 3))
        reference = scipy.stats.multivariate_normal(mean, cov).logpdf(X)
        assert np.allclose(g.logpdf(X), reference)

    def test_rejects_wrong_width(self, two_block):
        with pytest.raises(ValueError, match="features"):
            two_block.logpdf(np.zeros((2, 3)))

    def test_independent_blocks_sum(self, rng):
        # logpdf of independent dims = sum of univariate logpdfs
        g = BlockDiagonalGaussian(
            np.array([0.0, 1.0]), [[0], [1]], [np.array([[1.0]]), np.array([[4.0]])]
        )
        X = rng.normal(size=(8, 2))
        expected = scipy.stats.norm(0, 1).logpdf(X[:, 0]) + scipy.stats.norm(1, 2).logpdf(X[:, 1])
        assert np.allclose(g.logpdf(X), expected)


class TestViews:
    def test_covariance_matrix_assembly(self, two_block):
        cov = two_block.covariance_matrix()
        assert cov.shape == (4, 4)
        assert cov[0, 2] == 0.0 and cov[1, 3] == 0.0  # cross-block zeros
        assert cov[0, 1] == pytest.approx(0.01)

    def test_variances(self, two_block):
        assert np.allclose(two_block.variances(), [0.05, 0.04, 0.03, 0.06])
