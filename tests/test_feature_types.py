"""Tests for attribute type inference."""

from repro.features.types import AttributeType, infer_attribute_type


def test_numeric_ints():
    assert infer_attribute_type([1, 2, 3]) is AttributeType.NUMERIC


def test_numeric_strings():
    assert infer_attribute_type(["1.5", "2", "3.25"]) is AttributeType.NUMERIC


def test_numeric_with_missing():
    assert infer_attribute_type([1.0, None, 2.0]) is AttributeType.NUMERIC


def test_boolean_values():
    assert infer_attribute_type([True, False, True]) is AttributeType.BOOLEAN


def test_boolean_strings():
    assert infer_attribute_type(["yes", "no", "yes"]) is AttributeType.BOOLEAN


def test_zero_one_ints_are_numeric_not_boolean():
    # {0, 1}-coded values without any true/yes marker stay numeric
    assert infer_attribute_type([0, 1, 0, 1]) is AttributeType.NUMERIC


def test_short_string():
    assert infer_attribute_type(["chicago", "boston", "dallas"]) is AttributeType.SHORT_STRING


def test_medium_string():
    values = ["scalable entity matching", "parallel query processing"]
    assert infer_attribute_type(values) is AttributeType.MEDIUM_STRING


def test_long_string():
    values = ["one two three four five six seven eight nine ten eleven twelve"] * 2
    assert infer_attribute_type(values) is AttributeType.LONG_STRING


def test_all_missing_defaults_short():
    assert infer_attribute_type([None, None]) is AttributeType.SHORT_STRING


def test_empty_defaults_short():
    assert infer_attribute_type([]) is AttributeType.SHORT_STRING


def test_mixed_numeric_and_text_is_string():
    assert infer_attribute_type(["12", "abc"]) is AttributeType.SHORT_STRING


def test_boundary_at_one_and_half_words():
    # exactly 1.5 average words -> short
    assert infer_attribute_type(["one", "two words"]) is AttributeType.SHORT_STRING
