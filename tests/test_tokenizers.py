"""Tests for repro.text.tokenizers."""

import pytest

from repro.text.tokenizers import (
    AlnumTokenizer,
    DelimiterTokenizer,
    QgramTokenizer,
    WhitespaceTokenizer,
)


class TestQgramTokenizer:
    def test_padded_trigrams(self):
        assert QgramTokenizer(3).tokenize("abc") == ["##a", "#ab", "abc", "bc$", "c$$"]

    def test_unpadded(self):
        assert QgramTokenizer(3, padded=False).tokenize("abcd") == ["abc", "bcd"]

    def test_short_string_unpadded(self):
        assert QgramTokenizer(5, padded=False).tokenize("ab") == ["ab"]

    def test_lowercases_by_default(self):
        assert QgramTokenizer(2, padded=False).tokenize("AB") == ["ab"]

    def test_q1_is_characters(self):
        assert QgramTokenizer(1, padded=False).tokenize("abc") == ["a", "b", "c"]

    def test_none_is_empty(self):
        assert QgramTokenizer(3).tokenize(None) == []

    def test_empty_string(self):
        assert QgramTokenizer(3).tokenize("") == []

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError, match="q must be"):
            QgramTokenizer(0)

    def test_single_edit_disturbs_at_most_q_grams(self):
        # the property that makes q-gram blocking typo-tolerant
        a = set(QgramTokenizer(3).tokenize("similarity"))
        b = set(QgramTokenizer(3).tokenize("simiIarity".lower()))
        assert len(a - b) <= 3


class TestWhitespaceTokenizer:
    def test_splits_on_runs(self):
        assert WhitespaceTokenizer().tokenize("a  b\tc") == ["a", "b", "c"]

    def test_lowercases(self):
        assert WhitespaceTokenizer().tokenize("Deep Learning") == ["deep", "learning"]

    def test_preserve_case(self):
        assert WhitespaceTokenizer(lowercase=False).tokenize("Deep") == ["Deep"]

    def test_none(self):
        assert WhitespaceTokenizer().tokenize(None) == []


class TestAlnumTokenizer:
    def test_strips_punctuation(self):
        assert AlnumTokenizer().tokenize("O'Neil & Sons, Ltd.") == ["o", "neil", "sons", "ltd"]

    def test_keeps_digits(self):
        assert AlnumTokenizer().tokenize("model dsc-w55") == ["model", "dsc", "w55"]

    def test_case_preserving_mode(self):
        assert AlnumTokenizer(lowercase=False).tokenize("Ab-1") == ["Ab", "1"]

    def test_none(self):
        assert AlnumTokenizer().tokenize(None) == []


class TestDelimiterTokenizer:
    def test_comma_split_with_strip(self):
        assert DelimiterTokenizer(",").tokenize("a, b ,c") == ["a", "b", "c"]

    def test_drops_empty_segments(self):
        assert DelimiterTokenizer(",").tokenize("a,,b") == ["a", "b"]

    def test_rejects_empty_delimiter(self):
        with pytest.raises(ValueError):
            DelimiterTokenizer("")

    def test_callable_interface(self):
        tok = DelimiterTokenizer(";")
        assert tok("x;y") == ["x", "y"]
