"""Tests for the blocking package."""

import pytest

from repro.blocking import (
    AttributeEquivalenceBlocker,
    QgramBlocker,
    SortedNeighborhoodBlocker,
    TokenOverlapBlocker,
    UnionBlocker,
    candidate_recall,
    candidate_statistics,
)
from repro.data.table import Table


@pytest.fixture
def left():
    return Table(
        [
            {"id": "l1", "name": "golden dragon grill", "city": "chicago"},
            {"id": "l2", "name": "blue lotus cafe", "city": "boston"},
            {"id": "l3", "name": "iron skillet", "city": None},
        ],
        attributes=["name", "city"],
    )


@pytest.fixture
def right():
    return Table(
        [
            {"id": "r1", "name": "golden dragon", "city": "chicago"},
            {"id": "r2", "name": "blue lotus", "city": "boston"},
            {"id": "r3", "name": "crimson tavern", "city": "chicago"},
            {"id": "r4", "name": "skillet house", "city": None},
        ],
        attributes=["name", "city"],
    )


class TestAttributeEquivalence:
    def test_linkage_join(self, left, right):
        pairs = AttributeEquivalenceBlocker("city").block(left, right)
        assert set(pairs) == {("l1", "r1"), ("l1", "r3"), ("l2", "r2")}

    def test_none_never_matches(self, left, right):
        pairs = AttributeEquivalenceBlocker("city").block(left, right)
        assert not any("l3" in p or "r4" in p for p in pairs)

    def test_transform(self, left, right):
        pairs = AttributeEquivalenceBlocker("name", transform=lambda v: v.split()[0]).block(
            left, right
        )
        assert ("l1", "r1") in pairs and ("l2", "r2") in pairs

    def test_dedup_mode(self):
        t = Table([{"id": i, "k": i % 2} for i in range(4)], attributes=["k"])
        pairs = AttributeEquivalenceBlocker("k").block(t)
        assert set(pairs) == {(0, 2), (1, 3)}


class TestTokenOverlap:
    def test_basic_overlap(self, left, right):
        pairs = TokenOverlapBlocker("name", min_overlap=1, max_df=1.0).block(left, right)
        assert ("l1", "r1") in pairs
        assert ("l2", "r2") in pairs

    def test_min_overlap_two(self, left, right):
        pairs = TokenOverlapBlocker("name", min_overlap=2, max_df=1.0).block(left, right)
        assert ("l1", "r1") in pairs  # shares golden + dragon
        assert ("l3", "r4") not in pairs  # shares only skillet

    def test_top_k_caps_per_left_record(self):
        left = Table([{"id": "l", "name": "alpha beta"}], attributes=["name"])
        right = Table(
            [{"id": f"r{i}", "name": "alpha beta gamma"} for i in range(10)],
            attributes=["name"],
        )
        pairs = TokenOverlapBlocker("name", top_k=3, max_df=1.0).block(left, right)
        assert len(pairs) == 3

    def test_top_k_prefers_higher_overlap(self):
        left = Table([{"id": "l", "name": "a b c"}], attributes=["name"])
        right = Table(
            [
                {"id": "one", "name": "a x y"},
                {"id": "three", "name": "a b c"},
                {"id": "two", "name": "a b z"},
            ],
            attributes=["name"],
        )
        pairs = TokenOverlapBlocker("name", top_k=1, max_df=1.0).block(left, right)
        assert pairs == [("l", "three")]

    def test_max_df_prunes_stopwords(self):
        left = Table([{"id": "l", "name": "the unique"}], attributes=["name"])
        right = Table(
            [{"id": f"r{i}", "name": f"the filler{i}"} for i in range(9)]
            + [{"id": "hit", "name": "unique item"}],
            attributes=["name"],
        )
        pairs = TokenOverlapBlocker("name", max_df=0.5).block(left, right)
        assert pairs == [("l", "hit")]  # "the" appears in 90% of right rows

    def test_dedup_emits_each_pair_once(self):
        t = Table(
            [{"id": i, "name": "shared tokens here"} for i in range(4)],
            attributes=["name"],
        )
        pairs = TokenOverlapBlocker("name", max_df=1.0).block(t)
        assert len(pairs) == len(set(pairs)) == 6  # C(4,2)

    def test_missing_values_skipped(self):
        t = Table([{"id": 1, "name": None}, {"id": 2, "name": "x"}], attributes=["name"])
        assert TokenOverlapBlocker("name", max_df=1.0).block(t) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenOverlapBlocker("a", min_overlap=0)
        with pytest.raises(ValueError):
            TokenOverlapBlocker("a", max_df=0.0)
        with pytest.raises(ValueError):
            TokenOverlapBlocker("a", top_k=0)


class TestQgramBlocker:
    def test_typo_tolerant(self):
        left = Table([{"id": "l", "name": "restaurant"}], attributes=["name"])
        right = Table([{"id": "r", "name": "restuarant"}], attributes=["name"])  # transposed
        pairs = QgramBlocker("name", q=3, min_overlap=2, max_df=1.0).block(left, right)
        assert pairs == [("l", "r")]

    def test_disjoint_strings_not_paired(self):
        left = Table([{"id": "l", "name": "aaaa"}], attributes=["name"])
        right = Table([{"id": "r", "name": "zzzz"}], attributes=["name"])
        assert QgramBlocker("name", max_df=1.0).block(left, right) == []


class TestSortedNeighborhood:
    def test_adjacent_names_paired(self, left, right):
        pairs = SortedNeighborhoodBlocker("name", window=3).block(left, right)
        assert ("l1", "r1") in pairs  # "golden dragon grill" next to "golden dragon"

    def test_window_two_is_adjacent_only(self):
        t = Table([{"id": i, "k": f"v{i}"} for i in range(5)], attributes=["k"])
        pairs = SortedNeighborhoodBlocker("k", window=2).block(t)
        assert len(pairs) == 4

    def test_linkage_only_cross_pairs(self, left, right):
        pairs = SortedNeighborhoodBlocker("name", window=4).block(left, right)
        left_ids = set(left.ids())
        for a, b in pairs:
            assert a in left_ids and b not in left_ids

    def test_rejects_small_window(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker("k", window=1)

    def test_missing_values_sort_last(self, left, right):
        pairs = SortedNeighborhoodBlocker("city", window=2).block(left, right)
        assert ("l3", "r4") in pairs  # the two None-city records end up adjacent


class TestUnionBlocker:
    def test_union_dedupes(self, left, right):
        b1 = TokenOverlapBlocker("name", max_df=1.0)
        union = UnionBlocker([b1, b1])
        assert union.block(left, right) == b1.block(left, right)

    def test_union_adds_pairs(self, left, right):
        name_only = TokenOverlapBlocker("name", min_overlap=2, max_df=1.0)
        city = AttributeEquivalenceBlocker("city")
        union = UnionBlocker([name_only, city])
        merged = union.block(left, right)
        assert set(name_only.block(left, right)) | set(city.block(left, right)) == set(merged)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UnionBlocker([])

    def test_rejects_non_blockers(self):
        with pytest.raises(TypeError):
            UnionBlocker(["not a blocker"])


class TestCandidateAccounting:
    def test_recall(self):
        gold = [("a", "b"), ("c", "d")]
        assert candidate_recall([("a", "b")], gold) == 0.5
        assert candidate_recall([], []) == 1.0

    def test_statistics(self):
        stats = candidate_statistics([("a", "b"), ("a", "c")], [("a", "b")], 2, 3)
        assert stats["n_candidates"] == 2
        assert stats["recall"] == 1.0
        assert stats["retained_matches"] == 1
        assert stats["match_fraction"] == 0.5
        assert stats["reduction_ratio"] == pytest.approx(1 - 2 / 6)
