"""Concurrent EntityStore access: one writer, many snapshot readers.

The serving layer's contract is single-writer/snapshot-reader: resolve
batches mutate the store from one worker thread while lookup/health
endpoints read it from the event-loop thread. These tests hammer that
contract directly — a writer thread adding and merging at full speed while
reader threads pull :meth:`EntityStore.snapshot` views — and assert the
two invariants the endpoints rely on:

* **no torn reads** — every snapshot is a valid partition: each record
  appears in exactly one entity, counts agree, and assignments match the
  entity map;
* **stable entity ids** — once a record is observed in entity ``eN``, any
  later snapshot shows it in ``eM`` with ``M <= N`` (merges keep the older
  id; ids never churn upward).
"""

from __future__ import annotations

import threading

import pytest

from repro.incremental import EntityStore, StoreSnapshot

N_RECORDS = 400
N_READERS = 4


def _record(i: int) -> dict:
    return {"id": f"r{i}", "name": f"record {i}"}


def _check_partition(snap: StoreSnapshot) -> None:
    """A snapshot must be a partition of its records, all fields agreeing."""
    seen: list = []
    for eid, members in snap.entities.items():
        assert members, f"entity {eid} has no members"
        for rid in members:
            assert snap.assignments[rid] == eid
        seen.extend(members)
    assert len(seen) == len(set(seen)), "a record appears in two entities"
    assert len(seen) == snap.n_records == len(snap.assignments)
    assert snap.n_entities == len(snap.entities)


def _ord_of(entity_id: str) -> int:
    assert entity_id.startswith("e")
    return int(entity_id[1:])


class TestSnapshotUnderWriter:
    def test_writer_vs_snapshot_readers_stress(self):
        """Adds + merges racing snapshot reads never tear and never churn ids."""
        store = EntityStore()
        stop = threading.Event()
        failures: list[str] = []
        # rid -> smallest entity ord ever observed for it (monotone non-increasing)
        observed: dict[str, int] = {}
        observed_lock = threading.Lock()

        def writer():
            try:
                for i in range(N_RECORDS):
                    store.add(_record(i))
                    # merge every record into a rolling neighborhood so the
                    # partition keeps changing while readers snapshot
                    if i % 2 == 1:
                        store.merge(f"r{i - 1}", f"r{i}")
                    if i % 10 == 9:
                        store.merge(f"r{i - 9}", f"r{i}")
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(f"writer: {exc!r}")
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    snap = store.snapshot()
                    _check_partition(snap)
                    with observed_lock:
                        for rid, eid in snap.assignments.items():
                            ord_ = _ord_of(eid)
                            prev = observed.get(rid)
                            if prev is not None and ord_ > prev:
                                failures.append(
                                    f"entity id churned upward for {rid}: "
                                    f"e{prev} -> e{ord_}"
                                )
                            observed[rid] = ord_ if prev is None else min(prev, ord_)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(f"reader: {exc!r}")

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(N_READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, failures[:5]

        final = store.snapshot()
        _check_partition(final)
        assert final.n_records == N_RECORDS
        # the rolling merges fuse pairs and decades: far fewer entities than records
        assert final.n_entities < N_RECORDS / 2

    def test_concurrent_entity_of_while_merging(self):
        """Point reads (which path-compress) race merges without corruption."""
        store = EntityStore()
        for i in range(200):
            store.add(_record(i))
        stop = threading.Event()
        failures: list[str] = []

        def merger():
            try:
                for i in range(1, 200):
                    store.merge("r0", f"r{i}")
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))
            finally:
                stop.set()

        def prober():
            try:
                while not stop.is_set():
                    for i in (0, 50, 100, 150, 199):
                        eid = store.entity_of(f"r{i}")
                        assert eid.startswith("e")
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))

        threads = [threading.Thread(target=merger)] + [
            threading.Thread(target=prober) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, failures[:5]
        # everything merged into r0's entity, which keeps the oldest id
        assert store.n_entities == 1
        assert store.entity_of("r199") == "e0"


class TestSnapshotSemantics:
    def test_snapshot_is_immutable_and_detached(self):
        """A snapshot does not track later writes and cannot be mutated."""
        store = EntityStore()
        store.add(_record(0))
        store.add(_record(1))
        snap = store.snapshot()
        store.merge("r0", "r1")

        assert snap.n_entities == 2
        assert snap.entity_of("r1") == "e1"
        assert store.entity_of("r1") == "e0"
        with pytest.raises(TypeError):
            snap.assignments["r9"] = "e9"  # MappingProxyType rejects writes

    def test_snapshot_of_empty_store(self):
        snap = EntityStore().snapshot()
        assert snap.n_records == 0
        assert snap.n_entities == 0
        assert dict(snap.entities) == {}
