"""Quickstart: unsupervised entity resolution with the staged session API.

Generates the Fodors-Zagats-style restaurant benchmark, then runs the three
pipeline stages one at a time — blocking, automatic featurization, ZeroER
matching with zero labeled examples — inspecting each typed artifact on the
way, and evaluates against the gold matches. The one-liner equivalent of
everything below is::

    result = repro.resolve(dataset.left, dataset.right, blocking_attribute="name")

Run:  python examples/quickstart.py
"""

from repro import ERPipeline, load_benchmark
from repro.eval import precision_recall_f1


def main() -> None:
    # 1. Load (generate) a benchmark: two restaurant tables + gold matches.
    dataset = load_benchmark("rest_fz", scale="small")
    print(f"left table:  {len(dataset.left)} records")
    print(f"right table: {len(dataset.right)} records")
    print(f"gold matches: {dataset.n_matches}")

    # 2. Open a staged session: each stage is cached and inspectable.
    pipeline = ERPipeline(blocking_attribute="name")
    session = pipeline.session(dataset.left, dataset.right)

    # 3. Blocking: cheap candidate generation (token overlap on the name).
    candidates = session.block()
    stats = candidates.statistics(dataset.matches)
    print(f"\ncandidates: {stats['n_candidates']}  (blocking recall {stats['recall']:.2f})")

    # 4. Automatic feature generation: types inferred per attribute, several
    #    similarity functions per attribute -> feature matrix + groups.
    features = candidates.featurize()
    print(f"features: {features.shape[1]} in {len(features.feature_groups)} attribute groups")
    for attr, attr_type in features.generator.attribute_types_.items():
        print(f"  {attr}: {attr_type.value}")

    # 5. Fit ZeroER — no labels anywhere in this call. Linkage mode with
    #    transitivity trains the coupled F/Fl/Fr models of paper §5.
    matches = features.match()
    print(f"\nmatcher: {type(matches.model).__name__}")
    print(f"predicted matches: {len(matches.matches)}")

    # 6. Evaluate against gold (only possible because this is a benchmark).
    y_true = dataset.labels_for(matches.pairs)
    precision, recall, f1 = precision_recall_f1(y_true, matches.labels)
    print(f"precision={precision:.3f} recall={recall:.3f} F1={f1:.3f}")

    # 7. Staged what-if: re-run EM under a stronger regularizer without
    #    re-blocking or re-featurizing (the cached stages are reused).
    rematch = session.match(kappa=0.6)
    print(f"re-matched with κ=0.6: {len(rematch.matches)} predicted matches")

    # Bonus: the five most confident matches.
    print("\nmost confident matches:")
    for (left_id, right_id), score in matches.top_matches(5):
        left_name = dataset.left.get(left_id)["name"]
        right_name = dataset.right.get(right_id)["name"]
        print(f"  γ={score:.3f}  {left_name!r}  <->  {right_name!r}")


if __name__ == "__main__":
    main()
