"""Quickstart: unsupervised entity resolution in five steps.

Generates the Fodors-Zagats-style restaurant benchmark, blocks it,
auto-generates Magellan-style similarity features, fits ZeroER with zero
labeled examples, and evaluates against the gold matches.

Run:  python examples/quickstart.py
"""

from repro import FeatureGenerator, ZeroER, load_benchmark
from repro.blocking import TokenOverlapBlocker, candidate_statistics
from repro.eval import precision_recall_f1


def main() -> None:
    # 1. Load (generate) a benchmark: two restaurant tables + gold matches.
    dataset = load_benchmark("rest_fz", scale="small")
    print(f"left table:  {len(dataset.left)} records")
    print(f"right table: {len(dataset.right)} records")
    print(f"gold matches: {dataset.n_matches}")

    # 2. Blocking: cheap candidate generation (token overlap on the name).
    blocker = TokenOverlapBlocker("name", min_overlap=1, top_k=60)
    pairs = blocker.block(dataset.left, dataset.right)
    stats = candidate_statistics(pairs, dataset.matches, len(dataset.left), len(dataset.right))
    print(f"\ncandidates: {stats['n_candidates']}  (blocking recall {stats['recall']:.2f})")

    # 3. Automatic feature generation: types inferred per attribute, several
    #    similarity functions per attribute -> feature matrix + groups.
    generator = FeatureGenerator().fit(dataset.left, dataset.right, dataset.attributes)
    X = generator.transform(dataset.left, dataset.right, pairs)
    print(f"features: {X.shape[1]} in {len(generator.feature_groups_)} attribute groups")
    for attr, attr_type in generator.attribute_types_.items():
        print(f"  {attr}: {attr_type.value}")

    # 4. Fit ZeroER — no labels anywhere in this call.
    model = ZeroER()
    labels = model.fit_predict(X, generator.feature_groups_, pairs)
    print(f"\nEM converged: {model.converged_} after {model.n_iter_} iterations")
    print(f"predicted matches: {int(labels.sum())}")

    # 5. Evaluate against gold (only possible because this is a benchmark).
    y_true = dataset.labels_for(pairs)
    precision, recall, f1 = precision_recall_f1(y_true, labels)
    print(f"precision={precision:.3f} recall={recall:.3f} F1={f1:.3f}")

    # Bonus: the five most confident matches.
    scores = model.match_scores_
    top = sorted(zip(scores, pairs), key=lambda t: -t[0])[:5]
    print("\nmost confident matches:")
    for score, (left_id, right_id) in top:
        left_name = dataset.left.get(left_id)["name"]
        right_name = dataset.right.get(right_id)["name"]
        print(f"  γ={score:.3f}  {left_name!r}  <->  {right_name!r}")


if __name__ == "__main__":
    main()
