"""The hard case: product matching with vendor renames (paper §7.2).

Amazon-Google-style catalogs defeat plain string similarity: matched
products are renamed ("digital camera" -> "digicam", SKUs reformatted,
brands dropped) while *unmatched* sibling products from the same brand and
model family share most of their tokens. This example shows ZeroER's
behavior on that regime and compares against a supervised random forest
trained on 50% labeled data — the paper's point is that zero labels gets
you into the same ballpark.

Run:  python examples/products_hard_matching.py
"""

import numpy as np

from repro.baselines import RandomForestClassifier, oversample_minority, train_test_split
from repro.eval import precision_recall_f1
from repro.eval.harness import prepare_dataset, run_zeroer
from repro.features.normalize import MinMaxNormalizer, impute_nan


def main() -> None:
    prep = prepare_dataset("prod_ag", scale="small")
    print(f"candidates: {prep.n_pairs}, match rate {prep.y.mean():.3%}")

    # ZeroER: zero labels.
    result = run_zeroer(prep)
    print(
        f"\nZeroER      : P={result['precision']:.3f} R={result['recall']:.3f} "
        f"F1={result['f1']:.3f}"
    )

    # Supervised RF: 50% labeled, oversampled matches (paper protocol).
    X = impute_nan(MinMaxNormalizer().fit_transform(prep.X))
    train_idx, test_idx = train_test_split(len(prep.y), 0.5, random_state=0)
    X_train, y_train = oversample_minority(X[train_idx], prep.y[train_idx], random_state=0)
    forest = RandomForestClassifier(n_estimators=40, min_samples_leaf=2, random_state=0)
    forest.fit(X_train, y_train)
    rf_pred = forest.predict(X[test_idx])
    p, r, f1 = precision_recall_f1(prep.y[test_idx], rf_pred)
    print(f"RF (50% lbl): P={p:.3f} R={r:.3f} F1={f1:.3f}")

    # Why is this hard? Look at renamed matches ZeroER missed.
    scores = result["scores"]
    missed = [
        (prep.pairs[i], scores[i])
        for i in range(len(prep.pairs))
        if prep.y[i] == 1 and scores[i] <= 0.5
    ]
    print(f"\nmissed matches: {len(missed)} — typical vendor renames:")
    for (left_id, right_id), score in missed[:5]:
        left_title = prep.dataset.left.get(left_id)["title"]
        right_title = prep.dataset.right.get(right_id)["title"]
        print(f"  γ={score:.3f}  {left_title!r}  vs  {right_title!r}")

    # And near-miss unmatches (siblings) that look like matches.
    confusing = [
        (prep.pairs[i], scores[i])
        for i in range(len(prep.pairs))
        if prep.y[i] == 0 and scores[i] > 0.3
    ]
    confusing.sort(key=lambda t: -t[1])
    print(f"\nhigh-scoring unmatches (same-family siblings): {len(confusing)}")
    for (left_id, right_id), score in confusing[:5]:
        left_title = prep.dataset.left.get(left_id)["title"]
        right_title = prep.dataset.right.get(right_id)["title"]
        print(f"  γ={score:.3f}  {left_title!r}  vs  {right_title!r}")


if __name__ == "__main__":
    main()
