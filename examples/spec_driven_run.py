"""Spec-driven resolution: describe the pipeline as data, then run it.

A :class:`repro.PipelineSpec` is a versioned, JSON-serializable description
of an entire pipeline — blocking, featurization, model, output handling.
This example builds one in code, round-trips it through a JSON file (the
same format ``python -m repro spec init`` scaffolds and ``--spec``
consumes), runs it, and shows that the spec-built pipeline reproduces the
code-built pipeline exactly.

Run:  python examples/spec_driven_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import BlockingSpec, ModelSpec, OutputSpec, PipelineSpec, ZeroERConfig
from repro.eval import precision_recall_f1


def main() -> None:
    dataset = repro.load_benchmark("rest_fz", scale="small")

    # 1. Describe the pipeline declaratively.
    spec = PipelineSpec(
        blocking=BlockingSpec(
            "token_overlap", {"attribute": "name", "min_overlap": 1, "top_k": 60}
        ),
        model=ModelSpec(config=ZeroERConfig(kappa=0.15)),
        output=OutputSpec(threshold=0.5),
    )
    print("spec as JSON:")
    print(spec.to_json())

    # 2. Round-trip through a file, exactly as the CLI's --spec path does.
    with tempfile.TemporaryDirectory() as tmp:
        path = spec.save(Path(tmp) / "spec.json")
        loaded = repro.load_spec(path)
    assert loaded == spec, "JSON round-trip must be lossless"

    # 3. Run it — repro.resolve accepts a spec (object, dict, or file path).
    result = repro.resolve(dataset.left, dataset.right, spec=loaded)
    print(f"\n{len(result.pairs)} candidate pairs scored")
    print(f"{len(result.matches)} predicted matches at γ > {loaded.output.threshold}")

    # 4. The spec-built pipeline is bit-identical to the code-built one.
    code_built = repro.ERPipeline(blocking_attribute="name").run(
        dataset.left, dataset.right
    )
    assert result.pairs == code_built.pairs
    assert np.array_equal(result.scores, code_built.scores)
    print("spec-built == code-built: identical pairs and scores")

    # 5. Specs also capture existing pipelines for provenance: freeze() embeds
    #    one in the saved artifacts (see manifest.json's "pipeline_spec").
    captured = PipelineSpec.from_pipeline(loaded.build())
    # the capture spells out every default, so compare the built blockers
    assert captured.blocking.build().to_spec() == loaded.blocking.build().to_spec()
    print("from_pipeline() captures an equivalent blocking spec")

    y_true = dataset.labels_for(result.pairs)
    precision, recall, f1 = precision_recall_f1(y_true, result.labels)
    print(f"\nprecision={precision:.3f} recall={recall:.3f} F1={f1:.3f}")


if __name__ == "__main__":
    main()
