"""Bringing your own data: Tables, CSV round-trips, and a custom pipeline.

Shows the pieces a downstream user composes when their data is not one of
the built-in benchmarks: construct ``Table`` objects (or read CSVs), choose
a blocker, optionally pin attribute types, fit ZeroER, and export scored
pairs.

Run:  python examples/custom_data.py
"""

import tempfile
from pathlib import Path

from repro import FeatureGenerator, Table, ZeroER
from repro.blocking import QgramBlocker, TokenOverlapBlocker, UnionBlocker
from repro.data.io import read_csv, write_csv
from repro.features import AttributeType


def build_tables() -> tuple[Table, Table]:
    """Two tiny product catalogs with an obvious correspondence."""
    left = Table(
        [
            {"id": "a1", "name": "acme turbo blender 3000", "price": 89.99},
            {"id": "a2", "name": "acme coffee grinder", "price": 34.50},
            {"id": "a3", "name": "zenith desk lamp", "price": 18.00},
            {"id": "a4", "name": "orion usb microscope", "price": 129.00},
            {"id": "a5", "name": "vulcan cast iron skillet", "price": 42.00},
        ],
        attributes=["name", "price"],
    )
    right = Table(
        [
            {"id": "b1", "name": "acme turbo blender-3000", "price": 84.99},
            {"id": "b2", "name": "acme cofee grinder", "price": 35.00},
            {"id": "b3", "name": "zenith led desk lamp", "price": 19.99},
            {"id": "b4", "name": "meridian stand mixer", "price": 210.00},
            {"id": "b5", "name": "vulcan iron skillet 10in", "price": 41.00},
        ],
        attributes=["name", "price"],
    )
    return left, right


def main() -> None:
    left, right = build_tables()

    # CSV round-trip — how you would actually load your data.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "left.csv"
        write_csv(left, path)
        left = read_csv(path)
    print(f"left attributes: {left.attributes}")

    # Union of a word-level and a typo-tolerant q-gram blocker.
    blocker = UnionBlocker(
        [
            TokenOverlapBlocker("name", min_overlap=1, max_df=1.0),
            QgramBlocker("name", q=3, min_overlap=4, max_df=1.0),
        ]
    )
    pairs = blocker.block(left, right)
    print(f"candidate pairs: {len(pairs)}")

    # Pin the price attribute type (inference would get it right here, but
    # this is how you override it for odd data).
    generator = FeatureGenerator(type_overrides={"price": AttributeType.NUMERIC})
    generator.fit(left, right)
    X = generator.transform(left, right, pairs)
    print(f"features: {generator.feature_names_}")

    # Tiny candidate sets need no transitivity machinery.
    model = ZeroER(transitivity=False)
    model.fit(X, generator.feature_groups_)

    print("\nscored pairs (γ = posterior match probability):")
    for (left_id, right_id), score in sorted(
        zip(pairs, model.match_scores_), key=lambda t: -t[1]
    ):
        marker = "MATCH " if score > 0.5 else "      "
        print(
            f"  {marker} γ={score:.3f}  {left.get(left_id)['name']!r} "
            f"vs {right.get(right_id)['name']!r}"
        )


if __name__ == "__main__":
    main()
