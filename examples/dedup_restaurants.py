"""Deduplication: one dirty table instead of two clean-ish ones.

Merges both sides of the restaurant benchmark into a single table
(duplicates now live *within* the table), runs ZeroER in dedup mode with the
single-model transitivity calibrator, and groups the predicted matches into
entity clusters with union-find.

Run:  python examples/dedup_restaurants.py
"""

import numpy as np

from repro import FeatureGenerator, ZeroER, load_benchmark
from repro.blocking import TokenOverlapBlocker
from repro.eval import connected_components, precision_recall_f1


def main() -> None:
    dataset = load_benchmark("rest_fz", scale="small")
    table, gold = dataset.as_dedup()
    print(f"dirty table: {len(table)} records, {len(gold)} duplicate pairs")

    # Blocking within one table: each unordered pair appears once.
    pairs = TokenOverlapBlocker("name", min_overlap=1, top_k=40).block(table)
    print(f"candidate pairs: {len(pairs)}")

    generator = FeatureGenerator().fit(table)
    X = generator.transform(table, None, pairs)

    model = ZeroER()  # dedup mode: one model, DedupTransitivityCalibrator
    labels = model.fit_predict(X, generator.feature_groups_, pairs)

    gold_canonical = {frozenset(p) for p in gold}
    y_true = np.array([1.0 if frozenset(p) in gold_canonical else 0.0 for p in pairs])
    precision, recall, f1 = precision_recall_f1(y_true, labels)
    print(f"pair-level: P={precision:.3f} R={recall:.3f} F1={f1:.3f}")

    # Cluster predicted matches into entities.
    match_edges = [pair for pair, label in zip(pairs, labels) if label == 1]
    clusters = connected_components(match_edges)
    sizes = sorted((len(c) for c in clusters), reverse=True)
    print(f"\nentity clusters found: {len(clusters)} (sizes: {sizes[:10]}...)")
    for cluster in clusters[:3]:
        print("\n  cluster:")
        for record_id in cluster:
            rec = table.get(record_id)
            print(f"    [{record_id}] {rec['name']} | {rec['address']} | {rec['phone']}")


if __name__ == "__main__":
    main()
