"""Observability tour: trace a resolution run and read its run report.

Attaches the in-memory telemetry sink, runs the full unsupervised pipeline
on the restaurant benchmark, and then walks what the run captured: the
nested span tree (blocking -> featurization -> EM), the metrics registry
(candidate counters, per-feature kernel seconds, Jaro-Winkler cache
hits/misses, EM iterations), and the single versioned run-report JSON
document that ``fit``/``resolve`` embed into frozen artifacts.

With no sink configured all of this instrumentation is a no-op, so
untraced runs pay nothing.

Run:  python examples/traced_run.py
"""

import json

from repro import ERPipeline, configure_telemetry, load_benchmark
from repro.obs import get_sinks, span_tree, validate_report


def print_tree(nodes, indent: int = 0) -> None:
    for node in nodes:
        label = f"{'  ' * indent}{node['name']:<28}"
        extra = ""
        attrs = node["attributes"]
        for key in ("n_pairs", "n_candidates", "n_iterations", "engine"):
            if key in attrs:
                extra += f"  {key}={attrs[key]}"
        print(f"{label}{node['seconds'] * 1e3:8.1f} ms{extra}")
        print_tree(node["children"], indent + 1)


def main() -> None:
    dataset = load_benchmark("rest_fz", scale="small")

    # 1. Attach a sink. "memory" buffers span records in the process;
    #    "jsonl" streams them to a file; "stderr" pretty-prints live.
    memory = configure_telemetry("memory")
    result = ERPipeline(blocking_attribute="name").run(dataset.left, dataset.right)
    configure_telemetry(None)  # detach — later runs are no-ops again
    assert get_sinks() == ()

    # 2. The sink saw every span of the run, parent-linked and timed.
    print(f"captured {len(memory.spans)} spans:\n")
    print_tree(span_tree(memory.spans))

    # 3. The result carries the same telemetry as one versioned JSON
    #    document — the run report (embedded in artifacts by fit/resolve,
    #    printable via `python -m repro report art/`).
    report = validate_report(result.report())
    counters = report["metrics"]["counters"]
    print(f"\nrun report (version {report['report_version']}):")
    print(f"  traced:          {report['traced']}")
    print(f"  stage timings:   { {k: round(v, 3) for k, v in report['timings'].items()} }")
    print(f"  candidate pairs: {counters['blocking.candidate_pairs']}")
    print(f"  matches:         {counters['matching.matches']}")
    print(f"  EM iterations:   {counters['em.iterations']}")

    gauges = report["metrics"]["gauges"]
    jw = {k.rsplit(".", 1)[-1]: v for k, v in gauges.items() if "jw_cache" in k}
    print(f"  JW cache:        {jw}")

    kernels = sorted(
        (k.rsplit(".", 1)[-1], v)
        for k, v in gauges.items()
        if k.startswith("features.kernel_seconds.")
    )
    slowest = sorted(kernels, key=lambda kv: -kv[1])[:3]
    print("  slowest feature kernels:")
    for name, seconds in slowest:
        print(f"    {name:<24} {seconds * 1e3:6.1f} ms")

    # 4. EM's whole trajectory is in the report — likelihoods per iteration.
    em = report["em"]
    print(f"\nEM converged={em['converged']} after {em['n_iterations']} iterations")
    print(f"  log-likelihood: {em['log_likelihoods'][0]:.1f} -> {em['log_likelihoods'][-1]:.1f}")

    # 5. It is plain JSON: ship it to whatever consumes your telemetry.
    doc = json.dumps(report, sort_keys=True)
    print(f"\nserialized run report: {len(doc)} bytes of JSON")


if __name__ == "__main__":
    main()
