"""Streaming entity resolution: fit once, resolve arriving batches forever.

Fits the batch pipeline on an initial dirty table, freezes it into an
:class:`~repro.incremental.IncrementalResolver`, saves the artifacts to
disk, reloads them (as a serving process would), and streams two batches
of newly arriving records into the persistent :class:`EntityStore` —
without ever re-running EM.

Run:  python examples/incremental_updates.py
"""

import tempfile
import time
from pathlib import Path

from repro import IncrementalResolver, load_benchmark
from repro.data.table import Table
from repro import ERPipeline


def main() -> None:
    # 1. A dirty (duplicate-ridden) table: the dedup view of a benchmark,
    #    with the last 30 records held back to arrive later as a stream.
    merged, _ = load_benchmark("rest_fz", scale="small").as_dedup()
    records = list(merged)
    initial = Table(records[:-30], attributes=merged.attributes)
    stream = records[-30:]
    print(f"initial table: {len(initial)} records, {len(stream)} arriving later")

    # 2. Batch fit — the only time EM runs — then freeze the fitted
    #    pipeline into an incremental resolver and persist it.
    pipeline = ERPipeline(blocking_attribute="name")
    pipeline.run(initial)
    resolver = pipeline.freeze()
    print(
        f"fitted: {len(resolver.store)} records resolved into "
        f"{resolver.store.n_entities} entities"
    )

    artifacts = Path(tempfile.mkdtemp()) / "resolver"
    resolver.save(artifacts)
    print(f"artifacts saved to {artifacts}")

    # 3. A fresh process would start here: load the frozen resolver.
    resolver = IncrementalResolver.load(artifacts)

    # 4. Stream two batches of arriving records. Each resolve probes the
    #    incremental index, featurizes only the new candidate pairs, scores
    #    them with the frozen model, and merges matches into the store.
    for n_batch, batch in enumerate((stream[:15], stream[15:]), start=1):
        started = time.perf_counter()
        result = resolver.resolve(batch)
        elapsed = time.perf_counter() - started
        print(
            f"\nbatch {n_batch}: {len(batch)} records in {elapsed * 1000:.1f} ms "
            f"({len(result.pairs)} pairs scored, {len(result.matches)} matches)"
        )
        for rid in result.record_ids:
            entity = result.assignments[rid]
            members = resolver.store.members(entity)
            if len(members) > 1:
                partner = next(m for m in members if m != rid)
                print(
                    f"  {rid} -> {entity}: "
                    f"{resolver.store.get(rid)['name']!r} joins "
                    f"{resolver.store.get(partner)['name']!r}"
                )

    # 5. The store keeps the full resolution state and can be saved again.
    resolver.save(artifacts)
    print(
        f"\nstore now holds {len(resolver.store)} records in "
        f"{resolver.store.n_entities} entities; artifacts updated in place"
    )


if __name__ == "__main__":
    main()
