"""Resolution-as-a-service, end to end, over real sockets.

Fits the batch pipeline on an initial dirty table, freezes it into
artifacts, starts the HTTP serving layer in-process (ephemeral port, same
code path as ``python -m repro serve``), and then acts as a client with
nothing but the standard library: resolve arriving records concurrently
(watching them coalesce into micro-batches), look up the clusters they
joined, ask the model to explain a score, and finally save + hot-reload a
new artifact version — with the service running throughout.

Run:  python examples/serve_client.py
"""

import json
import tempfile
import threading
from pathlib import Path
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from repro import ERPipeline, load_benchmark
from repro.data.table import Table
from repro.serve import BackgroundServer, ServeApp


def call(base_url: str, path: str, method: str = "GET", body: dict | None = None):
    """One JSON round trip; protocol errors come back as (status, envelope)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = Request(base_url + path, data=data, method=method)
    try:
        with urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> None:
    # 1. Fit once on an initial dirty table, holding records back to arrive
    #    later as traffic; freeze into an artifact directory.
    merged, _ = load_benchmark("rest_fz", scale="small").as_dedup()
    records = list(merged)
    base = Table(records[:-12], attributes=merged.attributes)
    arriving = records[-12:]

    pipeline = ERPipeline(blocking_attribute="name")
    pipeline.run(base)
    artifacts = Path(tempfile.mkdtemp()) / "artifacts"
    pipeline.freeze().save(artifacts)
    print(f"fitted on {len(base)} records, artifacts at {artifacts}")

    # 2. Serve them. BackgroundServer runs the same ServeApp the CLI runs,
    #    on a daemon thread with an ephemeral port.
    app = ServeApp(artifacts, port=0, max_wait_ms=25.0)
    with BackgroundServer(app) as server:
        base_url = server.base_url
        status, health = call(base_url, "/healthz")
        print(
            f"serving {health['artifact_version']} on {base_url} "
            f"({health['store']['records']} records, "
            f"{health['store']['entities']} entities)"
        )

        # 3. Concurrent clients: each thread posts one record; the server
        #    coalesces whatever arrives within max_wait_ms into one engine
        #    pass, and each response reports the batch it rode in.
        responses = {}

        def resolve_one(record):
            responses[record["id"]] = call(
                base_url, "/resolve", "POST", {"records": [record]}
            )

        threads = [
            threading.Thread(target=resolve_one, args=(record,))
            for record in arriving
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        batches = {response[1]["batch"]["requests"] for response in responses.values()}
        print(
            f"\nresolved {len(responses)} records from {len(threads)} concurrent "
            f"clients; co-batched request counts seen: {sorted(batches)}"
        )

        # 4. Follow one record into its cluster.
        record_id, (status, payload) = next(iter(sorted(responses.items())))
        entity_id = payload["assignments"][record_id]
        status, cluster = call(base_url, f"/lookup/{entity_id}")
        print(
            f"{record_id} -> {entity_id}: cluster of {len(cluster['members'])} "
            f"({', '.join(sorted(cluster['members']))})"
        )

        # 5. Ask the frozen model to explain a scored pair, if the resolved
        #    record matched an existing one.
        if payload["matches"]:
            left = payload["matches"][0]["left"]
            status, explained = call(
                base_url, f"/explain?left={left}&right={record_id}&top=2"
            )
            print(
                f"explain({left}, {record_id}): posterior "
                f"{explained['posterior']:.4f}, top contributions "
                + ", ".join(
                    f"group {c['group']} "
                    f"{'+' if c['favors_match'] else '-'}"
                    f"{abs(c['log_likelihood_ratio']):.2f}"
                    for c in explained["contributions"]
                )
            )

        # 6. Protocol errors are structured, never tracebacks.
        status, envelope = call(
            base_url, "/resolve", "POST", {"records": [{"id": record_id}]}
        )
        print(f"re-resolving {record_id}: {status} {envelope['error']!r}")

        # 7. Persist the served store as a new artifact version, then
        #    hot-reload onto it — zero downtime, in-flight requests safe.
        status, saved = call(base_url, "/admin/save", "POST")
        status, reloaded = call(base_url, "/admin/reload", "POST")
        print(
            f"\nsaved {saved['saved_version']}, reloaded "
            f"{reloaded['previous_version']} -> {reloaded['version']} "
            f"({reloaded['store_records']} records now durable)"
        )

        status, metrics = call(base_url, "/metrics")
        counters = metrics["metrics"]["counters"]
        print(
            f"served {counters['serve.requests']:.0f} requests in "
            f"{counters['serve.batches']:.0f} engine batches "
            f"({counters['serve.resolved.records']:.0f} records resolved)"
        )


if __name__ == "__main__":
    main()
