"""Record linkage with transitivity: the DBLP-Scholar scenario (paper §5).

The Scholar side holds multiple corrupted copies of the same publication, so
one DBLP record legitimately matches several Scholar records. Matching this
correctly needs the paper's three-model training: a cross-table model F plus
within-table models Fl/Fr whose posteriors close the transitivity triangles.

This example contrasts plain ZeroER (no transitivity) with the coupled
ZeroERLinkage trainer and shows the discovered 1-to-many clusters.

Run:  python examples/publications_linkage.py
"""

from collections import defaultdict

from repro import ZeroERConfig
from repro.eval.harness import prepare_dataset, run_zeroer


def main() -> None:
    # prepare_dataset does blocking + featurization + the within-table
    # candidate sets (co-candidate pairs) that Fl/Fr train on.
    prep = prepare_dataset("pub_ds", scale="small")
    print(f"cross candidates: {prep.n_pairs}")
    print(f"within-left candidates:  {len(prep.left_pairs)}")
    print(f"within-right candidates: {len(prep.right_pairs)}")

    plain = run_zeroer(prep, ZeroERConfig(transitivity=False))
    print(
        f"\nwithout transitivity: P={plain['precision']:.3f} "
        f"R={plain['recall']:.3f} F1={plain['f1']:.3f}"
    )

    coupled = run_zeroer(prep, ZeroERConfig(transitivity=True))
    print(
        f"with F/Fl/Fr coupling: P={coupled['precision']:.3f} "
        f"R={coupled['recall']:.3f} F1={coupled['f1']:.3f}"
    )

    # Show a few 1-to-many clusters the coupled model found.
    by_left = defaultdict(list)
    for pair, label, score in zip(prep.pairs, coupled["labels"], coupled["scores"]):
        if label == 1:
            by_left[pair[0]].append((pair[1], score))
    multi = {l: rs for l, rs in by_left.items() if len(rs) >= 2}
    print(f"\nleft records matched to 2+ right records: {len(multi)}")
    for left_id in list(multi)[:3]:
        title = prep.dataset.left.get(left_id)["title"]
        print(f"\n  DBLP: {title!r}")
        for right_id, score in multi[left_id]:
            right_title = prep.dataset.right.get(right_id)["title"]
            gold = "gold" if prep.dataset.is_match(left_id, right_id) else "WRONG"
            print(f"    γ={score:.3f} [{gold}] Scholar: {right_title!r}")


if __name__ == "__main__":
    main()
