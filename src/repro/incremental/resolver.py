"""Streaming resolution against a frozen model.

:class:`IncrementalResolver` is the serving path the batch pipeline cannot
provide: given a model fitted once (EM never re-runs here), each arriving
batch of records is resolved in time proportional to the *batch*, not the
store — candidates come from the incremental index, only the new candidate
pairs are featurized, and the frozen model scores them via
``predict_proba``. Matches update the entity store's union-find registry,
so transitive merges across batches happen automatically.

Records within one batch can match each other: each record is probed
against the index *before* being added, and earlier records of the batch
are already indexed when later ones probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.linkage import ZeroERLinkage
from repro.core.model import ZeroER
from repro.data.io import write_rows_csv
from repro.features.generator import (
    FeatureGenerator,
    clear_feature_caches,
    validate_feature_engine,
)
from repro.incremental.artifacts import (
    ArtifactError,
    artifact_dir,
    load_artifacts,
    save_artifacts,
)
from repro.incremental.index import IncrementalTokenIndex
from repro.incremental.store import EntityStore
from repro.obs import (
    RunTelemetry,
    add_counter,
    collect_run,
    process_rss_bytes,
    set_gauge,
    span,
    telemetry_active,
)
from repro.reliability.health import (
    EMPTY_CANDIDATE_SET,
    HealthReport,
    health_scope,
    record_condition,
)

__all__ = ["IncrementalResolver", "ResolveResult"]


@dataclass
class ResolveResult:
    """Outcome of resolving one batch of new records."""

    #: Ids of the records added by this batch, in input order.
    record_ids: list
    #: Candidate pairs ``(existing_id, new_id)`` that were scored.
    pairs: list[tuple]
    #: Frozen-model match probabilities, aligned with ``pairs``.
    scores: np.ndarray
    #: Entity id each new record ended up in (post-merge), keyed by record id.
    assignments: dict
    #: Match threshold the resolver applied.
    threshold: float
    #: Per-stage wall-clock seconds (``candidates``/``features``/``scoring``).
    seconds: dict[str, float] = field(default_factory=dict)
    #: Spans/metrics captured while resolving this batch (a
    #: :class:`~repro.obs.report.RunTelemetry`).
    telemetry: object | None = field(default=None, repr=False, compare=False)
    #: Degradations recorded while resolving (a
    #: :class:`~repro.reliability.health.HealthReport`).
    health: object | None = field(default=None, repr=False, compare=False)
    #: Shard/candidate statistics when resolving against a sharded store
    #: (shards touched, pairs per shard, load-budget counters); ``None``
    #: for the unsharded engine.
    shard_stats: dict | None = field(default=None, repr=False, compare=False)

    @property
    def matches(self) -> list[tuple]:
        """The scored pairs that cleared the match threshold."""
        return [
            pair for pair, score in zip(self.pairs, self.scores) if score > self.threshold
        ]

    def __post_init__(self):
        self.scores = np.asarray(self.scores, dtype=np.float64)

    def to_frame(self) -> list[dict]:
        """The batch's assignments as ``{"record_id", "entity_id"}`` row dicts."""
        return [
            {"record_id": rid, "entity_id": self.assignments[rid]}
            for rid in self.record_ids
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write the record → entity assignments to ``path``."""
        rows = ((row["record_id"], row["entity_id"]) for row in self.to_frame())
        return write_rows_csv(path, ("record_id", "entity_id"), rows)

    def report(self) -> dict:
        """The batch resolution as one versioned JSON run-report document."""
        from repro.obs import build_report

        telemetry = self.telemetry
        if telemetry is None:
            telemetry = RunTelemetry(kind="resolve.incremental", traced=False)
        if telemetry.health is None and self.health is not None and len(self.health):
            telemetry.health = self.health.to_dict()
        return build_report(telemetry, self.seconds)


class IncrementalResolver:
    """Resolve arriving records against a frozen model and a live store.

    Parameters
    ----------
    generator:
        Fitted feature generator (frozen — types, idf tables, scales).
    model:
        Fitted :class:`~repro.core.model.ZeroER` or
        :class:`~repro.core.linkage.ZeroERLinkage`; only ``predict_proba``
        is used, EM is never re-run.
    index:
        Incremental candidate index, already covering the store's records.
    store:
        Entity store holding previously resolved records.
    threshold:
        Match probability threshold (default 0.5, the paper's γ > 0.5 rule).
    engine:
        Featurization engine forwarded to
        :meth:`~repro.features.generator.FeatureGenerator.transform`
        (``"batch"`` by default — small arriving batches go through the
        same columnar kernels as the bulk pipeline; ``"per-pair"`` forces
        the reference path, used by the parity tests).
    spec:
        Optional :class:`~repro.api.spec.PipelineSpec` describing the
        pipeline that produced the frozen model — provenance carried into
        saved artifacts (``ERPipeline.freeze`` fills it automatically).
    workers:
        Featurization worker processes (default 1 — the in-process
        reference path). With more, candidate pairs are featurized in
        parallel chunks by a spawn-safe
        :class:`~repro.shard.pool.FeaturePool`; scoring and merging stay
        in this process, so results are bit-identical for any count.
    """

    def __init__(
        self,
        generator: FeatureGenerator,
        model: ZeroER | ZeroERLinkage,
        index: IncrementalTokenIndex,
        store: EntityStore,
        threshold: float = 0.5,
        engine: str = "batch",
        spec=None,
        workers: int = 1,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        validate_feature_engine(engine)
        if len(index) != len(store):
            raise ValueError(
                f"index covers {len(index)} records but the store holds {len(store)}"
            )
        from repro.shard.pool import validate_workers

        self.generator = generator
        self.model = model
        self.index = index
        self.store = store
        self.threshold = float(threshold)
        self.engine = engine
        self.spec = spec
        self.workers = validate_workers(workers)
        self._pool = None

    @property
    def sharded(self) -> bool:
        """Whether this resolver runs on sharded store/index structures."""
        from repro.shard.store import ShardedEntityStore

        return isinstance(self.store, ShardedEntityStore)

    def _feature_pool(self):
        if self._pool is None:
            from repro.shard.pool import FeaturePool

            self._pool = FeaturePool(self.generator.get_state(), self.engine, self.workers)
        return self._pool

    def close(self) -> None:
        """Shut down worker processes, if any were started (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    # -- resolution --------------------------------------------------------------

    def resolve(self, records) -> ResolveResult:
        """Resolve a batch of new records; returns scores and entity assignments.

        Each record is probed against the index, then added to the index and
        store; all retrieved candidate pairs are featurized and scored in one
        vectorized pass, and pairs above the threshold are merged in the
        store. Record ids must be new to the store.
        """
        records = list(records)  # a Table iterates as record dicts
        timings: dict[str, float] = {}
        id_attr = self.store.id_attr

        # Validate the whole batch before touching the index or store, so a
        # bad id cannot leave earlier batch records half-ingested (added but
        # never scored) with no way to retry.
        batch_ids = set()
        for rec in records:
            rid = rec[id_attr]
            if rid in self.store:
                raise ValueError(f"record id {rid!r} is already in the store")
            if rid in batch_ids:
                raise ValueError(f"record id {rid!r} appears twice in the batch")
            batch_ids.add(rid)

        health = HealthReport()
        with collect_run("resolve.incremental", batch_size=len(records)) as col, health_scope(
            health
        ):
            with span("candidates", batch_size=len(records)) as sp:
                pairs: list[tuple] = []
                new_ids = []
                for rec in records:
                    rid = rec[id_attr]
                    pairs.extend(
                        (cand, rid) for cand, _count in self.index.candidates(rec)
                    )
                    self.index.add([rec])
                    self.store.add(rec)
                    new_ids.append(rid)
                sp.set(n_pairs=len(pairs))
            timings["candidates"] = sp.seconds
            if records and not pairs:
                record_condition(
                    EMPTY_CANDIDATE_SET,
                    f"the index produced no candidate pairs for this batch of "
                    f"{len(records)} records; all records form new entities",
                    batch_size=len(records),
                )

            shard_stats = self._shard_stats(pairs) if self.sharded else None

            # Empty batches and batches with no candidates still go through
            # the spans, so reports carry real measured timings — never
            # fabricated zeros.
            with span(
                "features", n_pairs=len(pairs), engine=self.engine, workers=self.workers
            ) as sp:
                if pairs and self.workers > 1:
                    X = self._feature_pool().transform(self.store, pairs)
                elif pairs:
                    X = self.generator.transform(
                        self.store, None, pairs, engine=self.engine
                    )
                else:
                    X = None
            timings["features"] = sp.seconds

            with span("scoring", n_pairs=len(pairs)) as sp:
                if X is not None:
                    scores = self.model.predict_proba(X)
                    n_matches = 0
                    for (a_id, b_id), score in zip(pairs, scores):
                        if score > self.threshold:
                            self.store.merge(a_id, b_id)
                            n_matches += 1
                else:
                    scores = np.zeros(0)
                    n_matches = 0
                sp.set(n_matches=n_matches)
            timings["scoring"] = sp.seconds

            add_counter("resolve.records", len(records))
            add_counter("resolve.candidate_pairs", len(pairs))
            add_counter("resolve.matches", n_matches)
            if telemetry_active():
                self._publish_gauges(shard_stats)

            result = ResolveResult(
                record_ids=new_ids,
                pairs=pairs,
                scores=scores,
                assignments={rid: self.store.entity_of(rid) for rid in new_ids},
                threshold=self.threshold,
                seconds=timings,
                telemetry=RunTelemetry(
                    kind="resolve.incremental",
                    traced=col is not None,
                    # shared by reference: the root span lands after exit
                    spans=col.spans if col is not None else [],
                    context={
                        "batch_size": len(records),
                        "threshold": self.threshold,
                        "engine": self.engine,
                        "store_size": len(self.store),
                    },
                ),
                health=health,
                shard_stats=shard_stats,
            )
        result.telemetry.health = health.to_dict() if len(health) else None
        if col is not None:
            result.telemetry.metrics = col.registry.snapshot()
        return result

    def _shard_stats(self, pairs: list[tuple]) -> dict:
        """Shard/candidate statistics for one batch (sharded engine only)."""
        pairs_per_shard: dict[int, int] = {}
        for existing_id, _new_id in pairs:
            shard = self.store.shard_of(existing_id)
            pairs_per_shard[shard] = pairs_per_shard.get(shard, 0) + 1
        touched = sorted(self.index.drain_touched())
        return {
            "n_shards": self.store.n_shards,
            "workers": self.workers,
            "index_shards_touched": touched,
            "pairs_per_shard": {str(k): v for k, v in sorted(pairs_per_shard.items())},
            "loader": self.store.loader.stats(),
        }

    def _publish_gauges(self, shard_stats: dict | None) -> None:
        """Process- and shard-level gauges for run reports (traced runs only)."""
        rss = process_rss_bytes()
        if rss is not None:
            set_gauge("process.rss_bytes", rss)
        if shard_stats is None:
            return
        set_gauge("shard.count", shard_stats["n_shards"])
        set_gauge("shard.workers", shard_stats["workers"])
        loader = shard_stats["loader"]
        set_gauge("shard.loaded_bytes", loader["loaded_bytes"])
        set_gauge("shard.loaded_shards", loader["loaded_shards"])
        for info in self.store.shard_sizes():
            set_gauge(f"shard.store.records.{info['shard']:04d}", info["records"])

    def clear_caches(self) -> None:
        """Release shared featurization caches (Monge–Elkan token cache).

        Long-running serving processes resolve unbounded record streams; the
        token-similarity cache is an LRU bounded by
        ``REPRO_JW_CACHE_SIZE`` / :func:`repro.features.configure_jw_cache`,
        but callers that want deterministic memory ceilings can drop it
        between batches at a small warm-up cost.
        """
        clear_feature_caches()

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path, report: dict | None = None) -> Path:
        """Persist the full resolver (model artifacts + store + index config).

        Unsharded resolvers embed the store state in the JSON manifest and
        :meth:`load` rebuilds the postings by re-indexing it — they are a
        pure function of the records and index parameters. Sharded
        resolvers instead publish columnar shard containers under
        ``shards/`` in the same atomic version publish; clean shards are
        hardlinked from the previous version rather than rewritten. A run
        report (:meth:`ResolveResult.report`) can be embedded alongside
        the pipeline spec for provenance.
        """
        extra_payload: dict = {
            "threshold": self.threshold,
            "engine": self.engine,
            "workers": self.workers,
            "index": self.index.params(),
        }
        extra_files = None
        payload = None
        if self.sharded:
            from repro.shard.artifacts import (
                payload_meta,
                sharded_payload,
                write_payload_files,
            )

            budget = self.store.loader.budget_bytes
            payload = sharded_payload(
                self.store,
                self.index,
                workers=self.workers,
                load_budget_mb=budget / (1024 * 1024) if budget else None,
            )
            extra_payload["sharded"] = payload_meta(payload)
            extra_files = lambda staging: write_payload_files(staging, payload)  # noqa: E731
        else:
            extra_payload["store"] = self.store.to_state()
        root = save_artifacts(
            path,
            self.generator,
            self.model,
            extra={"resolver": extra_payload},
            spec=self.spec.to_dict() if self.spec is not None else None,
            report=report,
            extra_files=extra_files,
        )
        if payload is not None:
            from repro.shard.artifacts import rebase_after_save

            rebase_after_save(self.store, self.index, artifact_dir(root), payload)
        return root

    @classmethod
    def load(cls, path: str | Path, workers: int | None = None) -> "IncrementalResolver":
        """Restore a resolver saved with :meth:`save`, ready to keep resolving.

        Sharded artifacts load lazily: only the ledger is read here, and
        payload/posting shards stay on disk until a batch's tokens touch
        them. ``workers`` overrides the saved worker count for this
        process (serving and CLI knob). Raises
        :class:`~repro.incremental.artifacts.ArtifactError` — never a raw
        ``KeyError``/numpy traceback — when the artifact is valid but
        carries no resolver state, or its stored state cannot be rebuilt.
        """
        generator, model, manifest = load_artifacts(path)
        try:
            payload = manifest["extra"]["resolver"]
            if payload.get("sharded") is not None:
                from repro.shard.artifacts import load_sharded_state

                store, index = load_sharded_state(artifact_dir(path), payload)
            else:
                store = EntityStore.from_state(payload["store"])
                index = IncrementalTokenIndex.from_params(payload["index"])
                index.add(store.records())
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"artifact at {path} carries no loadable resolver state: {exc}",
                path=Path(path),
                reason="schema",
            ) from exc
        spec_payload = manifest.get("pipeline_spec")
        spec = None
        if spec_payload is not None:
            # deferred import: the api layer imports repro.incremental lazily
            # and vice versa, so neither package costs the other at import time
            from repro.api.spec import PipelineSpec, SpecError

            try:
                spec = PipelineSpec.from_dict(spec_payload)
            except SpecError as exc:
                # the spec is provenance metadata only: an unreadable one
                # (e.g. written by a newer spec version) must not make an
                # otherwise-valid artifact unloadable
                import warnings

                warnings.warn(
                    f"ignoring unreadable pipeline_spec in artifacts: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return cls(
            generator,
            model,
            index,
            store,
            threshold=payload["threshold"],
            # artifacts written before the engine knob existed default to batch
            engine=payload.get("engine", "batch"),
            spec=spec,
            workers=workers if workers is not None else payload.get("workers", 1),
        )
