"""Incremental resolution: fit once, resolve forever.

The batch pipeline re-blocks, re-featurizes, and re-fits EM on every run —
fine for reproducing the paper's tables, unusable for serving arriving
records. This package turns a fitted pipeline into an updatable system:

* :mod:`repro.incremental.artifacts` — save/load frozen model artifacts
  (JSON manifest + ``.npz`` arrays, versioned schema, bit-identical
  ``predict_proba`` after round-trip);
* :mod:`repro.incremental.index` — an inverted token index that grows one
  record at a time and retrieves candidates with the batch blocker's exact
  ranking semantics;
* :mod:`repro.incremental.store` — the persistent
  :class:`~repro.incremental.store.EntityStore`: resolved records plus a
  union-find cluster registry with stable entity ids;
* :mod:`repro.incremental.resolver` — the
  :class:`~repro.incremental.resolver.IncrementalResolver` serving loop:
  retrieve candidates, featurize only the new pairs, score with the frozen
  model, merge matches.

The common entry points are :meth:`repro.api.pipeline.ERPipeline.freeze` and the
``python -m repro fit`` / ``python -m repro resolve`` CLI subcommands.
"""

from repro.incremental.artifacts import (
    SCHEMA_VERSION,
    ArtifactError,
    load_artifacts,
    save_artifacts,
)
from repro.incremental.index import IncrementalTokenIndex
from repro.incremental.resolver import IncrementalResolver, ResolveResult
from repro.incremental.store import EntityStore, StoreSnapshot

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactError",
    "save_artifacts",
    "load_artifacts",
    "IncrementalTokenIndex",
    "EntityStore",
    "StoreSnapshot",
    "IncrementalResolver",
    "ResolveResult",
]
