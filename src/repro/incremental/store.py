"""Persistent entity store: resolved records plus a cluster registry.

:class:`EntityStore` is the system-of-record for incremental resolution. It
holds every resolved record and a union-find partition over record ids;
each cluster carries a *stable* entity id: the id is assigned when a record
first arrives, and a merge always keeps the older of the two entity ids, so
an entity's id never changes as more duplicates of it stream in — only
younger ids disappear into older ones.

The store is safe to share between one writer and many readers (the
serving layer's single-writer/snapshot-reader contract): every mutating
*and* reading method takes an internal re-entrant lock — reads need it too
because ``entity_of`` path-compresses parent pointers — and
:meth:`EntityStore.snapshot` materializes a consistent, immutable
:class:`StoreSnapshot` of the whole partition in one critical section, so a
reader never observes a merge half-applied.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import dataclass
from types import MappingProxyType

from repro.data.table import Table

__all__ = ["EntityStore", "StoreSnapshot"]


@dataclass(frozen=True)
class StoreSnapshot:
    """An immutable, internally consistent view of one instant of a store.

    Produced by :meth:`EntityStore.snapshot` under the store lock: the
    entity partition, the per-record assignments derived from it, and the
    counts all describe the same moment — no merge is ever visible in one
    field but not another.
    """

    #: Records registered at snapshot time.
    n_records: int
    #: Clusters at snapshot time (``== len(entities)``).
    n_entities: int
    #: ``{entity_id: (record_ids, ...)}``, members in insertion order.
    entities: MappingProxyType
    #: ``{record_id: entity_id}`` for every registered record.
    assignments: MappingProxyType

    def entity_of(self, record_id) -> str:
        """Entity id of ``record_id`` at snapshot time (``KeyError`` if absent)."""
        return self.assignments[record_id]


class EntityStore:
    """Record registry with transitive merging and stable entity ids.

    Parameters
    ----------
    id_attr:
        Record-identifier attribute (default ``"id"``). Record ids must be
        unique across everything ever added — for two-table linkage, prefix
        the sides (the generated benchmarks' ``L*``/``R*`` ids already are).
    """

    def __init__(self, id_attr: str = "id"):
        self.id_attr = id_attr
        self._records: dict = {}          # rid -> record dict, insertion-ordered
        self._parent: dict = {}           # union-find parent pointers
        self._rank: dict = {}             # union-by-rank
        self._entity_ord: dict = {}       # root rid -> entity creation counter
        self._next_ord = 0
        # Guards every read and write: path compression means even lookups
        # mutate the parent pointers, so readers must exclude the writer.
        self._lock = threading.RLock()

    # -- growth ----------------------------------------------------------------

    def add(self, record: dict) -> str:
        """Register one record as a fresh singleton entity; returns its entity id."""
        rid = record[self.id_attr]
        with self._lock:
            if rid in self._records:
                raise ValueError(f"record id {rid!r} is already in the store")
            self._records[rid] = dict(record)
            self._parent[rid] = rid
            self._rank[rid] = 0
            self._entity_ord[rid] = self._next_ord
            self._next_ord += 1
            return self._entity_label(self._next_ord - 1)

    def add_records(self, records: Iterable[dict] | Table) -> list[str]:
        """Register many records; returns their (singleton) entity ids."""
        return [self.add(rec) for rec in records]

    # -- union-find --------------------------------------------------------------

    def _find(self, rid):
        root = rid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[rid] != root:  # path compression
            self._parent[rid], rid = root, self._parent[rid]
        return root

    def merge(self, a_id, b_id) -> str:
        """Declare two records the same entity; returns the surviving entity id.

        Merging is transitive through the union-find structure: merging
        (a, b) then (b, c) leaves a, b, c in one cluster. The surviving
        entity id is the *older* of the two clusters' ids, keeping entity
        ids stable as evidence accumulates.
        """
        with self._lock:
            ra, rb = self._find(a_id), self._find(b_id)
            if ra == rb:
                return self._entity_label(self._entity_ord[ra])
            keep_ord = min(self._entity_ord[ra], self._entity_ord[rb])
            if self._rank[ra] < self._rank[rb]:
                ra, rb = rb, ra
            self._parent[rb] = ra
            if self._rank[ra] == self._rank[rb]:
                self._rank[ra] += 1
            self._entity_ord[ra] = keep_ord
            del self._entity_ord[rb]
            return self._entity_label(keep_ord)

    # -- lookup ------------------------------------------------------------------

    @staticmethod
    def _entity_label(ord_: int) -> str:
        return f"e{ord_}"

    def entity_of(self, record_id) -> str:
        """Stable entity id of the cluster containing ``record_id``."""
        with self._lock:
            return self._entity_label(self._entity_ord[self._find(record_id)])

    def members(self, entity_id: str) -> list:
        """Record ids in one entity's cluster (insertion order)."""
        return self.entities().get(entity_id, [])

    def entities(self) -> dict[str, list]:
        """``{entity_id: [record_ids]}`` for every cluster, insertion-ordered."""
        with self._lock:
            out: dict[str, list] = {}
            for rid in self._records:
                out.setdefault(self.entity_of(rid), []).append(rid)
            return out

    def snapshot(self) -> StoreSnapshot:
        """A consistent, immutable view of the current partition.

        Built in one critical section, so a concurrent writer's merges are
        either fully reflected or not at all — never torn across the
        snapshot's fields. This is the read primitive the serving layer's
        lookup/health endpoints use against the live single-writer store.
        """
        with self._lock:
            entities = {eid: tuple(m) for eid, m in self.entities().items()}
            assignments = {
                rid: eid for eid, members in entities.items() for rid in members
            }
            return StoreSnapshot(
                n_records=len(self._records),
                n_entities=len(self._entity_ord),
                entities=MappingProxyType(entities),
                assignments=MappingProxyType(assignments),
            )

    def clusters(self) -> list[frozenset]:
        """The record-id partition as frozensets (for comparing resolutions)."""
        return [frozenset(m) for m in self.entities().values()]

    def get(self, record_id) -> dict:
        """Record with the given id; raises ``KeyError`` if absent."""
        with self._lock:
            return self._records[record_id]

    def records(self) -> list[dict]:
        """All records in insertion order."""
        with self._lock:
            return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id) -> bool:
        return record_id in self._records

    @property
    def n_entities(self) -> int:
        return len(self._entity_ord)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EntityStore(n_records={len(self)}, n_entities={self.n_entities})"

    # -- persistence ---------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot (records, clusters, entity-id counter)."""
        with self._lock:
            return {
                "id_attr": self.id_attr,
                "records": self.records(),
                "entities": {eid: list(m) for eid, m in self.entities().items()},
                "next_ord": self._next_ord,
            }

    @classmethod
    def from_state(cls, state: dict) -> "EntityStore":
        """Rebuild a store from :meth:`to_state` output.

        Records are re-registered in their original insertion order and the
        saved clusters re-merged, so entity ids round-trip exactly.
        """
        store = cls(id_attr=state["id_attr"])
        for rec in state["records"]:
            store.add(rec)
        # re-merging re-derives each cluster's ord from its members' adds,
        # which reproduces the saved entity ids (older member wins)
        for eid, members in state["entities"].items():
            for other in members[1:]:
                merged = store.merge(members[0], other)
            if len(members) > 1 and merged != eid:
                raise ValueError(f"store state is inconsistent: {eid} rebuilt as {merged}")
        store._next_ord = int(state["next_ord"])
        return store
