"""Frozen-model artifacts: save/load a fitted generator + matcher to disk.

An artifact directory is two files:

* ``manifest.json`` — versioned schema: model kind and configuration,
  feature grouping, the generator's fitted state (attribute types, idf
  tables, numeric scales), and any extra payload the caller attaches
  (the incremental resolver stores its entity store and index parameters
  here);
* ``arrays.npz`` — every numeric array of the fitted model (normalization
  statistics, imputation means, mixture means and covariance blocks).

The split keeps the artifact inspectable (the manifest is plain JSON) while
arrays round-trip bit-identically through ``.npz``; JSON floats round-trip
exactly too (``json`` serializes via ``repr``), so a loaded model's
``predict_proba`` equals the original's to the last bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.linkage import ZeroERLinkage
from repro.core.model import ZeroER
from repro.features.generator import FeatureGenerator

__all__ = ["SCHEMA_VERSION", "save_artifacts", "load_artifacts", "ArtifactError"]

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"


class ArtifactError(RuntimeError):
    """Raised when an artifact directory is missing, corrupt, or incompatible."""


def _split_model_state(state: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Separate a fitted-model state dict into JSON metadata and named arrays."""
    mixture = state["mixture"]
    arrays = {
        "norm_mins": state["norm_mins"],
        "norm_maxs": state["norm_maxs"],
        "impute_means": state["impute_means"],
        "match_mean": mixture["match_mean"],
        "unmatch_mean": mixture["unmatch_mean"],
    }
    for c in ("match", "unmatch"):
        for g, block in enumerate(mixture[f"{c}_blocks"]):
            arrays[f"{c}_block_{g}"] = block
    meta = {
        "kind": state["kind"],
        "config": state["config"],
        "groups": state["groups"],
        "prior_match": mixture["prior_match"],
        "n_blocks": len(mixture["match_blocks"]),
    }
    return meta, arrays


def _join_model_state(meta: dict, arrays) -> dict:
    """Inverse of :func:`_split_model_state`."""
    n_blocks = int(meta["n_blocks"])
    return {
        "kind": meta["kind"],
        "config": meta["config"],
        "groups": meta["groups"],
        "norm_mins": arrays["norm_mins"],
        "norm_maxs": arrays["norm_maxs"],
        "impute_means": arrays["impute_means"],
        "mixture": {
            "prior_match": float(meta["prior_match"]),
            "match_mean": arrays["match_mean"],
            "unmatch_mean": arrays["unmatch_mean"],
            "match_blocks": [arrays[f"match_block_{g}"] for g in range(n_blocks)],
            "unmatch_blocks": [arrays[f"unmatch_block_{g}"] for g in range(n_blocks)],
        },
    }


def save_artifacts(
    path: str | Path,
    generator: FeatureGenerator,
    model: ZeroER | ZeroERLinkage,
    extra: dict | None = None,
    spec: dict | None = None,
    report: dict | None = None,
) -> Path:
    """Write a fitted generator + matcher to an artifact directory.

    Parameters
    ----------
    path:
        Directory to create (or reuse — both artifact files are overwritten).
    generator:
        Fitted :class:`~repro.features.generator.FeatureGenerator`.
    model:
        Fitted :class:`~repro.core.model.ZeroER` or
        :class:`~repro.core.linkage.ZeroERLinkage`.
    extra:
        Optional JSON-serializable payload stored under ``"extra"`` in the
        manifest (e.g. the incremental resolver's store and index state).
    spec:
        Optional declarative pipeline description (a
        ``PipelineSpec.to_dict()`` payload) stored under ``"pipeline_spec"``
        — provenance for how the frozen model was produced.
    report:
        Optional run report (``ERResult.report()`` /
        ``ResolveResult.report()`` document) stored under ``"run_report"``
        — the telemetry of the run that produced the artifact.
    """
    from repro import __version__

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    meta, arrays = _split_model_state(model.get_fitted_state())
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "model": meta,
        "generator": generator.get_state(),
        "extra": extra if extra is not None else {},
    }
    if spec is not None:
        manifest["pipeline_spec"] = spec
    if report is not None:
        manifest["run_report"] = report
    with (path / _MANIFEST).open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    np.savez(path / _ARRAYS, **arrays)
    return path


def load_artifacts(
    path: str | Path,
) -> tuple[FeatureGenerator, ZeroER | ZeroERLinkage, dict]:
    """Load ``(generator, model, manifest)`` from an artifact directory.

    The returned model is frozen (inference-only): ``predict_proba`` and
    ``predict`` work, re-fitting does not. The full manifest is returned so
    callers can read their ``extra`` payload.
    """
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(f"{path} is not an artifact directory (no {_MANIFEST})")
    with manifest_path.open("r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    try:
        with np.load(path / _ARRAYS) as arrays:
            state = _join_model_state(manifest["model"], dict(arrays))
    except FileNotFoundError as exc:
        raise ArtifactError(f"{path} is missing {_ARRAYS}") from exc
    kind = state["kind"]
    if kind == "zeroer":
        model: ZeroER | ZeroERLinkage = ZeroER.from_fitted_state(state)
    elif kind == "linkage":
        model = ZeroERLinkage.from_fitted_state(state)
    else:
        raise ArtifactError(f"unknown model kind {kind!r} in manifest")
    generator = FeatureGenerator.from_state(manifest["generator"])
    return generator, model, manifest
