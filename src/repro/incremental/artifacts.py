"""Frozen-model artifacts: crash-safe save/load of a fitted generator + matcher.

An artifact root holds immutable *versions*, each a directory published
atomically, plus a ``CURRENT`` pointer file naming the live one::

    artifacts/
      CURRENT            → "v000002"
      v000002/
        manifest.json    — versioned schema: model kind and configuration,
                           feature grouping, generator state, extra payload
        arrays.npz       — every numeric array of the fitted model
        checksums.json   — sha256 per file, verified at load time

A save stages the new version next to its final name, fsyncs it, publishes
it with one ``rename``, then atomically swaps ``CURRENT``. A crash at any
point leaves either the old version live or the new one — the pointer swap
is the single commit point, and the fault-injection suite
(``tests/test_reliability_faults.py``) proves loads never observe a third
state. Loads verify the checksum manifest first; a directory that fails
validation is quarantined to ``*.corrupt`` and reported as a structured
:class:`ArtifactError` instead of a numpy/json traceback.

The JSON/npz split keeps the artifact inspectable while arrays round-trip
bit-identically; JSON floats round-trip exactly too (``json`` serializes
via ``repr``), so a loaded model's ``predict_proba`` equals the original's
to the last bit. Pre-reliability flat artifacts (``manifest.json`` +
``arrays.npz`` directly in the root, no checksums) remain readable.
"""

from __future__ import annotations

import io
import json
import re
import zipfile
from pathlib import Path

import numpy as np

from repro.core.linkage import ZeroERLinkage
from repro.core.model import ZeroER
from repro.features.generator import FeatureGenerator
from repro.reliability.atomic import (
    IntegrityError,
    atomic_directory,
    atomic_write_text,
    cleanup_stale_tmp,
    quarantine,
    remove_tree,
    retry_io,
    staged_write_bytes,
    verify_checksum_manifest,
    write_checksum_manifest,
)
from repro.reliability.health import ARTIFACT_IO_RETRIED, record_condition

__all__ = [
    "SCHEMA_VERSION",
    "CURRENT_NAME",
    "save_artifacts",
    "load_artifacts",
    "artifact_dir",
    "ArtifactError",
]

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

#: Pointer file in the artifact root naming the live version directory.
CURRENT_NAME = "CURRENT"

#: Version directories retained after a save (the live one and its predecessor).
KEEP_VERSIONS = 2

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_VERSION_RE = re.compile(r"^v(\d{6,})$")

#: Everything a corrupt artifact can throw while being deserialized.
_CORRUPTION_EXCS = (
    OSError,
    ValueError,
    KeyError,
    TypeError,
    EOFError,
    zipfile.BadZipFile,
)


class ArtifactError(RuntimeError):
    """An artifact directory is missing, corrupt, or incompatible.

    Attributes
    ----------
    path:
        The artifact root (or version directory) that failed.
    reason:
        One of ``"missing"`` (no artifact there), ``"integrity"`` (checksum
        manifest failed), ``"corrupt"`` (deserialization failed),
        ``"schema"`` (valid bytes, unsupported schema version or model
        kind).
    quarantined:
        Where the corrupt directory was moved, when quarantine applied.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Path | None = None,
        reason: str = "corrupt",
        quarantined: Path | None = None,
    ):
        super().__init__(message)
        self.path = path
        self.reason = reason
        self.quarantined = quarantined


def _split_model_state(state: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Separate a fitted-model state dict into JSON metadata and named arrays."""
    mixture = state["mixture"]
    arrays = {
        "norm_mins": state["norm_mins"],
        "norm_maxs": state["norm_maxs"],
        "impute_means": state["impute_means"],
        "match_mean": mixture["match_mean"],
        "unmatch_mean": mixture["unmatch_mean"],
    }
    for c in ("match", "unmatch"):
        for g, block in enumerate(mixture[f"{c}_blocks"]):
            arrays[f"{c}_block_{g}"] = block
    meta = {
        "kind": state["kind"],
        "config": state["config"],
        "groups": state["groups"],
        "prior_match": mixture["prior_match"],
        "n_blocks": len(mixture["match_blocks"]),
    }
    return meta, arrays


def _join_model_state(meta: dict, arrays) -> dict:
    """Inverse of :func:`_split_model_state`."""
    n_blocks = int(meta["n_blocks"])
    return {
        "kind": meta["kind"],
        "config": meta["config"],
        "groups": meta["groups"],
        "norm_mins": arrays["norm_mins"],
        "norm_maxs": arrays["norm_maxs"],
        "impute_means": arrays["impute_means"],
        "mixture": {
            "prior_match": float(meta["prior_match"]),
            "match_mean": arrays["match_mean"],
            "unmatch_mean": arrays["unmatch_mean"],
            "match_blocks": [arrays[f"match_block_{g}"] for g in range(n_blocks)],
            "unmatch_blocks": [arrays[f"unmatch_block_{g}"] for g in range(n_blocks)],
        },
    }


def _version_dirs(root: Path) -> list[tuple[int, Path]]:
    """Published version directories under ``root``, oldest first."""
    found = []
    for entry in root.iterdir():
        match = _VERSION_RE.match(entry.name)
        if match and entry.is_dir():
            found.append((int(match.group(1)), entry))
    return sorted(found)


def artifact_dir(path: str | Path) -> Path:
    """The directory actually holding ``manifest.json`` for an artifact root.

    Resolves the ``CURRENT`` pointer for versioned artifacts; returns the
    root itself for the legacy flat layout. Raises :class:`ArtifactError`
    if there is no artifact at ``path``.
    """
    root = Path(path)
    pointer = root / CURRENT_NAME
    if pointer.is_file():
        try:
            name = pointer.read_text(encoding="utf-8").strip()
        except OSError as exc:
            raise ArtifactError(
                f"unreadable {CURRENT_NAME} pointer in {root}: {exc}",
                path=root,
                reason="corrupt",
            ) from exc
        version_dir = root / name
        if not _VERSION_RE.match(name) or not version_dir.is_dir():
            raise ArtifactError(
                f"{CURRENT_NAME} in {root} points at {name!r}, "
                "which is not a published version directory",
                path=root,
                reason="corrupt",
            )
        return version_dir
    if (root / _MANIFEST).is_file():
        return root
    raise ArtifactError(
        f"{root} is not an artifact directory (no {CURRENT_NAME} and no {_MANIFEST})",
        path=root,
        reason="missing",
    )


def _record_retry(exc, attempt):
    record_condition(
        ARTIFACT_IO_RETRIED,
        f"transient I/O failure during artifact write (attempt {attempt + 1}): {exc}",
        severity="info",
    )


def _publish_version(
    root: Path, version: int, manifest: dict, arrays: dict, extra_files=None
) -> Path:
    """Stage + publish one immutable version directory (idempotent on retry)."""
    version_dir = root / f"v{version:06d}"
    if version_dir.exists():
        # A previous attempt published the directory but died before the
        # pointer swap; rebuild it so retries start from a clean slate.
        remove_tree(version_dir)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    with atomic_directory(version_dir) as staging:
        staged_write_bytes(
            staging / _MANIFEST,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        staged_write_bytes(staging / _ARRAYS, buffer.getvalue())
        if extra_files is not None:
            extra_files(staging)
        # top-level files only: payload files written by extra_files (shard
        # containers under shards/) carry per-file hashes in the manifest
        # and are verified lazily on first open
        write_checksum_manifest(staging)
    return version_dir


def save_artifacts(
    path: str | Path,
    generator: FeatureGenerator,
    model: ZeroER | ZeroERLinkage,
    extra: dict | None = None,
    spec: dict | None = None,
    report: dict | None = None,
    extra_files=None,
) -> Path:
    """Write a fitted generator + matcher to an artifact root, crash-safely.

    The new version becomes live only when the ``CURRENT`` pointer is
    atomically replaced; a crash anywhere before that leaves the previous
    version untouched and live. Transient ``OSError`` is retried with
    backoff. Stale temp entries from earlier crashed writers are swept
    first, and versions older than :data:`KEEP_VERSIONS` are pruned after
    the swap (best-effort).

    Parameters
    ----------
    path:
        Artifact root directory to create or update.
    generator:
        Fitted :class:`~repro.features.generator.FeatureGenerator`.
    model:
        Fitted :class:`~repro.core.model.ZeroER` or
        :class:`~repro.core.linkage.ZeroERLinkage`.
    extra:
        Optional JSON-serializable payload stored under ``"extra"`` in the
        manifest (e.g. the incremental resolver's store and index state).
    spec:
        Optional declarative pipeline description (a
        ``PipelineSpec.to_dict()`` payload) stored under ``"pipeline_spec"``
        — provenance for how the frozen model was produced.
    report:
        Optional run report (``ERResult.report()`` /
        ``ResolveResult.report()`` document) stored under ``"run_report"``
        — the telemetry of the run that produced the artifact.
    extra_files:
        Optional callable invoked with the staging directory before the
        checksum manifest is written — the hook the sharded layout uses to
        materialize its ``shards/`` containers inside the same atomic
        publish.
    """
    from repro import __version__

    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    cleanup_stale_tmp(root)
    meta, arrays = _split_model_state(model.get_fitted_state())
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "model": meta,
        "generator": generator.get_state(),
        "extra": extra if extra is not None else {},
    }
    if spec is not None:
        manifest["pipeline_spec"] = spec
    if report is not None:
        manifest["run_report"] = report

    existing = _version_dirs(root)
    version = existing[-1][0] + 1 if existing else 1
    version_dir = retry_io(
        lambda: _publish_version(root, version, manifest, arrays, extra_files),
        on_retry=_record_retry,
    )
    # The commit point: readers follow CURRENT, and this replace is atomic.
    retry_io(
        lambda: atomic_write_text(root / CURRENT_NAME, version_dir.name + "\n"),
        on_retry=_record_retry,
    )
    # Drop superseded versions (and any legacy flat files) — best-effort,
    # never at the expense of the save that already committed.
    for _, old_dir in _version_dirs(root)[:-KEEP_VERSIONS]:
        remove_tree(old_dir)
    for legacy in (root / _MANIFEST, root / _ARRAYS):
        remove_tree(legacy)
    return root


def _quarantine_and_raise(version_dir: Path, message: str, reason: str, cause=None):
    quarantined = None
    if _VERSION_RE.match(version_dir.name):
        quarantined = quarantine(version_dir)
        message += f" (quarantined to {quarantined.name})"
    raise ArtifactError(
        message, path=version_dir, reason=reason, quarantined=quarantined
    ) from cause


def load_artifacts(
    path: str | Path,
) -> tuple[FeatureGenerator, ZeroER | ZeroERLinkage, dict]:
    """Load ``(generator, model, manifest)`` from an artifact root.

    The checksum manifest is verified before anything is deserialized; a
    version directory that fails verification or deserialization is moved
    to ``*.corrupt`` and a structured :class:`ArtifactError` is raised —
    never a raw numpy/json traceback. The returned model is frozen
    (inference-only): ``predict_proba`` and ``predict`` work, re-fitting
    does not. The full manifest is returned so callers can read their
    ``extra`` payload.
    """
    root = Path(path)
    directory = artifact_dir(root)
    versioned = directory != root
    if versioned:
        try:
            verify_checksum_manifest(directory)
        except IntegrityError as exc:
            _quarantine_and_raise(
                directory, f"artifact failed integrity check: {exc}", "integrity", exc
            )
    try:
        with (directory / _MANIFEST).open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except _CORRUPTION_EXCS as exc:
        if versioned:
            _quarantine_and_raise(
                directory, f"unreadable artifact manifest: {exc}", "corrupt", exc
            )
        raise ArtifactError(
            f"unreadable artifact manifest in {directory}: {exc}",
            path=directory,
            reason="corrupt",
        ) from exc
    version = manifest.get("schema_version") if isinstance(manifest, dict) else None
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})",
            path=directory,
            reason="schema",
        )
    try:
        with np.load(directory / _ARRAYS) as arrays:
            state = _join_model_state(manifest["model"], dict(arrays))
        generator = FeatureGenerator.from_state(manifest["generator"])
    except FileNotFoundError as exc:
        message = f"{directory} is missing {_ARRAYS}"
        if versioned:
            _quarantine_and_raise(directory, message, "corrupt", exc)
        raise ArtifactError(message, path=directory, reason="corrupt") from exc
    except _CORRUPTION_EXCS as exc:
        message = f"corrupt artifact in {directory}: {exc}"
        if versioned:
            _quarantine_and_raise(directory, message, "corrupt", exc)
        raise ArtifactError(message, path=directory, reason="corrupt") from exc
    kind = state["kind"]
    if kind == "zeroer":
        model: ZeroER | ZeroERLinkage = ZeroER.from_fitted_state(state)
    elif kind == "linkage":
        model = ZeroERLinkage.from_fitted_state(state)
    else:
        raise ArtifactError(
            f"unknown model kind {kind!r} in manifest",
            path=directory,
            reason="schema",
        )
    return generator, model, manifest
