"""Incremental inverted token index for candidate retrieval.

:class:`IncrementalTokenIndex` is the streaming counterpart of
:class:`~repro.blocking.overlap.TokenOverlapBlocker`: the same token-overlap
candidate scoring (shared via
:func:`~repro.blocking.overlap.rank_overlap_candidates`, including the
descending-overlap/insertion-order ranking contract), but over postings that
grow one record at a time instead of being rebuilt per run.

Document-frequency pruning is applied at *query* time against the current
index size, so a token that starts rare and becomes boilerplate as records
stream in is pruned exactly as a batch rebuild would prune it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np

from repro.blocking.batch import TokenEncoding, sparse_overlap_select
from repro.blocking.overlap import (
    TokenOverlapBlocker,
    rank_overlap_candidates,
    record_tokens,
    validate_overlap_params,
)
from repro.data.table import Table
from repro.text.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.text.tokenizers import tokenizer_from_spec as _tokenizer_from_spec
from repro.text.tokenizers import tokenizer_spec as _tokenizer_spec

__all__ = ["IncrementalTokenIndex"]

#: Import paths kept alive with a DeprecationWarning; the canonical home of
#: the tokenizer spec helpers is :mod:`repro.text.tokenizers`.
_MOVED_TO_TEXT = ("tokenizer_spec", "tokenizer_from_spec")


def __getattr__(name: str):
    if name in _MOVED_TO_TEXT:
        import warnings

        warnings.warn(
            f"repro.incremental.index.{name} moved to repro.text.tokenizers; "
            "update the import — this alias will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.text import tokenizers

        return getattr(tokenizers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class IncrementalTokenIndex:
    """Grow-only inverted index supporting ``add`` / ``candidates``.

    Parameters mirror :class:`~repro.blocking.overlap.TokenOverlapBlocker`
    (attribute, tokenizer, ``min_overlap``, ``max_df``, ``top_k``); ranking
    and pruning semantics are identical, so probing an index built from a
    table returns the same candidates batch blocking would have produced for
    that probe record.
    """

    def __init__(
        self,
        attribute: str,
        tokenizer: Tokenizer | None = None,
        min_overlap: int = 1,
        max_df: float = 0.2,
        top_k: int | None = None,
        id_attr: str = "id",
    ):
        validate_overlap_params(min_overlap, max_df, top_k)
        self.attribute = attribute
        self.tokenizer = tokenizer if tokenizer is not None else WhitespaceTokenizer()
        self.min_overlap = int(min_overlap)
        self.max_df = float(max_df)
        self.top_k = top_k
        self.id_attr = id_attr
        self._postings: dict[str, list] = {}
        self._position: dict = {}  # record id -> insertion order (tie-break)
        self._snapshot = None  # cached TokenEncoding view, dropped on add()

    @classmethod
    def from_blocker(
        cls, blocker: TokenOverlapBlocker, id_attr: str = "id"
    ) -> "IncrementalTokenIndex":
        """An empty index with the same retrieval parameters as ``blocker``."""
        if not isinstance(blocker, TokenOverlapBlocker):
            raise TypeError(
                "incremental candidate retrieval requires a TokenOverlapBlocker; "
                f"got {type(blocker).__name__}"
            )
        return cls(
            blocker.attribute,
            tokenizer=blocker.tokenizer,
            min_overlap=blocker.min_overlap,
            max_df=blocker.max_df,
            top_k=blocker.top_k,
            id_attr=id_attr,
        )

    # -- growth ----------------------------------------------------------------

    def _tokens(self, record: dict) -> set[str]:
        return record_tokens(self.tokenizer, record, self.attribute)

    def add(self, records: Iterable[dict] | Table) -> int:
        """Index ``records``; returns how many were added.

        Re-adding an already-indexed record id raises ``ValueError`` — the
        index is grow-only and duplicated postings would double-count
        overlaps.
        """
        added = 0
        for rec in records:
            rid = rec[self.id_attr]
            if rid in self._position:
                raise ValueError(f"record id {rid!r} is already indexed")
            self._position[rid] = len(self._position)
            for tok in self._tokens(rec):
                self._postings.setdefault(tok, []).append(rid)
            added += 1
        if added:
            self._snapshot = None
        return added

    # -- retrieval -------------------------------------------------------------

    def candidates(self, record: dict, top_k: int | None = None) -> list[tuple]:
        """Ranked ``(record_id, overlap_count)`` candidates for one probe.

        The probe record itself need not (and normally does not) live in the
        index yet; if it does, it is excluded from its own candidates.
        ``top_k`` overrides the index default for this query.
        """
        if not self._position:
            return []
        probe_id = record.get(self.id_attr)
        df_cap = max(1, int(self.max_df * len(self._position)))
        overlap: Counter = Counter()
        for tok in self._tokens(record):
            ids = self._postings.get(tok)
            if ids is None or len(ids) > df_cap:
                continue
            for rid in ids:
                overlap[rid] += 1
        if probe_id is not None:
            overlap.pop(probe_id, None)
        k = self.top_k if top_k is None else top_k
        return rank_overlap_candidates(overlap, self.min_overlap, k, self._position)

    def encoding(self):
        """Sparse snapshot of the current postings as a
        :class:`~repro.blocking.batch.TokenEncoding` target side.

        Built once and cached until the next :meth:`add` — the shared
        encoding layer that lets the batch kernel probe a streaming index.
        """
        if self._snapshot is None:
            self._snapshot = TokenEncoding.from_postings(self._postings, self._position)
        return self._snapshot

    def candidates_batch(
        self, records: Iterable[dict], top_k: int | None = None
    ) -> list[list[tuple]]:
        """Ranked candidates for many probes in one sparse kernel pass.

        Equivalent to calling :meth:`candidates` on each record against the
        *current* index state (no records are added between probes), but
        the overlap counting runs through the columnar kernel of
        :mod:`repro.blocking.batch`. Results are identical, including the
        ranking contract and the exclusion of probes that are already
        indexed from their own candidate lists.
        """
        records = list(records)
        if not records or not self._position:
            return [[] for _ in records]
        target = self.encoding()
        probe = TokenEncoding.encode(
            records,
            self.tokenizer,
            self.attribute,
            id_attr=self.id_attr,
            vocab=target.vocab,
        )
        exclude = np.asarray(
            [self._position.get(rec.get(self.id_attr), -1) for rec in records],
            dtype=np.int64,
        )
        k = self.top_k if top_k is None else top_k
        rows, cols, counts = sparse_overlap_select(
            probe,
            target,
            min_overlap=self.min_overlap,
            max_df=self.max_df,
            top_k=k,
            exclude_cols=exclude,
        )
        out: list[list[tuple]] = [[] for _ in records]
        ids = target.ids
        for r, c, n in zip(rows.tolist(), cols.tolist(), counts.tolist()):
            out[r].append((ids[c], n))
        return out

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, record_id) -> bool:
        return record_id in self._position

    @property
    def n_tokens(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._postings)

    def params(self) -> dict:
        """JSON-serializable retrieval parameters (for artifact manifests)."""
        return {
            "attribute": self.attribute,
            "tokenizer": _tokenizer_spec(self.tokenizer),
            "min_overlap": self.min_overlap,
            "max_df": self.max_df,
            "top_k": self.top_k,
            "id_attr": self.id_attr,
        }

    @classmethod
    def from_params(cls, params: dict) -> "IncrementalTokenIndex":
        """An empty index configured from :meth:`params` output."""
        return cls(
            params["attribute"],
            tokenizer=_tokenizer_from_spec(params["tokenizer"]),
            min_overlap=params["min_overlap"],
            max_df=params["max_df"],
            top_k=params["top_k"],
            id_attr=params["id_attr"],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalTokenIndex({self.attribute!r}, n_records={len(self)}, "
            f"n_tokens={self.n_tokens})"
        )
