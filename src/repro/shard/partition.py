"""Stable shard assignment for tokens and record ids.

Everything here must be deterministic across processes, Python versions,
and machines: a shard layout written once is routed against forever, and
the spawn-based worker pool re-derives assignments in fresh interpreters.
That rules out the builtin ``hash`` (randomized per process by
``PYTHONHASHSEED``) — shard routing goes through BLAKE2b instead, keyed on
a type-tagged byte encoding so ``1`` and ``"1"`` never collide.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "MAX_SHARDS",
    "stable_hash",
    "shard_of_token",
    "shard_of_record",
    "validate_shard_count",
]

#: Upper bound on shard count. Small on purpose: shards exist to bound the
#: working set per probe, not to approximate one-file-per-record, and the
#: per-shard segment/tail bookkeeping stops paying for itself long before
#: this.
MAX_SHARDS = 64


def validate_shard_count(n_shards: int) -> int:
    """Validate and normalize a shard count (``1 <= n <= MAX_SHARDS``)."""
    n = int(n_shards)
    if not 1 <= n <= MAX_SHARDS:
        raise ValueError(f"n_shards must be in [1, {MAX_SHARDS}], got {n_shards}")
    return n


def _key_bytes(key) -> bytes:
    """A type-tagged byte encoding of a token or record id.

    Strings dominate, so they get the cheap path; any other JSON-able id
    (ints in the generated benchmarks) round-trips through ``json.dumps``,
    which is deterministic for scalars.
    """
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    return b"j:" + json.dumps(key, sort_keys=True).encode("utf-8")


def stable_hash(key) -> int:
    """A 64-bit hash of ``key`` that is identical in every process."""
    digest = hashlib.blake2b(_key_bytes(key), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def shard_of_token(token: str, n_shards: int) -> int:
    """The index shard owning ``token``'s posting list."""
    if n_shards == 1:
        return 0
    return stable_hash(token) % n_shards


def shard_of_record(record_id, n_shards: int) -> int:
    """The store shard owning ``record_id``'s payload."""
    if n_shards == 1:
        return 0
    return stable_hash(record_id) % n_shards
