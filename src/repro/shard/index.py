"""Token-hash-sharded inverted index with vectorized probing.

:class:`ShardedTokenIndex` reproduces
:class:`~repro.incremental.index.IncrementalTokenIndex`'s retrieval
contract — query-time document-frequency pruning against the current index
size, ``(-overlap, insertion order)`` ranking, ``top_k`` capping — over
postings partitioned by :func:`~repro.shard.partition.shard_of_token`, so
every token's full posting list lives in exactly one shard and a probe
touches only the shards its tokens hash to.

Two representation choices make the probe vectorizable while keeping
results bit-identical:

* postings store **global insertion positions** (not record ids), so the
  ranking tie-break *is* the posting value and overlap counting is one
  ``np.bincount`` over gathered position arrays;
* each shard is an **LSM-style stack**: immutable sealed segments (CSR
  ``indptr``/``plist`` arrays — the mmap-backed base of a loaded shard is
  simply the oldest segment) plus a small append tail that seals into a
  new segment once it outgrows :data:`SEAL_TAIL_ENTRIES`. A record's
  postings for one token land in exactly one segment, so per-segment
  counts concatenate without cross-segment reconciliation.

Document frequencies are kept globally (they gate pruning before any shard
is touched), which is also what routes a probe: a token with no global df
entry skips shard lookup entirely, so cold shards stay cold until a
batch's tokens actually hash into them.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.blocking.overlap import (
    TokenOverlapBlocker,
    record_tokens,
    validate_overlap_params,
)
from repro.shard.loader import ShardLoadManager
from repro.shard.partition import shard_of_token, validate_shard_count
from repro.shard.storage import ShardFile, unpack_column
from repro.text.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.text.tokenizers import tokenizer_from_spec as _tokenizer_from_spec
from repro.text.tokenizers import tokenizer_spec as _tokenizer_spec

__all__ = ["ShardedTokenIndex", "SEAL_TAIL_ENTRIES"]

#: Tail postings per shard before they seal into an immutable segment.
SEAL_TAIL_ENTRIES = 8192

#: Sealed segments per shard before they compact into one (the base
#: segment, when present, is left out of compactions — it may be mmap).
_MAX_SEGMENTS = 12


class _Segment:
    """One immutable CSR slice of a shard's postings."""

    __slots__ = ("tok_row", "indptr", "plist")

    def __init__(self, tok_row: dict, indptr: np.ndarray, plist: np.ndarray):
        self.tok_row = tok_row  # token -> row in indptr
        self.indptr = indptr
        self.plist = plist  # global insertion positions, append order

    @classmethod
    def from_postings(cls, postings: dict[str, list]) -> "_Segment":
        # Sorted tokens make sealed layout (and therefore saved shard
        # files) byte-deterministic under hash randomization.
        tokens = sorted(postings)
        lens = np.fromiter((len(postings[t]) for t in tokens), dtype=np.int64, count=len(tokens))
        indptr = np.zeros(len(tokens) + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        plist = np.fromiter(
            (g for t in tokens for g in postings[t]), dtype=np.int64, count=int(indptr[-1])
        )
        return cls({t: i for i, t in enumerate(tokens)}, indptr, plist)

    def slices_of(self, token: str):
        row = self.tok_row.get(token)
        if row is None:
            return None
        return self.plist[self.indptr[row] : self.indptr[row + 1]]

    def postings(self) -> dict[str, np.ndarray]:
        return {t: self.slices_of(t) for t in self.tok_row}

    @property
    def n_entries(self) -> int:
        return int(self.indptr[-1])


class _IndexShard:
    """One token shard: optional mmap base segment + sealed segments + tail."""

    def __init__(self, shard_id: int, loader: ShardLoadManager):
        self.shard_id = shard_id
        self.loader = loader
        self.segments: list[_Segment] = []
        self.tail: dict[str, list] = {}
        self.tail_entries = 0
        self.entries_since_base = 0
        self.base_path: Path | None = None
        self.base_sha256: str | None = None
        self.base_nbytes = 0
        self.base_entries = 0
        self._base: _Segment | None = None
        self._shard_file: ShardFile | None = None

    # -- base lifecycle --------------------------------------------------------

    def attach_base(self, path: Path, sha256: str, nbytes: int, n_entries: int) -> None:
        self.base_path = Path(path)
        self.base_sha256 = sha256
        self.base_nbytes = int(nbytes)
        self.base_entries = int(n_entries)

    def _open_base(self) -> _Segment | None:
        if self.base_path is None:
            return None
        key = ("index", self.shard_id)
        if self.loader.touch(key):
            return self._base
        shard = ShardFile(self.base_path, expected_sha256=self.base_sha256)
        tokens = unpack_column(
            shard.segment("tok.kind"), shard.segment("tok.offsets"), shard.segment("tok.blob")
        )
        base = _Segment(
            {t: i for i, t in enumerate(tokens)},
            shard.segment("indptr"),
            shard.segment("plist"),
        )
        self._base = base
        self._shard_file = shard

        def release(shard=shard, owner=self):
            owner._base = None
            owner._shard_file = None
            shard.release()

        # the decoded token table roughly doubles the resident cost of the
        # raw token column; charging the file size keeps accounting simple
        # and errs toward evicting sooner
        self.loader.register(key, shard.nbytes, release)
        return base

    @property
    def base_loaded(self) -> bool:
        return self._base is not None

    @property
    def dirty(self) -> bool:
        """Postings added since the attached base was written (or no base)."""
        return self.base_path is None or self.entries_since_base > 0

    # -- growth ----------------------------------------------------------------

    def append(self, token: str, gpos: int) -> None:
        self.tail.setdefault(token, []).append(gpos)
        self.tail_entries += 1
        self.entries_since_base += 1

    def maybe_seal(self) -> None:
        if self.tail_entries < SEAL_TAIL_ENTRIES:
            return
        self.segments.append(_Segment.from_postings(self.tail))
        self.tail = {}
        self.tail_entries = 0
        if len(self.segments) > _MAX_SEGMENTS:
            merged: dict[str, list] = {}
            for seg in self.segments:
                for tok, arr in seg.postings().items():
                    merged.setdefault(tok, []).extend(arr.tolist())
            self.segments = [_Segment.from_postings(merged)]

    # -- probing ---------------------------------------------------------------

    def gather(self, token: str, parts: list, tail_counts: Counter) -> None:
        """Collect ``token``'s posting arrays into ``parts`` / ``tail_counts``."""
        base = self._base if self._base is not None else self._open_base()
        if base is not None:
            arr = base.slices_of(token)
            if arr is not None:
                parts.append(arr)
        for seg in self.segments:
            arr = seg.slices_of(token)
            if arr is not None:
                parts.append(arr)
        bucket = self.tail.get(token)
        if bucket:
            tail_counts.update(bucket)

    # -- serialization ---------------------------------------------------------

    def merged_postings(self) -> dict[str, list]:
        """Every posting of this shard, per token, in append order."""
        merged: dict[str, list] = {}
        base = self._open_base()
        for seg in ([base] if base is not None else []) + self.segments:
            for tok, arr in seg.postings().items():
                merged.setdefault(tok, []).extend(int(g) for g in arr)
        for tok, bucket in self.tail.items():
            merged.setdefault(tok, []).extend(bucket)
        return merged

    @property
    def n_entries(self) -> int:
        loaded = sum(seg.n_entries for seg in self.segments) + self.tail_entries
        base = self._base.n_entries if self._base is not None else self.base_entries
        return loaded + base


class ShardedTokenIndex:
    """Grow-only sharded index, query-compatible with the unsharded one.

    Constructor parameters match
    :class:`~repro.incremental.index.IncrementalTokenIndex` plus
    ``n_shards`` and an optional shared
    :class:`~repro.shard.loader.ShardLoadManager`.
    """

    def __init__(
        self,
        attribute: str,
        tokenizer: Tokenizer | None = None,
        min_overlap: int = 1,
        max_df: float = 0.2,
        top_k: int | None = None,
        id_attr: str = "id",
        n_shards: int = 2,
        loader: ShardLoadManager | None = None,
    ):
        validate_overlap_params(min_overlap, max_df, top_k)
        self.attribute = attribute
        self.tokenizer = tokenizer if tokenizer is not None else WhitespaceTokenizer()
        self.min_overlap = int(min_overlap)
        self.max_df = float(max_df)
        self.top_k = top_k
        self.id_attr = id_attr
        self.n_shards = validate_shard_count(n_shards)
        self.loader = loader if loader is not None else ShardLoadManager()
        self._shards = [_IndexShard(i, self.loader) for i in range(self.n_shards)]
        self._gdf: dict[str, int] = {}  # token -> global document frequency
        self._position: dict = {}  # record id -> global insertion position
        self._rids: list = []  # global position -> record id
        self._touched: set[int] = set()  # shards probed since last drain

    @classmethod
    def from_blocker(
        cls,
        blocker: TokenOverlapBlocker,
        id_attr: str = "id",
        n_shards: int = 2,
        loader: ShardLoadManager | None = None,
    ) -> "ShardedTokenIndex":
        """An empty sharded index with the same retrieval parameters as ``blocker``."""
        if not isinstance(blocker, TokenOverlapBlocker):
            raise TypeError(
                "incremental candidate retrieval requires a TokenOverlapBlocker; "
                f"got {type(blocker).__name__}"
            )
        return cls(
            blocker.attribute,
            tokenizer=blocker.tokenizer,
            min_overlap=blocker.min_overlap,
            max_df=blocker.max_df,
            top_k=blocker.top_k,
            id_attr=id_attr,
            n_shards=n_shards,
            loader=loader,
        )

    # -- growth ----------------------------------------------------------------

    def _tokens(self, record: dict) -> set[str]:
        return record_tokens(self.tokenizer, record, self.attribute)

    def add(self, records: Iterable[dict]) -> int:
        """Index ``records``; returns how many were added.

        Same grow-only contract as the unsharded index: re-adding an id
        raises ``ValueError``.
        """
        added = 0
        sealable = set()
        for rec in records:
            rid = rec[self.id_attr]
            if rid in self._position:
                raise ValueError(f"record id {rid!r} is already indexed")
            gpos = len(self._rids)
            self._position[rid] = gpos
            self._rids.append(rid)
            for tok in self._tokens(rec):
                shard = self._shards[shard_of_token(tok, self.n_shards)]
                shard.append(tok, gpos)
                sealable.add(shard.shard_id)
                self._gdf[tok] = self._gdf.get(tok, 0) + 1
            added += 1
        for shard_id in sealable:
            self._shards[shard_id].maybe_seal()
        return added

    # -- retrieval -------------------------------------------------------------

    def candidates(self, record: dict, top_k: int | None = None) -> list[tuple]:
        """Ranked ``(record_id, overlap_count)`` candidates for one probe.

        Bit-identical to the unsharded index: the df cap is evaluated
        against the current global size, counts accumulate across every
        shard/segment a token's postings live in, and the final ranking is
        ``(-count, insertion position)`` capped at ``top_k``.
        """
        n = len(self._rids)
        if n == 0:
            return []
        df_cap = max(1, int(self.max_df * n))
        parts: list[np.ndarray] = []
        tail_counts: Counter = Counter()
        for tok in self._tokens(record):
            df = self._gdf.get(tok)
            if df is None or df > df_cap:
                continue
            shard_id = shard_of_token(tok, self.n_shards)
            self._touched.add(shard_id)
            self._shards[shard_id].gather(tok, parts, tail_counts)
        if not parts and not tail_counts:
            return []
        if parts:
            counts = np.bincount(
                np.concatenate(parts) if len(parts) > 1 else parts[0], minlength=n
            )
        else:
            counts = np.zeros(n, dtype=np.int64)
        for gpos, c in tail_counts.items():
            counts[gpos] += c
        probe_id = record.get(self.id_attr)
        if probe_id is not None:
            own = self._position.get(probe_id)
            if own is not None:
                counts[own] = 0
        positions = np.nonzero(counts >= self.min_overlap)[0]
        if positions.size == 0:
            return []
        overlaps = counts[positions]
        order = np.lexsort((positions, -overlaps))
        k = self.top_k if top_k is None else top_k
        if k is not None:
            order = order[:k]
        rids = self._rids
        return [(rids[int(g)], int(c)) for g, c in zip(positions[order], overlaps[order])]

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rids)

    def __contains__(self, record_id) -> bool:
        return record_id in self._position

    @property
    def n_tokens(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._gdf)

    def drain_touched(self) -> set[int]:
        """Shards probed since the last drain (resolve-batch statistics)."""
        touched, self._touched = self._touched, set()
        return touched

    def shard_sizes(self) -> list[dict]:
        """Per-shard posting counts, on-disk bytes, and residency."""
        return [
            {
                "shard": shard.shard_id,
                "entries": shard.n_entries,
                "segments": len(shard.segments),
                "tail_entries": shard.tail_entries,
                "base_bytes": shard.base_nbytes,
                "loaded": shard.base_loaded,
                "dirty": shard.dirty,
            }
            for shard in self._shards
        ]

    def params(self) -> dict:
        """JSON-serializable retrieval parameters (for artifact manifests)."""
        return {
            "attribute": self.attribute,
            "tokenizer": _tokenizer_spec(self.tokenizer),
            "min_overlap": self.min_overlap,
            "max_df": self.max_df,
            "top_k": self.top_k,
            "id_attr": self.id_attr,
            "n_shards": self.n_shards,
        }

    @classmethod
    def from_params(cls, params: dict, loader: ShardLoadManager | None = None):
        """An empty sharded index configured from :meth:`params` output."""
        return cls(
            params["attribute"],
            tokenizer=_tokenizer_from_spec(params["tokenizer"]),
            min_overlap=params["min_overlap"],
            max_df=params["max_df"],
            top_k=params["top_k"],
            id_attr=params["id_attr"],
            n_shards=params.get("n_shards", 2),
            loader=loader,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedTokenIndex({self.attribute!r}, n_records={len(self)}, "
            f"n_tokens={self.n_tokens}, n_shards={self.n_shards})"
        )
