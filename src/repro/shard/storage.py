"""Single-file mmap-able columnar containers for shard payloads.

One shard — a slice of the entity store's record payloads, or one token
shard's posting lists — is one file::

    RSHRD001 | header_len (uint64 LE) | header JSON | segment bytes ...

The header names every segment (a flat numpy array) with its byte offset,
dtype, and shape; segments are 64-byte aligned. A reader memory-maps the
file once and materializes segments with ``np.frombuffer`` over the map —
zero copies, so an untouched shard costs address space, not resident
memory, and the kernel pages in only what a probe actually walks.

Record attribute values (``str | int | float | None``) are packed as a
*column group* of three segments: a per-value kind byte, int64 offsets,
and a concatenated UTF-8 blob. Non-string scalars ride through ``json``
(whose float serialization round-trips exactly), and ``absent`` marks an
attribute a record simply doesn't have, so decoded dicts equal the
originals key-for-key.

Writers emit complete file images as bytes and push them through
:func:`repro.reliability.atomic.staged_write_bytes` inside a staged
version directory, so shard files inherit the artifact layer's crash
safety and fault-injection coverage. Integrity is per file: the writer
returns the sha256 of the image, the manifest records it, and
:meth:`ShardFile.open` verifies lazily — only the shards a batch touches
pay the hashing cost.
"""

from __future__ import annotations

import io
import json
import mmap
from pathlib import Path

import numpy as np

from repro.reliability.atomic import IntegrityError, sha256_file, staged_write_bytes

__all__ = [
    "MAGIC",
    "ShardFile",
    "shard_file_bytes",
    "write_shard_file",
    "pack_column",
    "unpack_column",
    "decode_value",
]

#: Leading file magic; the trailing digits version the container layout.
MAGIC = b"RSHRD001"

_ALIGN = 64

#: Value-kind bytes in packed columns.
_KIND_NONE = 0
_KIND_STR = 1
_KIND_JSON = 2
_KIND_ABSENT = 3


# -- value column codec ------------------------------------------------------------


def pack_column(values: list, *, allow_absent: bool = False) -> dict[str, np.ndarray]:
    """Pack scalar ``values`` into ``{"kind", "offsets", "blob"}`` arrays.

    ``allow_absent`` permits the :data:`_KIND_ABSENT` sentinel (passed as
    the ``ABSENT`` singleton by the store writer) for records that lack the
    attribute entirely — distinct from an explicit ``None`` value.
    """
    kinds = np.empty(len(values), dtype=np.uint8)
    offsets = np.empty(len(values) + 1, dtype=np.int64)
    offsets[0] = 0
    chunks = []
    size = 0
    for i, value in enumerate(values):
        if value is None:
            kinds[i] = _KIND_NONE
            encoded = b""
        elif value is ABSENT:
            if not allow_absent:
                raise ValueError("ABSENT is only valid in record columns")
            kinds[i] = _KIND_ABSENT
            encoded = b""
        elif isinstance(value, str):
            kinds[i] = _KIND_STR
            encoded = value.encode("utf-8")
        else:
            kinds[i] = _KIND_JSON
            encoded = json.dumps(value).encode("utf-8")
        if encoded:
            chunks.append(encoded)
            size += len(encoded)
        offsets[i + 1] = size
    blob = np.frombuffer(b"".join(chunks), dtype=np.uint8) if size else np.empty(0, np.uint8)
    return {"kind": kinds, "offsets": offsets, "blob": blob}


def decode_value(kind: int, payload: memoryview | bytes):
    """Decode one packed value; returns :data:`ABSENT` for absent cells."""
    if kind == _KIND_NONE:
        return None
    if kind == _KIND_STR:
        return str(payload, "utf-8")
    if kind == _KIND_JSON:
        return json.loads(str(payload, "utf-8"))
    if kind == _KIND_ABSENT:
        return ABSENT
    raise ValueError(f"unknown value kind {kind}")


def unpack_column(kind: np.ndarray, offsets: np.ndarray, blob: np.ndarray) -> list:
    """Decode a whole packed column back into Python values."""
    raw = blob.tobytes()
    return [
        decode_value(int(kind[i]), raw[int(offsets[i]) : int(offsets[i + 1])])
        for i in range(len(kind))
    ]


class _Absent:
    """Singleton marking an attribute a record does not carry at all."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ABSENT"


ABSENT = _Absent()


# -- container read/write ----------------------------------------------------------


def shard_file_bytes(segments: dict[str, np.ndarray], meta: dict) -> bytes:
    """Serialize named arrays + JSON metadata into one container image."""
    entries: dict[str, dict] = {}
    offset = 0  # relative to the start of the segment area
    for name, array in segments.items():
        array = np.ascontiguousarray(array)
        offset = -(-offset // _ALIGN) * _ALIGN
        entries[name] = {
            "offset": offset,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }
        offset += array.nbytes
    header = json.dumps({"meta": meta, "segments": entries}, sort_keys=True).encode("utf-8")
    base = len(MAGIC) + 8 + len(header)
    base_aligned = -(-base // _ALIGN) * _ALIGN
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(len(header).to_bytes(8, "little"))
    out.write(header)
    out.write(b"\0" * (base_aligned - base))
    for name, array in segments.items():
        pos = base_aligned + entries[name]["offset"]
        out.write(b"\0" * (pos - out.tell()))
        out.write(np.ascontiguousarray(array).tobytes())
    return out.getvalue()


def write_shard_file(path: str | Path, segments: dict[str, np.ndarray], meta: dict) -> str:
    """Write a container to ``path`` (inside a staging dir); returns its sha256."""
    import hashlib

    data = shard_file_bytes(segments, meta)
    staged_write_bytes(Path(path), data)
    return hashlib.sha256(data).hexdigest()


class ShardFile:
    """A read-only memory-mapped view of one shard container file.

    Segments are materialized as ``np.frombuffer`` views over the map:
    opening a shard reads only the header, and a segment that is never
    touched is never paged in. ``expected_sha256`` (recorded in the
    artifact manifest at save time) is verified before the header is
    trusted — the per-shard, lazy counterpart of the artifact layer's
    ``checksums.json``.
    """

    def __init__(self, path: str | Path, expected_sha256: str | None = None):
        self.path = Path(path)
        if expected_sha256 is not None:
            actual = sha256_file(self.path)
            if actual != expected_sha256:
                raise IntegrityError(
                    f"shard file {self.path.name} failed its checksum "
                    f"(expected {expected_sha256[:12]}…, got {actual[:12]}…)",
                    path=self.path,
                )
        self._handle = open(self.path, "rb")
        try:
            self._map = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            self._handle.close()
            raise
        try:
            if self._map[: len(MAGIC)] != MAGIC:
                raise IntegrityError(
                    f"{self.path.name} is not a shard container (bad magic)",
                    path=self.path,
                )
            header_len = int.from_bytes(self._map[len(MAGIC) : len(MAGIC) + 8], "little")
            base = len(MAGIC) + 8 + header_len
            try:
                header = json.loads(self._map[len(MAGIC) + 8 : base].decode("utf-8"))
                self.meta: dict = header["meta"]
                self._segments: dict = header["segments"]
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                raise IntegrityError(
                    f"unreadable shard header in {self.path.name}: {exc}",
                    path=self.path,
                ) from exc
            self._base = -(-base // _ALIGN) * _ALIGN
            self.nbytes = len(self._map)
        except BaseException:
            self.close()
            raise

    def segment(self, name: str) -> np.ndarray:
        """The named segment as a zero-copy array view over the map."""
        try:
            entry = self._segments[name]
        except KeyError:
            raise KeyError(f"shard file {self.path.name} has no segment {name!r}") from None
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        array = np.frombuffer(
            self._map, dtype=dtype, count=count, offset=self._base + entry["offset"]
        )
        return array.reshape(shape)

    def segment_names(self) -> list[str]:
        """Names of every segment in this container, sorted."""
        return sorted(self._segments)

    def close(self) -> None:
        """Release the map and file handle (idempotent).

        Raises ``BufferError`` if segment views are still alive; eviction
        paths that cannot prove that use :meth:`release` instead.
        """
        if getattr(self, "_map", None) is not None:
            self._map.close()
            self._map = None
        if getattr(self, "_handle", None) is not None:
            self._handle.close()
            self._handle = None

    def release(self) -> None:
        """Drop the file handle and this object's map reference (idempotent).

        Outstanding ``np.frombuffer`` views keep the map itself alive until
        they are garbage-collected — the safe teardown for LRU eviction,
        where a just-probed posting array may still be referenced by an
        in-flight batch.
        """
        if getattr(self, "_handle", None) is not None:
            self._handle.close()
            self._handle = None
        self._map = None

    def __enter__(self) -> "ShardFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardFile({self.path.name!r}, nbytes={self.nbytes})"
