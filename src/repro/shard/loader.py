"""In-process load budget for lazily opened shards.

:class:`ShardLoadManager` is the policy point between "a store larger than
RAM on disk" and "a bounded working set in this process": every shard that
materializes (a payload shard's mmap + decoded header, an index shard's
token table) registers its cost here, and when a configured budget is
exceeded the least-recently-probed *clean* shard is released — its mmap
closed, its decoded caches dropped — to be reopened on the next touch.

Shards carrying unsaved state (overlay records, un-flushed postings) are
never evicted; only reconstructible base state is. A single shard larger
than the whole budget still loads — the budget bounds the steady-state
working set, it is not an admission gate that could wedge a resolve.

Loads, evictions, and resident bytes flow through :mod:`repro.obs`
counters/gauges so run reports and ``/metrics`` can show how much of the
store a workload actually touches.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

from repro.obs import add_counter, set_gauge

__all__ = ["ShardLoadManager"]


class ShardLoadManager:
    """LRU budget over lazily loaded shard resources.

    Parameters
    ----------
    budget_bytes:
        Soft ceiling on the summed cost of loaded shards; ``None`` means
        unbounded (everything stays resident once touched).
    """

    def __init__(self, budget_bytes: int | None = None):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        #: key -> (cost_bytes, release_fn, evictable_fn)
        self._loaded: OrderedDict = OrderedDict()
        self.n_loads = 0
        self.n_evictions = 0
        self.n_hits = 0

    # -- accounting ------------------------------------------------------------

    @property
    def loaded_bytes(self) -> int:
        """Summed cost of everything currently registered."""
        return sum(cost for cost, _, _ in self._loaded.values())

    @property
    def loaded_keys(self) -> list:
        """Keys currently resident, least recently used first."""
        return list(self._loaded)

    def touch(self, key) -> bool:
        """Mark ``key`` as recently used; returns whether it is loaded."""
        if key in self._loaded:
            self._loaded.move_to_end(key)
            self.n_hits += 1
            return True
        return False

    def register(
        self,
        key,
        cost_bytes: int,
        release: Callable[[], None],
        evictable: Callable[[], bool] = lambda: True,
    ) -> None:
        """Account for a freshly loaded shard and evict LRU victims over budget.

        ``release`` is called when this entry is chosen for eviction;
        ``evictable`` lets the owner veto eviction while the shard holds
        state that only exists in memory (dirty overlays).
        """
        self._loaded[key] = (int(cost_bytes), release, evictable)
        self._loaded.move_to_end(key)
        self.n_loads += 1
        add_counter("shard.loads")
        self._enforce(exempt=key)
        set_gauge("shard.loaded_bytes", self.loaded_bytes)

    def unregister(self, key) -> None:
        """Forget ``key`` without calling its release hook."""
        self._loaded.pop(key, None)

    def _enforce(self, exempt=None) -> None:
        if self.budget_bytes is None:
            return
        while self.loaded_bytes > self.budget_bytes:
            victim = next(
                (
                    key
                    for key, (_, _, evictable) in self._loaded.items()
                    if key != exempt and evictable()
                ),
                None,
            )
            if victim is None:
                return  # nothing else can go; over-budget by necessity
            _, release, _ = self._loaded.pop(victim)
            release()
            self.n_evictions += 1
            add_counter("shard.evictions")

    def release_all(self) -> None:
        """Release every registered shard (process shutdown / reload)."""
        while self._loaded:
            _, (_, release, _) = self._loaded.popitem(last=False)
            release()

    def stats(self) -> dict:
        """Counters for run reports and resolve statistics."""
        return {
            "budget_bytes": self.budget_bytes,
            "loaded_bytes": self.loaded_bytes,
            "loaded_shards": len(self._loaded),
            "loads": self.n_loads,
            "evictions": self.n_evictions,
            "hits": self.n_hits,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardLoadManager(loaded={len(self._loaded)}, "
            f"bytes={self.loaded_bytes}, budget={self.budget_bytes})"
        )
