"""Sharded, out-of-core resolution: partitioned store, index, and workers.

The incremental engine of :mod:`repro.incremental` keeps every posting
list, record payload, and union-find pointer in one process's memory. This
package is its scale-out counterpart, built from four orthogonal pieces:

* **partitioning** (:mod:`repro.shard.partition`) — stable, process- and
  machine-independent hashing of tokens and record ids onto shards, so a
  shard layout written by one process routes identically in every other;
* **storage** (:mod:`repro.shard.storage`) — a single mmap-able columnar
  container file per shard, read lazily page-by-page, published through
  the crash-safe staged-directory discipline of :mod:`repro.reliability`;
* **sharded structures** (:mod:`repro.shard.store`,
  :mod:`repro.shard.index`) — drop-in counterparts of
  :class:`~repro.incremental.store.EntityStore` and
  :class:`~repro.incremental.index.IncrementalTokenIndex` that partition
  payloads by record-id hash and postings by token hash while keeping the
  union-find ledger global, so entity ids stay byte-for-byte identical to
  the unsharded engine;
* **workers** (:mod:`repro.shard.pool`) — a spawn-safe multiprocessing
  pool that featurizes candidate-pair chunks in parallel; scores are
  reassembled in pair order and the match merge stays serial, so results
  are bit-identical for any worker count.

The unsharded engine remains the reference: one shard and one worker is
exactly today's code path, and the parity suite holds every shard/worker
combination to bit-identical match sets and entity ids against it.
"""

from repro.shard.artifacts import load_sharded_state, sharded_payload
from repro.shard.index import ShardedTokenIndex
from repro.shard.loader import ShardLoadManager
from repro.shard.partition import (
    MAX_SHARDS,
    shard_of_record,
    shard_of_token,
    stable_hash,
    validate_shard_count,
)
from repro.shard.pool import FeaturePool
from repro.shard.storage import ShardFile, pack_column, unpack_column, write_shard_file
from repro.shard.store import ShardedEntityStore

__all__ = [
    "MAX_SHARDS",
    "stable_hash",
    "shard_of_token",
    "shard_of_record",
    "validate_shard_count",
    "ShardFile",
    "write_shard_file",
    "pack_column",
    "unpack_column",
    "ShardLoadManager",
    "ShardedEntityStore",
    "ShardedTokenIndex",
    "FeaturePool",
    "sharded_payload",
    "load_sharded_state",
]
