"""Spawn-safe multiprocessing pool for parallel featurization.

Featurization dominates a resolve batch once candidate retrieval is
vectorized, and it is embarrassingly parallel: each candidate pair's
feature row depends only on that pair's two records. :class:`FeaturePool`
splits a batch's pair list into contiguous chunks, ships each chunk with
exactly the record payloads it references to a worker, and reassembles the
returned feature rows in original pair order. Scoring and match merging
stay in the parent process — one ``predict_proba`` over the reassembled
matrix, merges applied serially in pair order — so entity ids are
bit-identical for any worker count (the feature kernels are verified
partition-invariant by the parity suite).

Workers are spawned (never forked): each one rebuilds the frozen
:class:`~repro.features.generator.FeatureGenerator` from its
JSON-serializable state in the initializer, so the pool is safe on
platforms without fork and never inherits locks, mmaps, or telemetry
sinks from the parent. The pool is created lazily on first use and torn
down via :meth:`close` or interpreter exit.
"""

from __future__ import annotations

import atexit
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np

__all__ = ["FeaturePool", "MAX_WORKERS", "validate_workers"]

#: Upper bound on worker processes; matched to shard counts, not cores.
MAX_WORKERS = 64

# Per-worker-process state, populated once by _init_worker after spawn.
_WORKER_STATE: dict = {}


def validate_workers(workers: int) -> int:
    """Validate and normalize a worker count (``1 <= n <= MAX_WORKERS``)."""
    n = int(workers)
    if not 1 <= n <= MAX_WORKERS:
        raise ValueError(f"workers must be in [1, {MAX_WORKERS}], got {workers}")
    return n


def _init_worker(generator_state: dict, engine: str) -> None:
    """Rebuild the frozen feature generator inside a spawned worker."""
    from repro.features.generator import FeatureGenerator

    _WORKER_STATE["generator"] = FeatureGenerator.from_state(generator_state)
    _WORKER_STATE["engine"] = engine


def _transform_chunk(task: tuple) -> np.ndarray:
    """Featurize one chunk of pairs against its shipped record payloads."""
    pairs, payload = task
    generator = _WORKER_STATE["generator"]
    return generator.transform(payload, None, pairs, engine=_WORKER_STATE["engine"])


class FeaturePool:
    """A lazy pool of spawned featurization workers.

    Parameters
    ----------
    generator_state:
        Output of ``FeatureGenerator.get_state()`` — JSON-serializable and
        therefore spawn-safe.
    engine:
        Featurization engine name forwarded to every worker's
        ``transform`` calls (the resolver's own engine knob).
    workers:
        Worker process count (>= 1; a 1-worker pool is legal but the
        resolver routes that case through the in-process reference path).
    """

    def __init__(self, generator_state: dict, engine: str, workers: int):
        self.workers = validate_workers(workers)
        self._generator_state = generator_state
        self._engine = engine
        self._executor: ProcessPoolExecutor | None = None
        atexit.register(self.close)

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context("spawn"),
                initializer=_init_worker,
                initargs=(self._generator_state, self._engine),
            )
        return self._executor

    @property
    def started(self) -> bool:
        """Whether worker processes have been spawned yet."""
        return self._executor is not None

    def transform(self, source, pairs: list[tuple]) -> np.ndarray:
        """Featurize ``pairs`` in parallel; rows come back in pair order.

        ``source`` is any record source with ``.get(record_id)`` (an
        :class:`~repro.incremental.store.EntityStore`, its sharded
        counterpart, or a plain dict). Each chunk ships only the records
        it references, so a mostly-cold sharded store pays payload
        decoding once per referenced record, not per worker.
        """
        if not pairs:
            raise ValueError("transform requires at least one pair")
        n_chunks = min(self.workers, len(pairs))
        bounds = [len(pairs) * i // n_chunks for i in range(n_chunks + 1)]
        tasks = []
        for lo, hi in zip(bounds, bounds[1:]):
            chunk = pairs[lo:hi]
            referenced = {rid for pair in chunk for rid in pair}
            payload = {rid: source.get(rid) for rid in referenced}
            tasks.append((chunk, payload))
        executor = self._ensure()
        try:
            blocks = list(executor.map(_transform_chunk, tasks))
        except BrokenExecutor:
            # a killed worker poisons the whole executor; drop it so the
            # next batch starts a fresh pool instead of failing forever
            self.close()
            raise
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "started" if self.started else "cold"
        return f"FeaturePool(workers={self.workers}, {state})"
