"""Sharded artifact layout: columnar shard files under the versioned root.

A sharded resolver publishes through exactly the same crash-safe discipline
as the monolithic one — staged version directory, ``checksums.json``,
atomic ``CURRENT`` swap — with the store/index payloads moved out of the
JSON manifest into mmap-able containers::

    artifacts/
      CURRENT              → "v000003"
      v000003/
        manifest.json      — extra.resolver.sharded: layout + per-file sha256
        arrays.npz         — fitted model arrays (unchanged)
        checksums.json     — covers the version dir's top-level files
        shards/
          ledger.shard     — union-find ledger, insertion order, global dfs
          store-0000.shard — one payload shard (columnar records)
          index-0000.shard — one token shard (CSR postings)
          ...

Shard files live in a subdirectory on purpose: ``checksums.json`` verifies
the top-level files eagerly at load, while each shard records its sha256
in the manifest and is verified lazily on first open — a load never reads
gigabytes of cold shards just to check hashes.

Version-to-version, a shard whose contents did not change (no overlay
records, no new postings) is **hard-linked** from the previous version
directory instead of rewritten, so saving a small batch against a huge
store costs the dirty shards plus the ledger, not a full rewrite. Shard
files are immutable once published, which is what makes link sharing safe;
pruned version directories only drop link counts.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from pathlib import Path

import numpy as np

from repro.shard.index import ShardedTokenIndex
from repro.shard.loader import ShardLoadManager
from repro.shard.storage import ShardFile, pack_column, shard_file_bytes, unpack_column
from repro.shard.store import ShardedEntityStore

__all__ = [
    "SHARD_DIR",
    "sharded_payload",
    "payload_meta",
    "write_payload_files",
    "rebase_after_save",
    "load_sharded_state",
]

#: Subdirectory of a version dir holding the shard containers.
SHARD_DIR = "shards"

_LEDGER = "ledger.shard"


# -- save side ---------------------------------------------------------------------


def _ledger_segments(store: ShardedEntityStore, index: ShardedTokenIndex) -> tuple[dict, dict]:
    """Serialize the global ledger (union-find + insertion order + dfs)."""
    with store._lock:
        rids = list(store._order)
        order_of = {rid: i for i, rid in enumerate(rids)}
        n = len(rids)
        parent = np.empty(n, dtype=np.int64)
        rank = np.empty(n, dtype=np.int64)
        ords = np.full(n, -1, dtype=np.int64)
        shards = np.empty(n, dtype=np.uint8)
        for i, rid in enumerate(rids):
            parent[i] = order_of[store._find(rid)]  # root-compressed
            rank[i] = store._rank[rid]
            shards[i] = store._slot[rid][0]
            ord_ = store._entity_ord.get(rid)
            if ord_ is not None:
                ords[i] = ord_
        next_ord = store._next_ord
    tokens = sorted(index._gdf)
    dfs = np.fromiter((index._gdf[t] for t in tokens), dtype=np.int64, count=len(tokens))
    rid_col = pack_column(rids)
    tok_col = pack_column(tokens)
    segments = {
        "rid.kind": rid_col["kind"],
        "rid.offsets": rid_col["offsets"],
        "rid.blob": rid_col["blob"],
        "shard": shards,
        "parent": parent,
        "rank": rank,
        "ord": ords,
        "tok.kind": tok_col["kind"],
        "tok.offsets": tok_col["offsets"],
        "tok.blob": tok_col["blob"],
        "df": dfs,
    }
    meta = {
        "id_attr": store.id_attr,
        "n_records": n,
        "n_tokens": len(tokens),
        "next_ord": next_ord,
        "n_shards": store.n_shards,
    }
    return segments, meta


def _index_segments(shard) -> tuple[dict, dict]:
    """Serialize one token shard's merged postings as CSR arrays."""
    postings = shard.merged_postings()
    tokens = sorted(postings)
    lens = np.fromiter((len(postings[t]) for t in tokens), dtype=np.int64, count=len(tokens))
    indptr = np.zeros(len(tokens) + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    plist = np.fromiter(
        (g for t in tokens for g in postings[t]), dtype=np.int64, count=int(indptr[-1])
    )
    tok_col = pack_column(tokens)
    segments = {
        "tok.kind": tok_col["kind"],
        "tok.offsets": tok_col["offsets"],
        "tok.blob": tok_col["blob"],
        "indptr": indptr,
        "plist": plist,
    }
    meta = {
        "shard": shard.shard_id,
        "n_tokens": len(tokens),
        "n_entries": int(indptr[-1]),
    }
    return segments, meta


def _prepared_file(name: str, segments: dict, meta: dict) -> dict:
    data = shard_file_bytes(segments, meta)
    return {
        "name": f"{SHARD_DIR}/{name}",
        "sha256": hashlib.sha256(data).hexdigest(),
        "bytes": len(data),
        "_data": data,
    }


def _reused_file(name: str, source: Path, sha256: str) -> dict:
    return {
        "name": f"{SHARD_DIR}/{name}",
        "sha256": sha256,
        "bytes": source.stat().st_size,
        "_link": source,
    }


def sharded_payload(
    store: ShardedEntityStore,
    index: ShardedTokenIndex,
    *,
    workers: int = 1,
    load_budget_mb: float | None = None,
) -> dict:
    """Build the sharded artifact payload: manifest metadata + file images.

    Clean shards (an attached, unmodified base) become hardlink references
    to their current files; dirty shards and the ledger are serialized in
    memory so their checksums can be embedded in the manifest before the
    staged publish begins. Pass the result to :func:`write_payload_files`
    inside the staging directory, and strip the private ``_data``/``_link``
    keys via :func:`payload_meta` for the manifest.
    """
    if store.n_shards != index.n_shards:
        raise ValueError(
            f"store has {store.n_shards} shards but index has {index.n_shards}"
        )
    files: dict = {}
    ledger_segments, ledger_meta = _ledger_segments(store, index)
    files["ledger"] = _prepared_file(_LEDGER, ledger_segments, ledger_meta)
    store_files = []
    for shard in store._shards:
        name = f"store-{shard.shard_id:04d}.shard"
        if not shard.dirty and shard.base_path is not None and shard.base_path.is_file():
            entry = _reused_file(name, shard.base_path, shard.base_sha256)
        else:
            entry = _prepared_file(name, *shard.to_segments(store.id_attr))
        entry["records"] = len(shard)
        store_files.append(entry)
    index_files = []
    for shard in index._shards:
        name = f"index-{shard.shard_id:04d}.shard"
        if not shard.dirty and shard.base_path is not None and shard.base_path.is_file():
            entry = _reused_file(name, shard.base_path, shard.base_sha256)
        else:
            entry = _prepared_file(name, *_index_segments(shard))
        entry["entries"] = shard.n_entries
        index_files.append(entry)
    files["store"] = store_files
    files["index"] = index_files
    return {
        "layout_version": 1,
        "n_shards": store.n_shards,
        "n_records": len(store),
        "workers": int(workers),
        "load_budget_mb": load_budget_mb,
        "files": files,
    }


def payload_meta(payload: dict) -> dict:
    """The manifest-safe view of :func:`sharded_payload` output."""

    def strip(entry: dict) -> dict:
        return {k: v for k, v in entry.items() if not k.startswith("_")}

    files = payload["files"]
    return {
        **{k: v for k, v in payload.items() if k != "files"},
        "files": {
            "ledger": strip(files["ledger"]),
            "store": [strip(e) for e in files["store"]],
            "index": [strip(e) for e in files["index"]],
        },
    }


def write_payload_files(staging: Path, payload: dict) -> None:
    """Materialize the payload inside a staged version directory.

    Prepared images are written through the staged-write failpoints;
    reused shards are hardlinked from the live version (falling back to a
    copy across filesystems or on platforms without ``os.link``).
    """
    from repro.reliability.atomic import staged_write_bytes

    shard_dir = staging / SHARD_DIR
    shard_dir.mkdir()
    entries = [payload["files"]["ledger"], *payload["files"]["store"], *payload["files"]["index"]]
    for entry in entries:
        target = staging / entry["name"]
        if "_data" in entry:
            staged_write_bytes(target, entry["_data"])
        else:
            source = entry["_link"]
            try:
                os.link(source, target)
            except OSError:
                shutil.copyfile(source, target)


def rebase_after_save(
    store: ShardedEntityStore, index: ShardedTokenIndex, version_dir: Path, payload: dict
) -> None:
    """Point in-memory shards at the files just published under ``version_dir``.

    Dirty shards fold their overlays/tails into the new base (bounding
    resident growth across a long-lived serving process); clean shards
    just update their link source so the *next* save can reuse the newest
    copy. Loaded readers for rebased shards are dropped — they reopen
    lazily against the new files.
    """
    for shard, entry in zip(store._shards, payload["files"]["store"]):
        path = version_dir / entry["name"]
        if shard.dirty:
            store.loader.unregister(("store", shard.shard_id))
            shard._release()
            shard.overlay = []
            shard.attach_base(path, entry["sha256"], entry["bytes"], entry["records"])
        else:
            shard.base_path = path
            shard.base_sha256 = entry["sha256"]
    for shard, entry in zip(index._shards, payload["files"]["index"]):
        path = version_dir / entry["name"]
        if shard.dirty:
            index.loader.unregister(("index", shard.shard_id))
            if shard._shard_file is not None:
                shard._shard_file.release()
            shard._base = None
            shard._shard_file = None
            shard.segments = []
            shard.tail = {}
            shard.tail_entries = 0
            shard.entries_since_base = 0
            shard.attach_base(path, entry["sha256"], entry["bytes"], entry["entries"])
        else:
            shard.base_path = path
            shard.base_sha256 = entry["sha256"]


# -- load side ---------------------------------------------------------------------


def load_sharded_state(
    version_dir: Path, resolver_payload: dict
) -> tuple[ShardedEntityStore, ShardedTokenIndex]:
    """Rebuild ``(store, index)`` lazily from a sharded version directory.

    Only the ledger is read here — record payloads and postings stay on
    disk until a batch's tokens route a probe into their shard. The load
    budget (``load_budget_mb`` captured at fit time) is enforced by a
    fresh :class:`~repro.shard.loader.ShardLoadManager` shared by the
    store and index.
    """
    meta = resolver_payload["sharded"]
    n_shards = int(meta["n_shards"])
    budget_mb = meta.get("load_budget_mb")
    loader = ShardLoadManager(
        budget_bytes=int(budget_mb * 1024 * 1024) if budget_mb else None
    )

    ledger_entry = meta["files"]["ledger"]
    with ShardFile(version_dir / ledger_entry["name"], ledger_entry["sha256"]) as ledger:
        lmeta = ledger.meta
        rids = unpack_column(
            ledger.segment("rid.kind"), ledger.segment("rid.offsets"), ledger.segment("rid.blob")
        )
        shard_ids = ledger.segment("shard").tolist()
        parent_idx = ledger.segment("parent").tolist()
        ranks = ledger.segment("rank").tolist()
        ords = ledger.segment("ord").tolist()
        tokens = unpack_column(
            ledger.segment("tok.kind"), ledger.segment("tok.offsets"), ledger.segment("tok.blob")
        )
        dfs = ledger.segment("df").tolist()

    store = ShardedEntityStore(
        id_attr=lmeta["id_attr"], n_shards=n_shards, loader=loader
    )
    slots = [0] * n_shards
    for rid, shard_id in zip(rids, shard_ids):
        store._order.append(rid)
        store._slot[rid] = (shard_id, slots[shard_id])
        slots[shard_id] += 1
    for i, rid in enumerate(rids):
        store._parent[rid] = rids[parent_idx[i]]
        store._rank[rid] = ranks[i]
        if ords[i] >= 0:
            store._entity_ord[rid] = ords[i]
    store._next_ord = int(lmeta["next_ord"])
    for shard, entry in zip(store._shards, meta["files"]["store"]):
        shard.n_base = int(entry["records"])
        shard.attach_base(
            version_dir / entry["name"], entry["sha256"], entry["bytes"], entry["records"]
        )

    index = ShardedTokenIndex.from_params(resolver_payload["index"], loader=loader)
    if index.n_shards != n_shards:
        raise ValueError(
            f"index params declare {index.n_shards} shards, layout has {n_shards}"
        )
    index._rids = list(rids)
    index._position = {rid: i for i, rid in enumerate(rids)}
    index._gdf = dict(zip(tokens, dfs))
    for shard, entry in zip(index._shards, meta["files"]["index"]):
        shard.attach_base(
            version_dir / entry["name"], entry["sha256"], entry["bytes"], entry["entries"]
        )
    return store, index
