"""Sharded entity store: a global union-find ledger over partitioned payloads.

:class:`ShardedEntityStore` keeps exactly the split that makes out-of-core
resolution deterministic:

* the **ledger** — union-find parent/rank pointers, entity ordinals, and
  the record insertion order — is global and in-memory, and runs the same
  merge algorithm as :class:`~repro.incremental.store.EntityStore` (older
  entity ordinal survives a merge), so entity ids are byte-for-byte the
  ids the unsharded engine would assign, no matter how records scatter
  across shards or how many cross-shard edges a batch produces;
* the **record payloads** — the bulky part — are partitioned by a stable
  hash of the record id (:func:`~repro.shard.partition.shard_of_record`)
  into shards, each an immutable mmap-backed base plus an in-memory
  overlay of records added since the last save. A shard whose records no
  batch references is never decoded, and a clean base can be dropped and
  reopened under a :class:`~repro.shard.loader.ShardLoadManager` budget.

Cross-shard merges need no reconciliation protocol: a merge touches only
the ledger, never the payloads, so two records in different shards unify
exactly like two records in the same one.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from pathlib import Path
from types import MappingProxyType

from repro.incremental.store import StoreSnapshot
from repro.shard.loader import ShardLoadManager
from repro.shard.partition import shard_of_record, validate_shard_count
from repro.shard.storage import ABSENT, ShardFile, decode_value, pack_column

__all__ = ["ShardedEntityStore"]


class _PayloadShard:
    """One shard's record payloads: immutable base file + growth overlay."""

    def __init__(self, shard_id: int, loader: ShardLoadManager):
        self.shard_id = shard_id
        self.loader = loader
        self.overlay: list[dict] = []
        self.n_base = 0
        self.base_path: Path | None = None
        self.base_sha256: str | None = None
        self.base_nbytes = 0
        self._file: ShardFile | None = None
        self._columns: list | None = None  # [(name, kind, offsets, blob_bytes)]

    # -- base lifecycle --------------------------------------------------------

    def attach_base(self, path: Path, sha256: str, nbytes: int, n_records: int) -> None:
        self.base_path = Path(path)
        self.base_sha256 = sha256
        self.base_nbytes = int(nbytes)
        self.n_base = int(n_records)

    def _open(self) -> None:
        key = ("store", self.shard_id)
        if self.loader.touch(key):
            return
        shard = ShardFile(self.base_path, expected_sha256=self.base_sha256)
        columns = []
        for i, name in enumerate(shard.meta["columns"]):
            columns.append(
                (
                    name,
                    shard.segment(f"c{i}.kind"),
                    shard.segment(f"c{i}.offsets"),
                    shard.segment(f"c{i}.blob").tobytes(),
                )
            )
        self._file, self._columns = shard, columns
        self.loader.register(key, shard.nbytes, self._release)

    def _release(self) -> None:
        if self._file is not None:
            self._file.release()
        self._file = None
        self._columns = None

    @property
    def base_loaded(self) -> bool:
        return self._file is not None

    @property
    def dirty(self) -> bool:
        """True when this shard holds records that exist only in memory."""
        return bool(self.overlay)

    # -- record access ---------------------------------------------------------

    def get(self, slot: int) -> dict:
        if slot >= self.n_base:
            return self.overlay[slot - self.n_base]
        self._open()
        record = {}
        for name, kind, offsets, blob in self._columns:
            value = decode_value(int(kind[slot]), blob[int(offsets[slot]) : int(offsets[slot + 1])])
            if value is not ABSENT:
                record[name] = value
        return record

    def append(self, record: dict) -> int:
        self.overlay.append(record)
        return self.n_base + len(self.overlay) - 1

    def __len__(self) -> int:
        return self.n_base + len(self.overlay)

    # -- serialization ---------------------------------------------------------

    def to_segments(self, id_attr: str) -> tuple[dict, dict]:
        """``(segments, meta)`` for a full rewrite of this shard's payloads.

        Columns are the union of attributes over the shard's records in
        first-seen order (the id attribute first, for inspectability);
        records that lack an attribute get the ``ABSENT`` sentinel so they
        decode back to dicts equal to the originals.
        """
        records = [self.get(slot) for slot in range(len(self))]
        columns: list = [id_attr]
        seen = {id_attr}
        for rec in records:
            for attr in rec:
                if attr not in seen:
                    seen.add(attr)
                    columns.append(attr)
        segments: dict = {}
        for i, name in enumerate(columns):
            packed = pack_column(
                [rec.get(name, ABSENT) for rec in records], allow_absent=True
            )
            segments[f"c{i}.kind"] = packed["kind"]
            segments[f"c{i}.offsets"] = packed["offsets"]
            segments[f"c{i}.blob"] = packed["blob"]
        meta = {"shard": self.shard_id, "n_records": len(records), "columns": columns}
        return segments, meta


class ShardedEntityStore:
    """Drop-in :class:`~repro.incremental.store.EntityStore` over N shards.

    Parameters
    ----------
    id_attr:
        Record-identifier attribute; ids must be unique forever, as in the
        unsharded store.
    n_shards:
        Payload partition count (1..:data:`~repro.shard.partition.MAX_SHARDS`).
    loader:
        Shared :class:`~repro.shard.loader.ShardLoadManager`; a private
        unbounded one is created when omitted.
    """

    def __init__(
        self,
        id_attr: str = "id",
        n_shards: int = 2,
        loader: ShardLoadManager | None = None,
    ):
        self.id_attr = id_attr
        self.n_shards = validate_shard_count(n_shards)
        self.loader = loader if loader is not None else ShardLoadManager()
        self._shards = [_PayloadShard(i, self.loader) for i in range(self.n_shards)]
        self._order: list = []  # record ids in insertion order
        self._slot: dict = {}  # rid -> (shard_id, slot)
        self._parent: dict = {}
        self._rank: dict = {}
        self._entity_ord: dict = {}
        self._next_ord = 0
        # Same discipline as EntityStore: path compression mutates parent
        # pointers on reads, so readers must exclude the writer too.
        self._lock = threading.RLock()

    # -- growth ----------------------------------------------------------------

    def add(self, record: dict) -> str:
        """Register one record as a fresh singleton entity; returns its entity id."""
        rid = record[self.id_attr]
        with self._lock:
            if rid in self._slot:
                raise ValueError(f"record id {rid!r} is already in the store")
            shard = self._shards[shard_of_record(rid, self.n_shards)]
            slot = shard.append(dict(record))
            self._slot[rid] = (shard.shard_id, slot)
            self._order.append(rid)
            self._parent[rid] = rid
            self._rank[rid] = 0
            self._entity_ord[rid] = self._next_ord
            self._next_ord += 1
            return self._entity_label(self._next_ord - 1)

    def add_records(self, records: Iterable[dict]) -> list[str]:
        """Register many records; returns their (singleton) entity ids."""
        return [self.add(rec) for rec in records]

    # -- union-find (identical algorithm to EntityStore) -----------------------

    def _find(self, rid):
        root = rid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[rid] != root:  # path compression
            self._parent[rid], rid = root, self._parent[rid]
        return root

    def merge(self, a_id, b_id) -> str:
        """Declare two records the same entity; returns the surviving entity id.

        Only the global ledger changes — payload shards are untouched — so
        a merge across shard boundaries is indistinguishable from one
        within a shard, and the surviving id is the older ordinal exactly
        as in the unsharded store.
        """
        with self._lock:
            ra, rb = self._find(a_id), self._find(b_id)
            if ra == rb:
                return self._entity_label(self._entity_ord[ra])
            keep_ord = min(self._entity_ord[ra], self._entity_ord[rb])
            if self._rank[ra] < self._rank[rb]:
                ra, rb = rb, ra
            self._parent[rb] = ra
            if self._rank[ra] == self._rank[rb]:
                self._rank[ra] += 1
            self._entity_ord[ra] = keep_ord
            del self._entity_ord[rb]
            return self._entity_label(keep_ord)

    # -- lookup ------------------------------------------------------------------

    @staticmethod
    def _entity_label(ord_: int) -> str:
        return f"e{ord_}"

    def entity_of(self, record_id) -> str:
        """Stable entity id of the cluster containing ``record_id``."""
        with self._lock:
            return self._entity_label(self._entity_ord[self._find(record_id)])

    def members(self, entity_id: str) -> list:
        """Record ids in one entity's cluster (insertion order)."""
        return self.entities().get(entity_id, [])

    def entities(self) -> dict[str, list]:
        """``{entity_id: [record_ids]}`` for every cluster, insertion-ordered."""
        with self._lock:
            out: dict[str, list] = {}
            for rid in self._order:
                out.setdefault(self.entity_of(rid), []).append(rid)
            return out

    def snapshot(self) -> StoreSnapshot:
        """A consistent, immutable view of the current partition.

        Built from the ledger alone — no payload shard is opened or
        decoded — so serving-layer lookups over a mostly-cold store stay
        cheap.
        """
        with self._lock:
            entities = {eid: tuple(m) for eid, m in self.entities().items()}
            assignments = {
                rid: eid for eid, members in entities.items() for rid in members
            }
            return StoreSnapshot(
                n_records=len(self._order),
                n_entities=len(self._entity_ord),
                entities=MappingProxyType(entities),
                assignments=MappingProxyType(assignments),
            )

    def clusters(self) -> list[frozenset]:
        """The record-id partition as frozensets (for comparing resolutions)."""
        return [frozenset(m) for m in self.entities().values()]

    def get(self, record_id) -> dict:
        """Record with the given id; raises ``KeyError`` if absent.

        Touching a record whose shard is cold opens (and budget-accounts)
        that shard's base file.
        """
        with self._lock:
            shard_id, slot = self._slot[record_id]
            return self._shards[shard_id].get(slot)

    def records(self) -> list[dict]:
        """All records in insertion order (decodes every shard — bulk path)."""
        with self._lock:
            return [self.get(rid) for rid in self._order]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, record_id) -> bool:
        return record_id in self._slot

    @property
    def n_entities(self) -> int:
        """Number of distinct entities across every shard."""
        return len(self._entity_ord)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEntityStore(n_records={len(self)}, n_entities={self.n_entities}, "
            f"n_shards={self.n_shards})"
        )

    # -- shard introspection -----------------------------------------------------

    def shard_of(self, record_id) -> int:
        """Which payload shard holds ``record_id`` (``KeyError`` if absent)."""
        return self._slot[record_id][0]

    def shard_sizes(self) -> list[dict]:
        """Per-shard record counts, on-disk bytes, and residency."""
        return [
            {
                "shard": shard.shard_id,
                "records": len(shard),
                "overlay_records": len(shard.overlay),
                "base_bytes": shard.base_nbytes,
                "loaded": shard.base_loaded,
                "dirty": shard.dirty,
            }
            for shard in self._shards
        ]

    # -- persistence ---------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON snapshot in :meth:`EntityStore.to_state`'s schema (bulk path)."""
        with self._lock:
            return {
                "id_attr": self.id_attr,
                "records": self.records(),
                "entities": {eid: list(m) for eid, m in self.entities().items()},
                "next_ord": self._next_ord,
            }
