"""Feature-matrix normalization and imputation.

The paper min–max normalizes every feature to [0, 1] before fitting (§6).
Similarity functions emit NaN for missing attribute values; those cells are
imputed with the column mean after scaling, the same policy the authors'
released code uses.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_feature_matrix

__all__ = ["MinMaxNormalizer", "impute_nan", "fit_normalization", "apply_normalization"]


def fit_normalization(X) -> tuple["MinMaxNormalizer", np.ndarray, np.ndarray]:
    """Fit the paper's preprocessing and return ``(normalizer, means, prepared)``.

    One shared definition of "scale then impute" so every trainer (dedup and
    linkage) and every frozen artifact stores the same statistics: the fitted
    min–max normalizer, the post-scaling column means (raw ``nanmean`` —
    all-NaN columns stay NaN here and fall back to 0.5 inside
    :func:`impute_nan`), and the fully prepared training matrix.
    """
    normalizer = MinMaxNormalizer().fit(X)
    scaled = normalizer.transform(X)
    with np.errstate(invalid="ignore"):
        impute_means = np.nanmean(scaled, axis=0)
    return normalizer, impute_means, impute_nan(scaled, impute_means)


def apply_normalization(normalizer: "MinMaxNormalizer", impute_means, X) -> np.ndarray:
    """Prepare new rows with training-time statistics (inference path)."""
    return impute_nan(normalizer.transform(X), impute_means)


def impute_nan(X: np.ndarray, column_means: np.ndarray | None = None) -> np.ndarray:
    """Replace NaN cells with per-column means (0.5 for all-NaN columns).

    Pass precomputed ``column_means`` to impute a held-out matrix with the
    training columns' statistics.
    """
    X = check_feature_matrix(X, allow_nan=True)
    out = X.copy()
    if column_means is None:
        with np.errstate(invalid="ignore"):
            column_means = np.nanmean(out, axis=0)
    column_means = np.where(np.isfinite(column_means), column_means, 0.5)
    nan_rows, nan_cols = np.where(np.isnan(out))
    out[nan_rows, nan_cols] = column_means[nan_cols]
    return out


class MinMaxNormalizer:
    """Per-feature min–max scaling to [0, 1] with NaN-aware statistics.

    Fit on one matrix, transform any other with the same columns — needed
    when the model is fitted on an unlabeled subsample and applied to the
    remainder (paper Figure 4c). Constant columns map to 0. Transformed
    values are clipped to [0, 1] so unseen out-of-range values cannot
    destabilize the model.
    """

    def __init__(self):
        self.mins_: np.ndarray | None = None
        self.maxs_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxNormalizer":
        X = check_feature_matrix(X, allow_nan=True)
        with np.errstate(all="ignore"):
            self.mins_ = np.nanmin(X, axis=0)
            self.maxs_ = np.nanmax(X, axis=0)
        # all-NaN columns: make the transform a no-op producing 0
        self.mins_ = np.where(np.isfinite(self.mins_), self.mins_, 0.0)
        self.maxs_ = np.where(np.isfinite(self.maxs_), self.maxs_, 0.0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.mins_ is None or self.maxs_ is None:
            raise RuntimeError("MinMaxNormalizer must be fitted before transform")
        X = check_feature_matrix(X, allow_nan=True)
        if X.shape[1] != self.mins_.shape[0]:
            raise ValueError(
                f"matrix has {X.shape[1]} features, normalizer was fitted on {self.mins_.shape[0]}"
            )
        span = self.maxs_ - self.mins_
        safe_span = np.where(span > 0.0, span, 1.0)
        scaled = (X - self.mins_) / safe_span
        scaled = np.where(span > 0.0, scaled, 0.0)
        # NaN cells stay NaN (impute separately); finite cells are clipped.
        return np.clip(scaled, 0.0, 1.0)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
