"""Attribute type inference.

Magellan infers a type for each aligned attribute and uses it to select
similarity functions (paper §2.1, Figure 1c). We reproduce the same idea
with five types: boolean, numeric, and short / medium / long strings
(split by average word count).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

__all__ = ["AttributeType", "infer_attribute_type"]

_BOOL_TOKENS = {"true", "false", "yes", "no", "0", "1"}


class AttributeType(enum.Enum):
    """Inferred attribute type driving similarity-function selection."""

    BOOLEAN = "boolean"
    NUMERIC = "numeric"
    SHORT_STRING = "short_string"    # ~1 word: names, codes, categories
    MEDIUM_STRING = "medium_string"  # phrases: titles, author lists
    LONG_STRING = "long_string"      # free text: descriptions


def _is_number(value) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    try:
        float(str(value))
        return True
    except (TypeError, ValueError):
        return False


def infer_attribute_type(values: Iterable) -> AttributeType:
    """Infer the type of one attribute from its observed values.

    Missing values (``None``) are ignored. An attribute with no observed
    values defaults to ``SHORT_STRING`` (the most conservative choice: its
    features will all be NaN and get imputed anyway).

    Thresholds: ≤ 1.5 average words → short, ≤ 10 → medium, else long.
    """
    observed = [v for v in values if v is not None]
    if not observed:
        return AttributeType.SHORT_STRING
    if all(isinstance(v, bool) or str(v).strip().lower() in _BOOL_TOKENS for v in observed):
        # all-boolean-ish values; require at least one genuine bool/yes/no to
        # avoid classifying {0, 1}-coded numerics seen once
        if any(isinstance(v, bool) or str(v).strip().lower() in ("true", "false", "yes", "no") for v in observed):
            return AttributeType.BOOLEAN
    if all(_is_number(v) for v in observed):
        return AttributeType.NUMERIC
    avg_words = sum(len(str(v).split()) for v in observed) / len(observed)
    if avg_words <= 1.5:
        return AttributeType.SHORT_STRING
    if avg_words <= 10.0:
        return AttributeType.MEDIUM_STRING
    return AttributeType.LONG_STRING
