"""Magellan-style automatic feature generation.

For each aligned attribute, the generator infers a type
(:mod:`repro.features.types`) and instantiates several similarity features
for it, e.g. both ``title_cos_qgm3`` and ``title_jac_wrd`` for a title
attribute. Multiple features per attribute is precisely what produces the
correlated feature *groups* that ZeroER's block-diagonal covariance models
(paper §3.2, Figure 2); the generator therefore reports the group partition
alongside the matrix.

Featurization is the end-to-end hot path (paper §2.1, §5.5: up to ~100k
blocked pairs per dataset), so :meth:`FeatureGenerator.transform` scores
pair batches columnar by default: each ``(attribute, tokenizer)``
combination is prepared exactly once and shared across all features that
need it (``jac_qgm3`` / ``cos_qgm3`` / ``dice_qgm3`` reuse one
tokenization *and* one intersection pass), and the heavy measures dispatch
to the vectorized kernels in :mod:`repro.text.batch`. The per-pair
``compute`` methods remain both the reference implementation
(``engine="per-pair"``) and the automatic fallback for custom
:class:`PairFeature` subclasses.
"""

from __future__ import annotations

import functools
import math
import os
from collections.abc import Sequence

import numpy as np

from repro.data.table import Table
from repro.obs import add_counter, set_gauge, span, telemetry_active
from repro.features.types import AttributeType, infer_attribute_type
from repro.text.batch import (
    batch_jaro_winkler_indexed,
    batch_levenshtein_similarity_indexed,
    batch_monge_elkan_jw_indexed,
    batch_tfidf_cosine_indexed,
    cosine_from_stats,
    dice_from_stats,
    jaccard_from_stats,
    overlap_from_stats,
    qgram_pair_stats_indexed,
    token_pair_stats_indexed,
)
from repro.text.similarity import (
    build_idf,
    cosine,
    dice,
    exact_match,
    jaccard,
    jaro_winkler,
    levenshtein_similarity,
    monge_elkan,
    numeric_absolute_similarity,
    numeric_relative_similarity,
    overlap_coefficient,
    tfidf_cosine,
)
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer

__all__ = [
    "PairFeature",
    "FeatureGenerator",
    "FEATURE_ENGINES",
    "validate_feature_engine",
    "configure_jw_cache",
    "clear_feature_caches",
    "jw_cache_info",
]

#: Available featurization engines: ``"batch"`` (columnar kernels, the
#: default) and ``"per-pair"`` (the reference scoring loop).
FEATURE_ENGINES = ("batch", "per-pair")


def validate_feature_engine(engine: str) -> None:
    """Reject unknown featurization engine names (shared across the API layers)."""
    if engine not in FEATURE_ENGINES:
        raise ValueError(f"engine must be one of {FEATURE_ENGINES}, got {engine!r}")


_NAN = float("nan")


class PairFeature:
    """One similarity feature: per-record preparation plus a pair scorer.

    Subclasses override :meth:`prepare` (record value → cached
    representation) and :meth:`compute` (two prepared values → similarity in
    [0, 1] or NaN). Built-in subclasses additionally implement
    :meth:`batch_scores` so the generator can score whole pair batches with
    the vectorized kernels; custom subclasses inherit the default (``None``
    → the generator falls back to per-pair :meth:`compute`).
    """

    #: Coarse feature family (``token`` / ``edit`` / ``hybrid`` / ``tfidf``
    #: / ``exact`` / ``numeric``), used by benchmarks for breakdowns.
    family = "custom"

    def __init__(self, name: str, attribute: str):
        self.name = name
        self.attribute = attribute

    def prepare(self, value):
        if value is None:
            return None
        return str(value)

    def compute(self, a, b) -> float:
        raise NotImplementedError

    def batch_scores(self, ctx: "_BatchContext") -> np.ndarray | None:
        """Vectorized column for the context's pair batch, or ``None``.

        ``None`` means "no batch kernel for this feature": the generator
        scores it with :meth:`compute` per pair instead.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class _StringFeature(PairFeature):
    """Edit-based feature on raw strings (Levenshtein, Jaro–Winkler, ...)."""

    family = "edit"

    def __init__(self, name, attribute, sim_func):
        super().__init__(name, attribute)
        self.sim_func = sim_func

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        return float(self.sim_func(a, b))

    def batch_scores(self, ctx):
        if self.sim_func is levenshtein_similarity:
            kernel = batch_levenshtein_similarity_indexed
        elif self.sim_func is jaro_winkler:
            kernel = batch_jaro_winkler_indexed
        else:
            return None
        rows_a, rows_b = ctx.record_strings(self.attribute)
        return kernel(rows_a, ctx.ua, rows_b, ctx.ub)


#: Set-semantics measures with a stats-based batch kernel: they all derive
#: from the same per-pair intersection counts, computed once per
#: ``(attribute, tokenizer)`` and shared through the context.
_SET_MEASURE_KERNELS = {
    jaccard: jaccard_from_stats,
    cosine: cosine_from_stats,
    dice: dice_from_stats,
    overlap_coefficient: overlap_from_stats,
}


class _TokenFeature(PairFeature):
    """Token-based feature; preparation tokenizes once per record.

    Set-semantics measures (Jaccard, cosine, ...) get a prepared frozenset so
    the per-pair call does no conversion work; order-sensitive measures
    (Monge–Elkan) keep the token sequence.
    """

    def __init__(self, name, attribute, sim_func, tokenizer, *, as_set: bool = True):
        super().__init__(name, attribute)
        self.sim_func = sim_func
        self.tokenizer = tokenizer
        self.as_set = as_set
        self.family = "token" if as_set else "hybrid"

    def prepare(self, value):
        if value is None:
            return None
        tokens = self.tokenizer(str(value))
        return frozenset(tokens) if self.as_set else tuple(tokens)

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        return float(self.sim_func(a, b))

    def batch_scores(self, ctx):
        if self.as_set:
            kernel = _SET_MEASURE_KERNELS.get(self.sim_func)
            if kernel is None:
                return None
            return kernel(ctx.token_stats(self.attribute, self.tokenizer))
        if self.sim_func is _monge_elkan_jw:
            rows_a, rows_b = ctx.record_token_tuples(self.attribute, self.tokenizer)
            # None when over the expansion budget → per-pair fallback
            return batch_monge_elkan_jw_indexed(rows_a, ctx.ua, rows_b, ctx.ub)
        return None


def _default_jw_cache_size() -> int:
    """Cache bound for the shared Jaro–Winkler token cache.

    Configurable through the ``REPRO_JW_CACHE_SIZE`` environment variable
    (0 disables caching entirely); malformed values fall back to the
    built-in default.
    """
    raw = os.environ.get("REPRO_JW_CACHE_SIZE")
    if raw is None:
        return 1 << 20
    try:
        return max(0, int(raw))
    except ValueError:
        return 1 << 20


#: Monge–Elkan's inner similarity is evaluated on *tokens*, which repeat
#: heavily across a candidate set; caching turns the quadratic token-pair
#: work into dictionary lookups after warm-up. ``_monge_elkan_jw`` looks the
#: cache up through the module global, so :func:`configure_jw_cache` can
#: swap it at runtime.
_cached_jaro_winkler = functools.lru_cache(maxsize=_default_jw_cache_size())(jaro_winkler)


def configure_jw_cache(maxsize: int | None) -> None:
    """Rebuild the shared Monge–Elkan token cache with a new size bound.

    ``maxsize=None`` means unbounded (only safe for short-lived processes);
    ``0`` disables caching. Replacing the cache also drops all cached
    entries.
    """
    global _cached_jaro_winkler
    _cached_jaro_winkler = functools.lru_cache(maxsize=maxsize)(jaro_winkler)


def clear_feature_caches() -> None:
    """Release the shared token-similarity cache.

    Long-running incremental resolvers call this between batches (see
    :meth:`repro.incremental.resolver.IncrementalResolver.clear_caches`) so
    featurization caches cannot grow without bound.
    """
    _cached_jaro_winkler.cache_clear()


def jw_cache_info() -> dict:
    """Hit/miss statistics of the shared Jaro–Winkler token cache.

    Returns ``{"hits", "misses", "maxsize", "currsize"}`` (the shape of
    ``functools.lru_cache.cache_info``, as a dict). Counts accumulate until
    :func:`clear_feature_caches` or :func:`configure_jw_cache` rebuilds the
    cache; traced transforms export them as ``features.jw_cache.*`` gauges.
    """
    info = _cached_jaro_winkler.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }


def _monge_elkan_jw(a, b) -> float:
    return monge_elkan(a, b, inner=_cached_jaro_winkler, symmetric=True)


class _TfidfFeature(PairFeature):
    """TF-IDF cosine; idf weights are supplied by the fitted generator.

    ``default_idf`` (the fallback weight for unseen tokens) is precomputed
    when the idf table is fitted — recomputing ``max(idf.values())`` per
    pair would cost O(vocabulary) per call.
    """

    family = "tfidf"

    def __init__(self, name, attribute, tokenizer):
        super().__init__(name, attribute)
        self.tokenizer = tokenizer
        self.idf: dict[str, float] = {}
        self.default_idf: float = 1.0

    def set_idf(self, idf: dict[str, float]) -> None:
        """Install a fitted idf table and precompute the unseen-token weight."""
        self.idf = idf
        self.default_idf = max(idf.values(), default=1.0)

    def prepare(self, value):
        if value is None:
            return None
        return self.tokenizer(str(value))

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        return float(tfidf_cosine(a, b, self.idf, default_idf=self.default_idf))

    def batch_scores(self, ctx):
        rows_a, rows_b = ctx.record_token_lists(self.attribute, self.tokenizer)
        return batch_tfidf_cosine_indexed(
            rows_a, ctx.ua, rows_b, ctx.ub, self.idf, self.default_idf
        )


class _ExactFeature(PairFeature):
    family = "exact"

    def compute(self, a, b) -> float:
        return exact_match(a, b)

    def batch_scores(self, ctx):
        strings_a, strings_b = ctx.pair_strings(self.attribute)
        return np.fromiter(
            (
                _NAN if (a is None or b is None) else (1.0 if a == b else 0.0)
                for a, b in zip(strings_a, strings_b)
            ),
            dtype=np.float64,
            count=ctx.n,
        )


def _parse_number(value):
    """Float parse used by numeric features; non-finite → missing."""
    if value is None:
        return None
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        return None
    return parsed if math.isfinite(parsed) else None


class _NumericFeature(PairFeature):
    """Numeric similarity; ``scale`` is set from the data during fit."""

    family = "numeric"

    def __init__(self, name, attribute, kind: str):
        super().__init__(name, attribute)
        if kind not in ("absolute", "relative"):
            raise ValueError(f"unknown numeric feature kind {kind!r}")
        self.kind = kind
        self.scale = 1.0

    def prepare(self, value):
        return _parse_number(value)

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        if self.kind == "absolute":
            return numeric_absolute_similarity(a, b, scale=self.scale)
        return numeric_relative_similarity(a, b)

    def batch_scores(self, ctx):
        a, b = ctx.pair_numbers(self.attribute)
        diff = np.abs(a - b)  # NaN (missing) propagates through
        if self.kind == "absolute":
            if self.scale <= 0:
                raise ValueError(f"scale must be positive, got {self.scale}")
            return np.exp(-diff / self.scale)
        denom = np.maximum(np.abs(a), np.abs(b))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.maximum(0.0, 1.0 - diff / denom)
        return np.where(denom == 0.0, 1.0, out)


def _features_for_type(attribute: str, attr_type: AttributeType) -> list[PairFeature]:
    """The per-type similarity-function table (Magellan's selection logic)."""
    qgm3 = QgramTokenizer(q=3)
    word = WhitespaceTokenizer()
    if attr_type is AttributeType.BOOLEAN:
        return [_ExactFeature(f"{attribute}_exact", attribute)]
    if attr_type is AttributeType.NUMERIC:
        return [
            _NumericFeature(f"{attribute}_abs_sim", attribute, "absolute"),
            _NumericFeature(f"{attribute}_rel_sim", attribute, "relative"),
            _ExactFeature(f"{attribute}_exact", attribute),
        ]
    if attr_type is AttributeType.SHORT_STRING:
        return [
            _StringFeature(f"{attribute}_lev_sim", attribute, levenshtein_similarity),
            _StringFeature(f"{attribute}_jw_sim", attribute, jaro_winkler),
            _TokenFeature(f"{attribute}_jac_qgm3", attribute, jaccard, qgm3),
            _ExactFeature(f"{attribute}_exact", attribute),
        ]
    if attr_type is AttributeType.MEDIUM_STRING:
        return [
            _TokenFeature(f"{attribute}_jac_wrd", attribute, jaccard, word),
            _TokenFeature(f"{attribute}_cos_qgm3", attribute, cosine, qgm3),
            _TokenFeature(f"{attribute}_me_jw", attribute, _monge_elkan_jw, word, as_set=False),
            _TokenFeature(f"{attribute}_dice_qgm3", attribute, dice, qgm3),
        ]
    # LONG_STRING
    return [
        _TokenFeature(f"{attribute}_jac_wrd", attribute, jaccard, word),
        _TokenFeature(f"{attribute}_cos_wrd", attribute, cosine, word),
        _TfidfFeature(f"{attribute}_tfidf_wrd", attribute, word),
        _TokenFeature(f"{attribute}_ovl_wrd", attribute, overlap_coefficient, word),
    ]


def _tokenizer_cache_key(tokenizer) -> tuple:
    """Configuration-level identity so equal tokenizers share preparation.

    Distinct-but-identical tokenizer instances (one per attribute in
    :func:`_features_for_type`, or rebuilt by ``from_state``) must map to
    the same prepared-token cache entry.
    """
    if isinstance(tokenizer, QgramTokenizer):
        return ("qgm", tokenizer.q, tokenizer.padded, tokenizer.lowercase)
    if isinstance(tokenizer, WhitespaceTokenizer):
        return ("wrd", tokenizer.lowercase)
    return ("obj", id(tokenizer))


class _BatchContext:
    """Shared per-``transform`` preparation caches for one pair batch.

    Everything derived from record values — raw strings, token lists, token
    sets, parsed numbers, and per-pair intersection stats — is computed at
    most once per ``(side, attribute, representation)`` and shared by every
    feature column that needs it. Prepared values are exposed both as
    insertion-ordered row lists (for the record-indexed batch kernels,
    addressed by the precomputed ``ua``/``ub`` row indices) and as
    per-record-id dicts (for the per-pair fallback). In dedup mode both
    sides alias the same caches, so the kernels see the *same* row-list
    object and share one encoding.
    """

    def __init__(self, left, right, pairs: Sequence[tuple]):
        self.pairs = pairs
        self.n = len(pairs)
        self.a_ids = [a for a, _ in pairs]
        self.b_ids = [b for _, b in pairs]
        a_idset = set(self.a_ids)
        b_idset = set(self.b_ids)
        self._same = right is None
        if self._same:
            a_idset |= b_idset
        self._recs_a = {rid: left.get(rid) for rid in a_idset}
        self._recs_b = (
            self._recs_a if self._same else {rid: right.get(rid) for rid in b_idset}
        )
        pos_a = {rid: i for i, rid in enumerate(self._recs_a)}
        pos_b = pos_a if self._same else {rid: i for i, rid in enumerate(self._recs_b)}
        #: Per-pair row indices into each side's record-ordered preparations.
        self.ua = np.fromiter((pos_a[i] for i in self.a_ids), dtype=np.int64, count=self.n)
        self.ub = np.fromiter((pos_b[i] for i in self.b_ids), dtype=np.int64, count=self.n)
        self._prep: dict = {}
        self._rows: dict = {}
        self._stats: dict = {}

    # -- cached per-record preparations -------------------------------------

    def prepared(self, side: str, attribute: str, kind, prepare_fn) -> dict:
        """``{record_id: prepare_fn(value)}`` for one side, cached by kind."""
        if self._same:
            side = "a"
        key = (side, attribute, kind)
        found = self._prep.get(key)
        if found is None:
            records = self._recs_a if side == "a" else self._recs_b
            found = {rid: prepare_fn(rec.get(attribute)) for rid, rec in records.items()}
            self._prep[key] = found
        return found

    def _prepared_rows(self, side: str, attribute: str, kind, prepare_fn) -> list:
        """Row-ordered view of :meth:`prepared`, cached so that both sides of
        a dedup batch return the identical list object (the kernels use
        ``is`` to share one encoding)."""
        if self._same:
            side = "a"
        key = (side, attribute, kind)
        rows = self._rows.get(key)
        if rows is None:
            rows = list(self.prepared(side, attribute, kind, prepare_fn).values())
            self._rows[key] = rows
        return rows

    @staticmethod
    def _tokenize_prep(tokenizer):
        """The single (cache kind, prepare fn) pair for one tokenizer config."""
        kind = ("tok", _tokenizer_cache_key(tokenizer))
        return kind, lambda v: None if v is None else tokenizer(str(v))

    def _token_lists(self, side, attribute, tokenizer) -> dict:
        kind, fn = self._tokenize_prep(tokenizer)
        return self.prepared(side, attribute, kind, fn)

    def _derived_tokens(self, side, attribute, tokenizer, kind_tag, convert) -> dict:
        if self._same:
            side = "a"
        key = (side, attribute, (kind_tag, _tokenizer_cache_key(tokenizer)))
        found = self._prep.get(key)
        if found is None:
            lists = self._token_lists(side, attribute, tokenizer)
            found = {
                rid: None if tokens is None else convert(tokens)
                for rid, tokens in lists.items()
            }
            self._prep[key] = found
        return found

    def token_sets(self, side, attribute, tokenizer) -> dict:
        return self._derived_tokens(side, attribute, tokenizer, "set", frozenset)

    def token_tuples(self, side, attribute, tokenizer) -> dict:
        return self._derived_tokens(side, attribute, tokenizer, "tuple", tuple)

    # -- record-indexed views for the batch kernels --------------------------

    @staticmethod
    def _to_str(value):
        return None if value is None else str(value)

    def record_strings(self, attribute: str) -> tuple[list, list]:
        return (
            self._prepared_rows("a", attribute, "str", self._to_str),
            self._prepared_rows("b", attribute, "str", self._to_str),
        )

    def record_token_lists(self, attribute: str, tokenizer) -> tuple[list, list]:
        kind, fn = self._tokenize_prep(tokenizer)
        return (
            self._prepared_rows("a", attribute, kind, fn),
            self._prepared_rows("b", attribute, kind, fn),
        )

    def record_token_tuples(self, attribute: str, tokenizer) -> tuple[list, list]:
        rows = []
        for side in ("a", "b"):
            if self._same:
                side = "a"
            key = (side, attribute, ("tuple-rows", _tokenizer_cache_key(tokenizer)))
            found = self._rows.get(key)
            if found is None:
                found = list(self.token_tuples(side, attribute, tokenizer).values())
                self._rows[key] = found
            rows.append(found)
        return rows[0], rows[1]

    def pair_strings(self, attribute: str) -> tuple[list, list]:
        prep_a = self.prepared("a", attribute, "str", self._to_str)
        prep_b = self.prepared("b", attribute, "str", self._to_str)
        return [prep_a[i] for i in self.a_ids], [prep_b[i] for i in self.b_ids]

    def pair_numbers(self, attribute: str) -> tuple[np.ndarray, np.ndarray]:
        def rows_array(side):
            rows = self._prepared_rows(side, attribute, "num", _parse_number)
            return np.fromiter(
                (_NAN if v is None else v for v in rows), dtype=np.float64, count=len(rows)
            )

        return rows_array("a")[self.ua], rows_array("b")[self.ub]

    def token_stats(self, attribute: str, tokenizer):
        """Shared intersection/size stats for all set measures on this pair.

        Padded q-gram tokenizers take the all-numpy fast path (windows over
        utf-32 code points — no Python token strings are materialized);
        everything else goes through the generic token-list encoder.
        """
        key = (attribute, _tokenizer_cache_key(tokenizer))
        stats = self._stats.get(key)
        if stats is None:
            if isinstance(tokenizer, QgramTokenizer) and (tokenizer.padded or tokenizer.q == 1):
                rows_a, rows_b = self.record_strings(attribute)
                stats = qgram_pair_stats_indexed(
                    rows_a, self.ua, rows_b, self.ub,
                    q=tokenizer.q, padded=tokenizer.padded, lowercase=tokenizer.lowercase,
                )
            else:
                rows_a, rows_b = self.record_token_lists(attribute, tokenizer)
                stats = token_pair_stats_indexed(rows_a, self.ua, rows_b, self.ub)
            self._stats[key] = stats
        return stats

    # -- fallback ------------------------------------------------------------

    def prepared_for(self, spec: PairFeature) -> tuple[dict, dict]:
        """Per-record prepared values for a feature's per-pair fallback.

        Token features read the shared tokenization caches (so e.g.
        Monge–Elkan reuses the word tokens already produced for
        ``jac_wrd``); everything else prepares through the feature's own
        :meth:`PairFeature.prepare`, cached per spec.
        """
        if isinstance(spec, _TokenFeature):
            derived = self.token_sets if spec.as_set else self.token_tuples
            return (
                derived("a", spec.attribute, spec.tokenizer),
                derived("b", spec.attribute, spec.tokenizer),
            )
        kind = ("spec", id(spec))
        return (
            self.prepared("a", spec.attribute, kind, spec.prepare),
            self.prepared("b", spec.attribute, kind, spec.prepare),
        )


def _per_pair_scores(spec: PairFeature, ctx: _BatchContext) -> np.ndarray:
    """Reference scoring loop for one feature over the context's pairs."""
    prep_a, prep_b = ctx.prepared_for(spec)
    out = np.empty(ctx.n, dtype=np.float64)
    for i, (a_id, b_id) in enumerate(ctx.pairs):
        out[i] = spec.compute(prep_a[a_id], prep_b[b_id])
    return out


class FeatureGenerator:
    """Infer attribute types and build similarity feature matrices.

    Usage::

        gen = FeatureGenerator().fit(left, right, attributes)
        X = gen.transform(left, right, candidate_pairs)   # N × d, may contain NaN
        groups = gen.feature_groups_                       # per-attribute index lists

    Parameters
    ----------
    type_overrides:
        Optional ``{attribute: AttributeType}`` to pin types that inference
        would get wrong on unusual data.
    """

    def __init__(self, type_overrides: dict[str, AttributeType] | None = None):
        self.type_overrides = dict(type_overrides or {})
        self.attributes_: list[str] | None = None
        self.attribute_types_: dict[str, AttributeType] | None = None
        self.features_: list[PairFeature] | None = None
        self.feature_groups_: list[list[int]] | None = None

    # -- fitting ---------------------------------------------------------------

    def fit(
        self,
        left: Table,
        right: Table | None = None,
        attributes: Sequence[str] | None = None,
    ) -> "FeatureGenerator":
        """Infer types and data-dependent parameters (idf tables, scales)."""
        if attributes is None:
            attributes = list(left.attributes)
        for attr in attributes:
            if attr not in left.attributes:
                raise KeyError(f"attribute {attr!r} not in left table")
            if right is not None and attr not in right.attributes:
                raise KeyError(f"attribute {attr!r} not in right table")
        tables = [left] if right is None else [left, right]

        self.attributes_ = list(attributes)
        self.attribute_types_ = {}
        self.features_ = []
        self.feature_groups_ = []
        for attr in self.attributes_:
            values = [v for table in tables for v in table.column(attr)]
            attr_type = self.type_overrides.get(attr) or infer_attribute_type(values)
            self.attribute_types_[attr] = attr_type
            specs = _features_for_type(attr, attr_type)
            self._fit_data_parameters(specs, values)
            start = len(self.features_)
            self.features_.extend(specs)
            self.feature_groups_.append(list(range(start, len(self.features_))))
        return self

    @staticmethod
    def _fit_data_parameters(specs: list[PairFeature], values: list) -> None:
        """Set idf tables and numeric scales from the observed values."""
        for spec in specs:
            if isinstance(spec, _TfidfFeature):
                docs = [spec.tokenizer(str(v)) for v in values if v is not None]
                spec.set_idf(build_idf(docs))
            elif isinstance(spec, _NumericFeature) and spec.kind == "absolute":
                observed = [spec.prepare(v) for v in values]
                observed = [v for v in observed if v is not None]
                spread = float(np.std(observed)) if len(observed) > 1 else 0.0
                spec.scale = spread if spread > 0.0 else 1.0

    # -- persistence -----------------------------------------------------------

    def get_state(self) -> dict:
        """JSON-serializable fitted state (types plus data-fitted parameters).

        The feature *specs* are deterministic given the attribute types
        (:func:`_features_for_type`), so only the inferred types and the
        data-dependent parameters — idf tables and numeric scales — need to
        be captured. Restore with :meth:`from_state`.
        """
        self._check_fitted()
        params: dict[str, dict] = {}
        for spec in self.features_:
            if isinstance(spec, _TfidfFeature):
                params[spec.name] = {"idf": dict(spec.idf)}
            elif isinstance(spec, _NumericFeature):
                params[spec.name] = {"scale": float(spec.scale)}
        return {
            "attributes": list(self.attributes_),
            "attribute_types": {a: t.value for a, t in self.attribute_types_.items()},
            "type_overrides": {a: t.value for a, t in self.type_overrides.items()},
            "feature_params": params,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FeatureGenerator":
        """Rebuild a fitted generator from :meth:`get_state` output.

        The restored generator produces bit-identical feature matrices: the
        feature list is reconstructed from the saved types and the fitted
        idf/scale parameters are written back onto the matching specs.
        """
        overrides = {a: AttributeType(v) for a, v in state["type_overrides"].items()}
        gen = cls(type_overrides=overrides)
        gen.attributes_ = list(state["attributes"])
        gen.attribute_types_ = {
            a: AttributeType(v) for a, v in state["attribute_types"].items()
        }
        gen.features_ = []
        gen.feature_groups_ = []
        params = state["feature_params"]
        for attr in gen.attributes_:
            specs = _features_for_type(attr, gen.attribute_types_[attr])
            for spec in specs:
                fitted = params.get(spec.name)
                if isinstance(spec, _TfidfFeature) and fitted is not None:
                    spec.set_idf({tok: float(w) for tok, w in fitted["idf"].items()})
                elif isinstance(spec, _NumericFeature) and fitted is not None:
                    spec.scale = float(fitted["scale"])
            start = len(gen.features_)
            gen.features_.extend(specs)
            gen.feature_groups_.append(list(range(start, len(gen.features_))))
        return gen

    # -- introspection ---------------------------------------------------------

    @property
    def feature_names_(self) -> list[str]:
        self._check_fitted()
        return [spec.name for spec in self.features_]

    def group_of(self, feature_name: str) -> str:
        """Attribute that produced a feature."""
        self._check_fitted()
        for spec in self.features_:
            if spec.name == feature_name:
                return spec.attribute
        raise KeyError(f"unknown feature {feature_name!r}")

    def _check_fitted(self) -> None:
        if self.features_ is None:
            raise RuntimeError("FeatureGenerator must be fitted before use")

    # -- transformation ----------------------------------------------------------

    def transform(
        self,
        left: Table,
        right: Table | None,
        pairs: Sequence[tuple],
        *,
        engine: str = "batch",
        timings: dict[str, float] | None = None,
    ) -> np.ndarray:
        """Feature matrix for ``pairs``; one row per pair, one column per feature.

        ``right=None`` means deduplication: both pair elements are ids in
        ``left``. Cells are NaN where either side's attribute is missing.
        Only records referenced by ``pairs`` are prepared, so the cost is
        linear in the pair batch, not the table size; any record source with
        ``.get(record_id) -> dict`` (a :class:`~repro.data.table.Table` or an
        :class:`~repro.incremental.store.EntityStore`) is accepted.

        ``engine="batch"`` (default) scores columns with the vectorized
        kernels in :mod:`repro.text.batch`, sharing tokenization and
        intersection work across features; ``engine="per-pair"`` forces the
        reference per-pair path (same values — the parity tests assert it).
        Pass a dict as ``timings`` to collect per-feature wall-clock seconds
        (shared preparation is attributed to the first feature that
        triggers it).
        """
        self._check_fitted()
        validate_feature_engine(engine)
        n, d = len(pairs), len(self.features_)
        X = np.empty((n, d), dtype=np.float64)
        if n == 0 or d == 0:
            return X
        traced = telemetry_active()
        with span("features.transform", engine=engine, n_pairs=n, n_features=d):
            ctx = _BatchContext(left, right, pairs)
            use_batch = engine == "batch"
            for j, spec in enumerate(self.features_):
                with span(f"features.{spec.name}", family=spec.family) as fsp:
                    column = spec.batch_scores(ctx) if use_batch else None
                    if column is None:
                        column = _per_pair_scores(spec, ctx)
                    X[:, j] = column
                if timings is not None:
                    timings[spec.name] = fsp.seconds
                if traced:
                    set_gauge(f"features.kernel_seconds.{spec.name}", fsp.seconds)
            if traced:
                add_counter("features.pairs_scored", n)
                cache = jw_cache_info()
                set_gauge("features.jw_cache.hits", cache["hits"])
                set_gauge("features.jw_cache.misses", cache["misses"])
                set_gauge("features.jw_cache.currsize", cache["currsize"])
        return X
