"""Magellan-style automatic feature generation.

For each aligned attribute, the generator infers a type
(:mod:`repro.features.types`) and instantiates several similarity features
for it, e.g. both ``title_cos_qgm3`` and ``title_jac_wrd`` for a title
attribute. Multiple features per attribute is precisely what produces the
correlated feature *groups* that ZeroER's block-diagonal covariance models
(paper §3.2, Figure 2); the generator therefore reports the group partition
alongside the matrix.

Record-level preparation (tokenization, float parsing) is cached per record,
not per pair, so featurizing large candidate sets stays linear in
``|pairs| + |records|`` tokenizations.
"""

from __future__ import annotations

import functools
import math
from collections.abc import Sequence

import numpy as np

from repro.data.table import Table
from repro.features.types import AttributeType, infer_attribute_type
from repro.text.similarity import (
    build_idf,
    cosine,
    dice,
    exact_match,
    jaccard,
    jaro_winkler,
    levenshtein_similarity,
    monge_elkan,
    numeric_absolute_similarity,
    numeric_relative_similarity,
    overlap_coefficient,
    tfidf_cosine,
)
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer

__all__ = ["PairFeature", "FeatureGenerator"]

_NAN = float("nan")


class PairFeature:
    """One similarity feature: per-record preparation plus a pair scorer.

    Subclasses override :meth:`prepare` (record value → cached
    representation) and :meth:`compute` (two prepared values → similarity in
    [0, 1] or NaN).
    """

    def __init__(self, name: str, attribute: str):
        self.name = name
        self.attribute = attribute

    def prepare(self, value):
        if value is None:
            return None
        return str(value)

    def compute(self, a, b) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class _StringFeature(PairFeature):
    """Edit-based feature on raw strings (Levenshtein, Jaro–Winkler, ...)."""

    def __init__(self, name, attribute, sim_func):
        super().__init__(name, attribute)
        self.sim_func = sim_func

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        return float(self.sim_func(a, b))


class _TokenFeature(PairFeature):
    """Token-based feature; preparation tokenizes once per record.

    Set-semantics measures (Jaccard, cosine, ...) get a prepared frozenset so
    the per-pair call does no conversion work; order-sensitive measures
    (Monge–Elkan) keep the token sequence.
    """

    def __init__(self, name, attribute, sim_func, tokenizer, *, as_set: bool = True):
        super().__init__(name, attribute)
        self.sim_func = sim_func
        self.tokenizer = tokenizer
        self.as_set = as_set

    def prepare(self, value):
        if value is None:
            return None
        tokens = self.tokenizer(str(value))
        return frozenset(tokens) if self.as_set else tuple(tokens)

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        return float(self.sim_func(a, b))


#: Monge–Elkan's inner similarity is evaluated on *tokens*, which repeat
#: heavily across a candidate set; caching turns the quadratic token-pair
#: work into dictionary lookups after warm-up.
_cached_jaro_winkler = functools.lru_cache(maxsize=1 << 20)(jaro_winkler)


def _monge_elkan_jw(a, b) -> float:
    return monge_elkan(a, b, inner=_cached_jaro_winkler, symmetric=True)


class _TfidfFeature(PairFeature):
    """TF-IDF cosine; idf weights are supplied by the fitted generator."""

    def __init__(self, name, attribute, tokenizer):
        super().__init__(name, attribute)
        self.tokenizer = tokenizer
        self.idf: dict[str, float] = {}

    def prepare(self, value):
        if value is None:
            return None
        return self.tokenizer(str(value))

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        return float(tfidf_cosine(a, b, self.idf))


class _ExactFeature(PairFeature):
    def compute(self, a, b) -> float:
        return exact_match(a, b)


class _NumericFeature(PairFeature):
    """Numeric similarity; ``scale`` is set from the data during fit."""

    def __init__(self, name, attribute, kind: str):
        super().__init__(name, attribute)
        if kind not in ("absolute", "relative"):
            raise ValueError(f"unknown numeric feature kind {kind!r}")
        self.kind = kind
        self.scale = 1.0

    def prepare(self, value):
        if value is None:
            return None
        try:
            parsed = float(value)
        except (TypeError, ValueError):
            return None
        return parsed if math.isfinite(parsed) else None

    def compute(self, a, b) -> float:
        if a is None or b is None:
            return _NAN
        if self.kind == "absolute":
            return numeric_absolute_similarity(a, b, scale=self.scale)
        return numeric_relative_similarity(a, b)


def _features_for_type(attribute: str, attr_type: AttributeType) -> list[PairFeature]:
    """The per-type similarity-function table (Magellan's selection logic)."""
    qgm3 = QgramTokenizer(q=3)
    word = WhitespaceTokenizer()
    if attr_type is AttributeType.BOOLEAN:
        return [_ExactFeature(f"{attribute}_exact", attribute)]
    if attr_type is AttributeType.NUMERIC:
        return [
            _NumericFeature(f"{attribute}_abs_sim", attribute, "absolute"),
            _NumericFeature(f"{attribute}_rel_sim", attribute, "relative"),
            _ExactFeature(f"{attribute}_exact", attribute),
        ]
    if attr_type is AttributeType.SHORT_STRING:
        return [
            _StringFeature(f"{attribute}_lev_sim", attribute, levenshtein_similarity),
            _StringFeature(f"{attribute}_jw_sim", attribute, jaro_winkler),
            _TokenFeature(f"{attribute}_jac_qgm3", attribute, jaccard, qgm3),
            _ExactFeature(f"{attribute}_exact", attribute),
        ]
    if attr_type is AttributeType.MEDIUM_STRING:
        return [
            _TokenFeature(f"{attribute}_jac_wrd", attribute, jaccard, word),
            _TokenFeature(f"{attribute}_cos_qgm3", attribute, cosine, qgm3),
            _TokenFeature(f"{attribute}_me_jw", attribute, _monge_elkan_jw, word, as_set=False),
            _TokenFeature(f"{attribute}_dice_qgm3", attribute, dice, qgm3),
        ]
    # LONG_STRING
    return [
        _TokenFeature(f"{attribute}_jac_wrd", attribute, jaccard, word),
        _TokenFeature(f"{attribute}_cos_wrd", attribute, cosine, word),
        _TfidfFeature(f"{attribute}_tfidf_wrd", attribute, word),
        _TokenFeature(f"{attribute}_ovl_wrd", attribute, overlap_coefficient, word),
    ]


class FeatureGenerator:
    """Infer attribute types and build similarity feature matrices.

    Usage::

        gen = FeatureGenerator().fit(left, right, attributes)
        X = gen.transform(left, right, candidate_pairs)   # N × d, may contain NaN
        groups = gen.feature_groups_                       # per-attribute index lists

    Parameters
    ----------
    type_overrides:
        Optional ``{attribute: AttributeType}`` to pin types that inference
        would get wrong on unusual data.
    """

    def __init__(self, type_overrides: dict[str, AttributeType] | None = None):
        self.type_overrides = dict(type_overrides or {})
        self.attributes_: list[str] | None = None
        self.attribute_types_: dict[str, AttributeType] | None = None
        self.features_: list[PairFeature] | None = None
        self.feature_groups_: list[list[int]] | None = None

    # -- fitting ---------------------------------------------------------------

    def fit(
        self,
        left: Table,
        right: Table | None = None,
        attributes: Sequence[str] | None = None,
    ) -> "FeatureGenerator":
        """Infer types and data-dependent parameters (idf tables, scales)."""
        if attributes is None:
            attributes = list(left.attributes)
        for attr in attributes:
            if attr not in left.attributes:
                raise KeyError(f"attribute {attr!r} not in left table")
            if right is not None and attr not in right.attributes:
                raise KeyError(f"attribute {attr!r} not in right table")
        tables = [left] if right is None else [left, right]

        self.attributes_ = list(attributes)
        self.attribute_types_ = {}
        self.features_ = []
        self.feature_groups_ = []
        for attr in self.attributes_:
            values = [v for table in tables for v in table.column(attr)]
            attr_type = self.type_overrides.get(attr) or infer_attribute_type(values)
            self.attribute_types_[attr] = attr_type
            specs = _features_for_type(attr, attr_type)
            self._fit_data_parameters(specs, values)
            start = len(self.features_)
            self.features_.extend(specs)
            self.feature_groups_.append(list(range(start, len(self.features_))))
        return self

    @staticmethod
    def _fit_data_parameters(specs: list[PairFeature], values: list) -> None:
        """Set idf tables and numeric scales from the observed values."""
        for spec in specs:
            if isinstance(spec, _TfidfFeature):
                docs = [spec.tokenizer(str(v)) for v in values if v is not None]
                spec.idf = build_idf(docs)
            elif isinstance(spec, _NumericFeature) and spec.kind == "absolute":
                observed = [spec.prepare(v) for v in values]
                observed = [v for v in observed if v is not None]
                spread = float(np.std(observed)) if len(observed) > 1 else 0.0
                spec.scale = spread if spread > 0.0 else 1.0

    # -- persistence -----------------------------------------------------------

    def get_state(self) -> dict:
        """JSON-serializable fitted state (types plus data-fitted parameters).

        The feature *specs* are deterministic given the attribute types
        (:func:`_features_for_type`), so only the inferred types and the
        data-dependent parameters — idf tables and numeric scales — need to
        be captured. Restore with :meth:`from_state`.
        """
        self._check_fitted()
        params: dict[str, dict] = {}
        for spec in self.features_:
            if isinstance(spec, _TfidfFeature):
                params[spec.name] = {"idf": dict(spec.idf)}
            elif isinstance(spec, _NumericFeature):
                params[spec.name] = {"scale": float(spec.scale)}
        return {
            "attributes": list(self.attributes_),
            "attribute_types": {a: t.value for a, t in self.attribute_types_.items()},
            "type_overrides": {a: t.value for a, t in self.type_overrides.items()},
            "feature_params": params,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FeatureGenerator":
        """Rebuild a fitted generator from :meth:`get_state` output.

        The restored generator produces bit-identical feature matrices: the
        feature list is reconstructed from the saved types and the fitted
        idf/scale parameters are written back onto the matching specs.
        """
        overrides = {a: AttributeType(v) for a, v in state["type_overrides"].items()}
        gen = cls(type_overrides=overrides)
        gen.attributes_ = list(state["attributes"])
        gen.attribute_types_ = {
            a: AttributeType(v) for a, v in state["attribute_types"].items()
        }
        gen.features_ = []
        gen.feature_groups_ = []
        params = state["feature_params"]
        for attr in gen.attributes_:
            specs = _features_for_type(attr, gen.attribute_types_[attr])
            for spec in specs:
                fitted = params.get(spec.name)
                if isinstance(spec, _TfidfFeature) and fitted is not None:
                    spec.idf = {tok: float(w) for tok, w in fitted["idf"].items()}
                elif isinstance(spec, _NumericFeature) and fitted is not None:
                    spec.scale = float(fitted["scale"])
            start = len(gen.features_)
            gen.features_.extend(specs)
            gen.feature_groups_.append(list(range(start, len(gen.features_))))
        return gen

    # -- introspection ---------------------------------------------------------

    @property
    def feature_names_(self) -> list[str]:
        self._check_fitted()
        return [spec.name for spec in self.features_]

    def group_of(self, feature_name: str) -> str:
        """Attribute that produced a feature."""
        self._check_fitted()
        for spec in self.features_:
            if spec.name == feature_name:
                return spec.attribute
        raise KeyError(f"unknown feature {feature_name!r}")

    def _check_fitted(self) -> None:
        if self.features_ is None:
            raise RuntimeError("FeatureGenerator must be fitted before use")

    # -- transformation ----------------------------------------------------------

    def transform(
        self,
        left: Table,
        right: Table | None,
        pairs: Sequence[tuple],
    ) -> np.ndarray:
        """Feature matrix for ``pairs``; one row per pair, one column per feature.

        ``right=None`` means deduplication: both pair elements are ids in
        ``left``. Cells are NaN where either side's attribute is missing.
        Only records referenced by ``pairs`` are prepared, so the cost is
        linear in the pair batch, not the table size; any record source with
        ``.get(record_id) -> dict`` (a :class:`~repro.data.table.Table` or an
        :class:`~repro.incremental.store.EntityStore`) is accepted.
        """
        self._check_fitted()
        n, d = len(pairs), len(self.features_)
        X = np.empty((n, d), dtype=np.float64)
        # Prepare only records that actually appear in ``pairs``: incremental
        # resolution scores tiny pair batches against large stores, where
        # preparing every record would dominate the featurization cost.
        left_ids = {a_id for a_id, _ in pairs}
        right_ids = {b_id for _, b_id in pairs}
        if right is None:
            left_ids |= right_ids
        for j, spec in enumerate(self.features_):
            left_prep = {
                rid: spec.prepare(left.get(rid).get(spec.attribute)) for rid in left_ids
            }
            if right is None:
                right_prep = left_prep
            else:
                right_prep = {
                    rid: spec.prepare(right.get(rid).get(spec.attribute)) for rid in right_ids
                }
            column = X[:, j]
            for i, (a_id, b_id) in enumerate(pairs):
                column[i] = spec.compute(left_prep[a_id], right_prep[b_id])
        return X
