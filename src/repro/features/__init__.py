"""Automatic similarity-feature generation (Magellan-style).

Given two tables with aligned attributes, this package infers a type for
each attribute, selects a set of similarity functions per type, and produces
the ``N × d`` feature matrix for a candidate pair set — **together with the
feature-group partition** (which features came from which attribute) that
ZeroER's grouped covariance relies on (paper §2.1, §3.2).
"""

from repro.features.types import AttributeType, infer_attribute_type
from repro.features.generator import (
    FEATURE_ENGINES,
    FeatureGenerator,
    PairFeature,
    clear_feature_caches,
    configure_jw_cache,
    jw_cache_info,
    validate_feature_engine,
)
from repro.features.normalize import MinMaxNormalizer, impute_nan

__all__ = [
    "AttributeType",
    "infer_attribute_type",
    "FeatureGenerator",
    "PairFeature",
    "FEATURE_ENGINES",
    "validate_feature_engine",
    "MinMaxNormalizer",
    "impute_nan",
    "configure_jw_cache",
    "clear_feature_caches",
    "jw_cache_info",
]
