"""Weighted moment estimation and the shared-correlation decomposition.

Implements the M-step statistics of the paper:

* Equation (8)/(11): posterior-weighted means and per-group covariances;
* Equation (14)/(15): the decomposition ``S_C = Λ_C R Λ_C`` with a single
  Pearson correlation matrix ``R`` shared across classes and estimated from
  the entire dataset — the class-imbalance fix of §4.

The shared ``R`` does not depend on the posteriors, so it is computed once
per fit, not once per EM iteration.
"""

from __future__ import annotations

import numpy as np

from repro.utils.linalg import correlation_from_covariance

__all__ = [
    "weighted_mean",
    "weighted_covariance",
    "pooled_correlation_blocks",
    "rescale_to_correlation",
]


def weighted_mean(X: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Posterior-weighted sample mean ``x̄_C`` (Equation 8)."""
    total = float(weights.sum())
    if total <= 0.0:
        raise ValueError("weights sum to zero; cannot compute a weighted mean")
    return (weights @ X) / total


def weighted_covariance(X: np.ndarray, weights: np.ndarray, mean: np.ndarray) -> np.ndarray:
    """Posterior-weighted sample covariance ``S_C`` (Equation 8).

    Uses the ``1/N_C`` normalization of the paper (maximum-likelihood, not
    Bessel-corrected).
    """
    total = float(weights.sum())
    if total <= 0.0:
        raise ValueError("weights sum to zero; cannot compute a weighted covariance")
    diff = X - mean
    return (weights[:, None] * diff).T @ diff / total


def pooled_correlation_blocks(X: np.ndarray, groups: list[list[int]]) -> list[np.ndarray]:
    """Per-group Pearson correlation matrices estimated from **all** rows.

    This is the shared ``R`` of Equation (15): feature correlations are only
    mildly affected by class labels, so one matrix estimated from the whole
    (unlabeled) dataset serves both classes. Zero-variance features get unit
    diagonal and zero off-diagonals.
    """
    n = X.shape[0]
    weights = np.full(n, 1.0)
    blocks = []
    for idx in groups:
        sub = X[:, idx]
        mean = weighted_mean(sub, weights)
        cov = weighted_covariance(sub, weights, mean)
        blocks.append(correlation_from_covariance(cov))
    return blocks


def rescale_to_correlation(block_cov: np.ndarray, correlation: np.ndarray) -> np.ndarray:
    """Rebuild a covariance block as ``Λ R Λ`` (Equation 15).

    ``Λ`` is taken from the diagonal of ``block_cov`` (the class's own
    per-feature standard deviations); the off-diagonal structure is replaced
    by the shared correlation ``R``. The diagonal of the result equals the
    diagonal of ``block_cov`` exactly.
    """
    if block_cov.shape != correlation.shape:
        raise ValueError(
            f"covariance block {block_cov.shape} and correlation {correlation.shape} disagree"
        )
    std = np.sqrt(np.clip(np.diag(block_cov), 0.0, None))
    return np.outer(std, std) * correlation
