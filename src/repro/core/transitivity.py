"""Transitivity as a soft constraint on posteriors (paper §5).

For any record triangle, ``γ12 · γ13 ≤ γ23`` must hold (Equation 16): if
(t1,t2) and (t1,t3) are matches, (t2,t3) must be one. After every E-step the
calibrator enumerates two-paths among high-confidence pairs (γ > 0.5),
checks the inequality against the closing pair — with γ = 0 for pairs that
blocking removed — and repairs violations by adjusting whichever of the
three posteriors is closest to 0.5, i.e. the least confident one
(Equation 17).

Two concrete calibrators:

* :class:`DedupTransitivityCalibrator` — one posterior store (T = T');
* :class:`LinkageTransitivityCalibrator` — cross pairs close through
  within-table pairs, so repairs may touch the left/right models' posterior
  stores (the F / Fl / Fr coupling of §5).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

__all__ = [
    "DedupTransitivityCalibrator",
    "LinkageTransitivityCalibrator",
]

_EPS = 1e-12


def _canonical(a, b) -> tuple:
    """Order-insensitive key for a within-table pair."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


def _repair(gamma_stores: list[np.ndarray], refs: list[tuple[int, int]], values: list[float]) -> bool:
    """Repair one violated triangle; returns True if something changed.

    ``refs[k] = (store_index, position)`` locates each posterior;
    ``refs[2]`` may be ``None`` when the closing pair was removed by
    blocking (its γ is an immovable 0, and its confidence |0 − 0.5| is
    maximal so it is never selected for adjustment).
    """
    v12, v13, v23 = values
    candidates = [(abs(v12 - 0.5), 0), (abs(v13 - 0.5), 1)]
    if refs[2] is not None:
        candidates.append((abs(v23 - 0.5), 2))
    _, target = min(candidates)
    if target == 0:
        new_value = v23 / v13 if v13 > 0.0 else 0.0
    elif target == 1:
        new_value = v23 / v12 if v12 > 0.0 else 0.0
    else:
        new_value = v12 * v13
    store_idx, pos = refs[target]
    gamma_stores[store_idx][pos] = float(np.clip(new_value, 0.0, 1.0))
    return True


class DedupTransitivityCalibrator:
    """Triangle calibration for a single table's pair set.

    Parameters
    ----------
    pairs:
        The candidate pairs, aligned with the posterior vector passed to
        :meth:`calibrate`.
    max_degree:
        Per-node cap on high-confidence edges considered (highest-γ first);
        bounds the two-path enumeration, implementing §5's "check only
        likely matches" efficiency argument.
    """

    def __init__(self, pairs: Sequence[tuple], max_degree: int = 30):
        if max_degree < 2:
            raise ValueError(f"max_degree must be >= 2, got {max_degree}")
        self.pairs = [tuple(p) for p in pairs]
        self.max_degree = max_degree
        self._index: dict[tuple, int] = {}
        for i, (a, b) in enumerate(self.pairs):
            self._index[_canonical(a, b)] = i

    def calibrate(self, gamma: np.ndarray) -> int:
        """Repair violations in-place; returns the number of adjustments."""
        stores = [gamma]
        high = np.nonzero(gamma > 0.5)[0]
        adjacency: dict = defaultdict(list)
        for i in high:
            a, b = self.pairs[int(i)]
            adjacency[a].append((b, int(i)))
            adjacency[b].append((a, int(i)))
        n_adjust = 0
        for _node, edges in sorted(adjacency.items(), key=lambda kv: repr(kv[0])):
            if len(edges) < 2:
                continue
            edges = sorted(edges, key=lambda e: -gamma[e[1]])[: self.max_degree]
            for i in range(len(edges)):
                t2, i12 = edges[i]
                for j in range(i + 1, len(edges)):
                    t3, i13 = edges[j]
                    v12, v13 = float(gamma[i12]), float(gamma[i13])
                    if v12 <= 0.5 or v13 <= 0.5:
                        continue  # an earlier repair demoted this edge
                    closing = self._index.get(_canonical(t2, t3))
                    v23 = float(gamma[closing]) if closing is not None else 0.0
                    if v12 * v13 <= v23 + _EPS:
                        continue
                    refs = [
                        (0, i12),
                        (0, i13),
                        (0, closing) if closing is not None else None,
                    ]
                    _repair(stores, refs, [v12, v13, v23])
                    n_adjust += 1
        return n_adjust


class LinkageTransitivityCalibrator:
    """Triangle calibration across the F / Fl / Fr models (record linkage).

    Cross pairs ``(l, r2)`` and ``(l, r3)`` sharing a left record close
    through the right-table pair ``(r2, r3)`` scored by Fr, and symmetrically
    for shared right records through Fl. A repair may therefore adjust a
    cross posterior or a within-table posterior, whichever is least
    confident.
    """

    def __init__(
        self,
        cross_pairs: Sequence[tuple],
        left_pairs: Sequence[tuple] = (),
        right_pairs: Sequence[tuple] = (),
        max_degree: int = 30,
    ):
        if max_degree < 2:
            raise ValueError(f"max_degree must be >= 2, got {max_degree}")
        self.cross_pairs = [tuple(p) for p in cross_pairs]
        self.max_degree = max_degree
        self._left_index = {_canonical(a, b): i for i, (a, b) in enumerate(left_pairs)}
        self._right_index = {_canonical(a, b): i for i, (a, b) in enumerate(right_pairs)}

    def calibrate(
        self,
        gamma_cross: np.ndarray,
        gamma_left: np.ndarray | None = None,
        gamma_right: np.ndarray | None = None,
    ) -> int:
        """Repair violations in all three stores in-place; returns #adjustments."""
        stores = [
            gamma_cross,
            gamma_left if gamma_left is not None else np.zeros(0),
            gamma_right if gamma_right is not None else np.zeros(0),
        ]
        high = np.nonzero(gamma_cross > 0.5)[0]
        by_left: dict = defaultdict(list)
        by_right: dict = defaultdict(list)
        for i in high:
            l, r = self.cross_pairs[int(i)]
            by_left[l].append((r, int(i)))
            by_right[r].append((l, int(i)))
        n_adjust = 0
        n_adjust += self._calibrate_side(stores, by_left, self._right_index, 2)
        n_adjust += self._calibrate_side(stores, by_right, self._left_index, 1)
        return n_adjust

    def _calibrate_side(
        self,
        stores: list[np.ndarray],
        adjacency: dict,
        closing_index: dict,
        closing_store: int,
    ) -> int:
        gamma_cross = stores[0]
        closing_gamma = stores[closing_store]
        n_adjust = 0
        for _node, edges in sorted(adjacency.items(), key=lambda kv: repr(kv[0])):
            if len(edges) < 2:
                continue
            edges = sorted(edges, key=lambda e: -gamma_cross[e[1]])[: self.max_degree]
            for i in range(len(edges)):
                t2, i12 = edges[i]
                for j in range(i + 1, len(edges)):
                    t3, i13 = edges[j]
                    v12, v13 = float(gamma_cross[i12]), float(gamma_cross[i13])
                    if v12 <= 0.5 or v13 <= 0.5:
                        continue
                    closing = closing_index.get(_canonical(t2, t3))
                    has_closing = closing is not None and closing_gamma.shape[0] > 0
                    v23 = float(closing_gamma[closing]) if has_closing else 0.0
                    if v12 * v13 <= v23 + _EPS:
                        continue
                    refs = [
                        (0, i12),
                        (0, i13),
                        (closing_store, closing) if has_closing else None,
                    ]
                    _repair(stores, refs, [v12, v13, v23])
                    n_adjust += 1
        return n_adjust
