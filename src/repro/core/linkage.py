"""Three-model record-linkage training (paper §5, "DeDuplication v.s. Record
Linkage").

When matching two different tables T ≠ T', the transitivity triangles close
through *within-table* pairs: if one left record matches two right records,
those two right records must be duplicates of each other. So three
generative models are trained together:

* ``F``  — cross-table pairs (the matches we actually want),
* ``Fl`` — pairs within the left table,
* ``Fr`` — pairs within the right table,

with the per-iteration interleaving prescribed by the paper: F's E-step
(followed by transitivity calibration, which may modify Fl/Fr posteriors)
runs before Fl/Fr's M-steps, so the within-table models absorb the
calibrated posteriors before their own E-steps.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.config import ZeroERConfig
from repro.core.em import (
    EMHistory,
    EMRunner,
    emit_fit_metrics,
    frozen_scorer_parts,
    frozen_scorer_state,
    match_probability_histogram,
)
from repro.obs import span, telemetry_active
from repro.core.exceptions import InitializationError
from repro.core.transitivity import LinkageTransitivityCalibrator
from repro.reliability.checkpoint import CheckpointError, FitControls
from repro.reliability.health import (
    EM_NON_CONVERGENCE,
    EM_RESUMED_FROM_CHECKPOINT,
    EM_TIME_BUDGET_EXHAUSTED,
    record_condition,
)
from repro.features.normalize import (
    MinMaxNormalizer,
    apply_normalization,
    fit_normalization,
    impute_nan,
)
from repro.utils.validation import check_feature_matrix

__all__ = ["ZeroERLinkage"]


def _prepare(X) -> np.ndarray:
    X = check_feature_matrix(X, allow_nan=True)
    scaled = MinMaxNormalizer().fit_transform(X)
    return impute_nan(scaled)


class ZeroERLinkage:
    """ZeroER for two tables with the F/Fl/Fr transitivity coupling.

    Parameters
    ----------
    config:
        Shared hyperparameters for all three models; defaults to the paper's
        final configuration.

    Notes
    -----
    The within-table models are optional: when a table has no within-table
    candidate pairs (e.g. it is known to be duplicate-free), pass ``None``
    and the calibrator treats its closing pairs as γ = 0 — which *is* the
    correct semantics: a clean table means two right records matching the
    same left record is a violation, and the weaker cross edge gets demoted.
    """

    def __init__(self, config: ZeroERConfig | None = None, **overrides):
        base = config if config is not None else ZeroERConfig()
        self.config = base.replace(**overrides) if overrides else base
        self._cross: EMRunner | None = None
        self._left: EMRunner | None = None
        self._right: EMRunner | None = None
        self._normalizer: MinMaxNormalizer | None = None
        self._impute_means: np.ndarray | None = None

    def fit(
        self,
        X_cross,
        cross_pairs: Sequence[tuple],
        feature_groups: Sequence[Sequence[int]] | None = None,
        X_left=None,
        left_pairs: Sequence[tuple] | None = None,
        X_right=None,
        right_pairs: Sequence[tuple] | None = None,
        controls: FitControls | None = None,
    ) -> "ZeroERLinkage":
        """Train F (and Fl/Fr when within-table pair sets are provided).

        All three feature matrices must come from the same feature generator
        so that ``feature_groups`` applies to each. ``controls`` adds the
        reliability behaviors: combined F/Fl/Fr checkpoints through the
        crash-safe writer, resume, and a wall-clock budget (see
        :class:`~repro.reliability.checkpoint.FitControls`).
        """
        if len(cross_pairs) != np.asarray(X_cross).shape[0]:
            raise ValueError("cross_pairs must align with X_cross rows")
        groups = None if feature_groups is None else [list(g) for g in feature_groups]
        cfg = self.config
        # The cross model's normalization/imputation statistics are kept so
        # that predict_proba can score unseen pairs after fitting.
        X_cross = check_feature_matrix(X_cross, allow_nan=True)
        self._normalizer, self._impute_means, X_prepared = fit_normalization(X_cross)
        self._cross = EMRunner(X_prepared, groups, cfg, name="F")
        self._left = self._optional_runner(X_left, left_pairs, groups, "Fl")
        self._right = self._optional_runner(X_right, right_pairs, groups, "Fr")

        calibrator = None
        if cfg.transitivity:
            calibrator = LinkageTransitivityCalibrator(
                cross_pairs,
                left_pairs or (),
                right_pairs or (),
                max_degree=cfg.transitivity_max_degree,
            )

        store = controls.checkpoint if controls is not None else None
        resumed = False
        if controls is not None and controls.resume and store is not None:
            resumed = self._resume_from_checkpoint(store)

        if cfg.linkage_mode == "staged" and not resumed:
            # Train the within-table models to convergence first; their
            # posteriors are then fixed inputs to F's calibration (writes from
            # the calibrator persist, preventing raise-then-overwrite cycles).
            # A resumed fit restores the sides' trained state instead.
            for side in (self._left, self._right):
                if side is not None:
                    side.run()

        traced = telemetry_active()
        cross = self._cross
        history = cross.history
        joint = cfg.linkage_mode == "joint"
        started_run = time.monotonic()
        with span(
            "em.fit",
            model="F",
            n_pairs=int(X_prepared.shape[0]),
            max_iter=cfg.max_iter,
            linkage_mode=cfg.linkage_mode,
        ) as sp:
            budget_hit = False
            while cross._iteration < cfg.max_iter:
                iteration = cross._iteration
                started = time.perf_counter()
                cross.m_step()
                ll = cross.e_step()
                if calibrator is not None and iteration >= cfg.transitivity_warmup:
                    adjusted = calibrator.calibrate(
                        cross.gamma,
                        self._left.gamma if self._left is not None else None,
                        self._right.gamma if self._right is not None else None,
                    )
                    history.transitivity_adjustments.append(adjusted)
                if joint:
                    # the paper's interleaving: within models absorb the
                    # calibrated posteriors before their own E-steps
                    for side in (self._left, self._right):
                        if side is not None:
                            side.m_step()
                            side.e_step()
                cross._tail.append(cross.gamma.copy())
                history.iteration_seconds.append(time.perf_counter() - started)
                history.log_likelihoods.append(ll)
                if traced:
                    history.match_probability_histograms.append(
                        match_probability_histogram(cross.gamma)
                    )
                cross._iteration += 1
                if cross._previous_ll is not None and abs(ll - cross._previous_ll) < cfg.tol:
                    history.converged = True
                    break
                cross._previous_ll = ll
                if controls is not None and controls.time_budget_s is not None:
                    budget_hit = time.monotonic() - started_run >= controls.time_budget_s
                # Checkpoints capture the clean loop state of all three
                # runners *before* any tail-averaging.
                if store is not None and (
                    budget_hit or cross._iteration % controls.checkpoint_every == 0
                ):
                    self._save_checkpoint(store)
                if budget_hit:
                    record_condition(
                        EM_TIME_BUDGET_EXHAUSTED,
                        f"F: EM stopped after {cross._iteration} iterations on a "
                        f"{controls.time_budget_s:g}s budget; returning best-so-far "
                        "parameters",
                        model="F",
                        iteration=cross._iteration,
                        time_budget_s=controls.time_budget_s,
                    )
                    break
            if not history.converged:
                if not budget_hit:
                    record_condition(
                        EM_NON_CONVERGENCE,
                        f"F: EM hit max_iter={cfg.max_iter} without likelihood "
                        "convergence; returning the tail-averaged posterior",
                        model="F",
                        max_iter=cfg.max_iter,
                    )
                if len(cross._tail) > 1:
                    cross.gamma = np.mean(np.stack(cross._tail), axis=0)
            sp.set(n_iterations=history.n_iterations, converged=history.converged)
        if traced:
            emit_fit_metrics("F", history, cross.gamma)
        return self

    # -- combined checkpoints ------------------------------------------------------

    _SIDES = (("Fl", "_left"), ("Fr", "_right"))

    def _save_checkpoint(self, store) -> None:
        """One checkpoint holding F and whichever of Fl/Fr exist."""
        meta_f, arrays = self._cross.capture_loop_state(prefix="F.")
        runners: dict[str, dict | None] = {"F": meta_f}
        for name, attr in self._SIDES:
            side = getattr(self, attr)
            if side is not None:
                meta_side, side_arrays = side.capture_loop_state(prefix=f"{name}.")
                runners[name] = meta_side
                arrays.update(side_arrays)
            else:
                runners[name] = None
        store.save(
            {
                "format": 1,
                "kind": "linkage",
                "iteration": self._cross._iteration,
                "fingerprint": self._cross.fingerprint(),
                "runners": runners,
            },
            arrays,
        )

    def _resume_from_checkpoint(self, store) -> bool:
        """Restore F/Fl/Fr from the latest valid combined checkpoint."""
        loaded = store.latest()
        if loaded is None:
            return False
        meta, arrays = loaded
        if (
            meta.get("kind") != "linkage"
            or meta.get("fingerprint") != self._cross.fingerprint()
        ):
            raise CheckpointError(
                f"checkpoint in {store.root} does not match this linkage fit "
                "(different data, feature space, or configuration)",
                path=store.root,
            )
        runners = meta["runners"]
        for name, attr in self._SIDES:
            if (runners.get(name) is None) != (getattr(self, attr) is None):
                raise CheckpointError(
                    f"checkpoint in {store.root} disagrees with this fit about "
                    f"the {name} within-table model",
                    path=store.root,
                )
        self._cross.restore_loop_state(runners["F"], arrays, prefix="F.")
        for name, attr in self._SIDES:
            side = getattr(self, attr)
            if side is not None:
                side.restore_loop_state(runners[name], arrays, prefix=f"{name}.")
        record_condition(
            EM_RESUMED_FROM_CHECKPOINT,
            f"F: resumed linkage EM at iteration {self._cross._iteration}",
            severity="info",
            model="F",
            iteration=self._cross._iteration,
        )
        return True

    def _optional_runner(self, X, pairs, groups, name) -> EMRunner | None:
        if X is None:
            return None
        X = check_feature_matrix(X, allow_nan=True)
        if pairs is None or len(pairs) != X.shape[0]:
            raise ValueError(f"{name}: pairs must align with its feature matrix")
        within_config = self.config.replace(init_threshold=self.config.within_init_threshold)
        try:
            return EMRunner(_prepare(X), groups, within_config, name=name)
        except InitializationError:
            # A within-table candidate set can legitimately be all-unmatch
            # (a clean table); §5's semantics then reduce to γ = 0 closures.
            return None

    # -- fitted state -------------------------------------------------------------

    def _check_fitted(self) -> EMRunner:
        if self._cross is None:
            raise RuntimeError("ZeroERLinkage must be fitted before this operation")
        return self._cross

    @property
    def match_scores_(self) -> np.ndarray:
        """Posterior match probabilities for the cross-table pairs."""
        return self._check_fitted().gamma

    @property
    def labels_(self) -> np.ndarray:
        """0/1 labels for the cross-table pairs."""
        return (self._check_fitted().gamma > 0.5).astype(np.int64)

    @property
    def history_(self) -> EMHistory:
        return self._check_fitted().history

    @property
    def left_scores_(self) -> np.ndarray | None:
        """Posteriors of the left within-table model, if trained."""
        return self._left.gamma if self._left is not None else None

    @property
    def right_scores_(self) -> np.ndarray | None:
        """Posteriors of the right within-table model, if trained."""
        return self._right.gamma if self._right is not None else None

    # -- inference on unseen pairs -------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        """Posterior match probabilities for *new* cross-table pairs.

        New rows are normalized and imputed with the cross model's training
        statistics and scored under its learned mixture. Transitivity
        calibration does not apply — unseen pairs carry no graph context —
        so this is the frozen-scorer path used by incremental resolution.
        """
        runner = self._check_fitted()
        if self._normalizer is None or self._impute_means is None:
            raise RuntimeError("ZeroERLinkage must be fitted before predict_proba")
        X = check_feature_matrix(X, allow_nan=True)
        return runner.posterior(apply_normalization(self._normalizer, self._impute_means, X))

    def predict(self, X) -> np.ndarray:
        """0/1 match labels for new cross-table pairs."""
        return (self.predict_proba(X) > 0.5).astype(np.int64)

    # -- persistence --------------------------------------------------------------

    def get_fitted_state(self) -> dict:
        """Inference-only state: the cross model F plus its preprocessing.

        The within-table models Fl/Fr exist only to shape training-time
        calibration; scoring unseen pairs needs F alone, so they are not
        persisted. A model restored with :meth:`from_fitted_state` scores
        bit-identically via :meth:`predict_proba` but cannot be re-fitted.
        """
        runner = self._check_fitted()
        if runner.params is None:
            raise RuntimeError("ZeroERLinkage has no parameters; fit first")
        if self._normalizer is None or self._impute_means is None:
            raise RuntimeError("ZeroERLinkage must be fitted before get_fitted_state")
        return frozen_scorer_state(
            "linkage", self.config, runner, self._normalizer, self._impute_means
        )

    @classmethod
    def from_fitted_state(cls, state: dict) -> "ZeroERLinkage":
        """Rebuild a frozen (inference-only) linkage matcher."""
        config, normalizer, impute_means, runner = frozen_scorer_parts(state, name="F")
        model = cls(config)
        model._normalizer = normalizer
        model._impute_means = impute_means
        model._cross = runner
        return model
