"""Covariance regularization (paper §3.3).

The M-step under the regularized objective (Equation 12) has the closed form
``Σ_C = S_C + K`` (Equation 13) where ``K`` is a diagonal penalty matrix:

* **Tikhonov** — ``K = κ I``: every feature inflated equally; the paper's
  Example 1 shows why a single κ cannot fit all features.
* **Adaptive** — ``K = κ · diag((μ_M − μ_U)²)``: the inflation is
  proportional to the squared mean gap, so well-separating features stay
  well separated while degenerate ones are smoothed exactly where needed.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ZeroERConfig

__all__ = ["penalty_diagonal", "apply_regularization"]


def penalty_diagonal(
    config: ZeroERConfig, mean_match: np.ndarray, mean_unmatch: np.ndarray
) -> np.ndarray:
    """The diagonal of ``K`` for the current means (length ``d``)."""
    d = mean_match.shape[0]
    if config.regularization == "none":
        return np.zeros(d)
    if config.regularization == "tikhonov":
        return np.full(d, config.kappa)
    # adaptive: K = κ · diag((μ_M − μ_U)²)
    gap = np.asarray(mean_match, dtype=np.float64) - np.asarray(mean_unmatch, dtype=np.float64)
    return config.kappa * gap * gap


def apply_regularization(block_cov: np.ndarray, penalty: np.ndarray, idx: list[int]) -> np.ndarray:
    """``Σ = S + K`` restricted to one feature group (Equation 13)."""
    out = np.array(block_cov, dtype=np.float64, copy=True)
    out[np.diag_indices_from(out)] += penalty[idx]
    return out
