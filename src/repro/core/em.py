"""The EM engine (paper §2.2, §6, Algorithm 1).

:class:`EMRunner` owns one mixture (prior + M/U block Gaussians) and one
posterior vector over a fixed feature matrix, and exposes separate
:meth:`m_step` / :meth:`e_step` methods. Keeping the steps separate is what
lets the record-linkage trainer interleave three runners exactly as §5
prescribes (``F.M, F.E, calibrate, Fl.M, Fl.E, Fr.M, Fr.E``), with the
transitivity calibrator mutating posteriors between steps.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ZeroERConfig
from repro.core.covariance import (
    pooled_correlation_blocks,
    rescale_to_correlation,
    weighted_covariance,
    weighted_mean,
)
from repro.core.gaussian import BlockDiagonalGaussian
from repro.core.initialization import magnitude_initialization
from repro.core.regularization import apply_regularization, penalty_diagonal
from repro.obs import add_counter, histogram_of, observe, set_gauge, span, telemetry_active
from repro.reliability.checkpoint import CheckpointError, FitControls
from repro.reliability.health import (
    EM_NON_CONVERGENCE,
    EM_RESUMED_FROM_CHECKPOINT,
    EM_TIME_BUDGET_EXHAUSTED,
    record_condition,
)
from repro.utils.validation import check_feature_groups, check_feature_matrix

__all__ = [
    "MixtureParameters",
    "EMHistory",
    "EMRunner",
    "mixture_state",
    "mixture_from_state",
    "frozen_scorer_state",
    "frozen_scorer_parts",
    "match_probability_histogram",
    "emit_fit_metrics",
]


@dataclass
class MixtureParameters:
    """The learned generative model: prior π_M and the two distributions."""

    prior_match: float
    match: BlockDiagonalGaussian
    unmatch: BlockDiagonalGaussian


def mixture_state(params: MixtureParameters) -> dict:
    """Array-valued state of a learned mixture (for artifact persistence)."""
    return {
        "prior_match": float(params.prior_match),
        "match_mean": np.asarray(params.match.mean, dtype=np.float64),
        "match_blocks": [np.asarray(b, dtype=np.float64) for b in params.match.blocks],
        "unmatch_mean": np.asarray(params.unmatch.mean, dtype=np.float64),
        "unmatch_blocks": [np.asarray(b, dtype=np.float64) for b in params.unmatch.blocks],
    }


def mixture_from_state(state: dict, groups: list[list[int]]) -> MixtureParameters:
    """Rebuild :class:`MixtureParameters` from :func:`mixture_state` output."""
    groups = [list(g) for g in groups]
    return MixtureParameters(
        prior_match=float(state["prior_match"]),
        match=BlockDiagonalGaussian(state["match_mean"], groups, list(state["match_blocks"])),
        unmatch=BlockDiagonalGaussian(
            state["unmatch_mean"], groups, list(state["unmatch_blocks"])
        ),
    )


def frozen_scorer_state(
    kind: str,
    config: ZeroERConfig,
    runner: "EMRunner",
    normalizer,
    impute_means,
) -> dict:
    """Assemble the inference-only state shared by every frozen matcher.

    One schema for :class:`~repro.core.model.ZeroER` and
    :class:`~repro.core.linkage.ZeroERLinkage` — only ``kind`` differs —
    so the artifact layer and both models cannot drift apart.
    """
    return {
        "kind": kind,
        "config": dataclasses.asdict(config),
        "groups": [list(g) for g in runner.groups],
        "norm_mins": np.asarray(normalizer.mins_),
        "norm_maxs": np.asarray(normalizer.maxs_),
        "impute_means": np.asarray(impute_means),
        "mixture": mixture_state(runner.params),
    }


def frozen_scorer_parts(state: dict, name: str = "model"):
    """Disassemble :func:`frozen_scorer_state` output.

    Returns ``(config, normalizer, impute_means, runner)`` with the runner
    frozen via :meth:`EMRunner.from_params`.
    """
    from repro.features.normalize import MinMaxNormalizer

    config = ZeroERConfig(**state["config"])
    normalizer = MinMaxNormalizer()
    normalizer.mins_ = np.asarray(state["norm_mins"], dtype=np.float64)
    normalizer.maxs_ = np.asarray(state["norm_maxs"], dtype=np.float64)
    impute_means = np.asarray(state["impute_means"], dtype=np.float64)
    groups = [list(g) for g in state["groups"]]
    params = mixture_from_state(state["mixture"], groups)
    return config, normalizer, impute_means, EMRunner.from_params(params, groups, config, name)


@dataclass
class EMHistory:
    """Per-fit diagnostics used by tests and the scalability benchmark."""

    log_likelihoods: list[float] = field(default_factory=list)
    iteration_seconds: list[float] = field(default_factory=list)
    transitivity_adjustments: list[int] = field(default_factory=list)
    converged: bool = False
    #: Per-iteration histograms of the posterior γ (drift-detection signal);
    #: populated only on traced fits — see :mod:`repro.obs`.
    match_probability_histograms: list[dict] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.log_likelihoods)


def match_probability_histogram(gamma: np.ndarray) -> dict:
    """Ten-bin histogram of a posterior vector over [0, 1] (plain dict)."""
    return histogram_of(gamma)


def emit_fit_metrics(name: str, history: EMHistory, gamma: np.ndarray) -> None:
    """Export one EM fit's convergence signals into the metrics registry.

    Shared by :meth:`EMRunner.run` and the record-linkage trainer's manual
    loop, so both fit paths publish identical metric names: iteration
    counts, final log likelihood and delta, convergence flag, and the final
    posterior distribution.
    """
    add_counter("em.iterations", history.n_iterations)
    set_gauge(f"em.converged.{name}", float(history.converged))
    if history.log_likelihoods:
        set_gauge(f"em.log_likelihood.{name}", history.log_likelihoods[-1])
        if len(history.log_likelihoods) > 1:
            set_gauge(
                f"em.log_likelihood_delta.{name}",
                history.log_likelihoods[-1] - history.log_likelihoods[-2],
            )
    if gamma.size:
        observe("em.match_probability", gamma)


class EMRunner:
    """EM over one candidate pair set.

    Parameters
    ----------
    X:
        Normalized, imputed feature matrix (``n_pairs × d``).
    feature_groups:
        Per-attribute feature index lists. The effective block structure
        follows ``config.covariance``: ``grouped`` uses these groups,
        ``independent`` one block per feature, ``full`` a single block.
    config:
        Hyperparameters; see :class:`~repro.core.config.ZeroERConfig`.
    """

    def __init__(
        self,
        X: np.ndarray,
        feature_groups: list[list[int]] | None,
        config: ZeroERConfig,
        name: str = "model",
    ):
        self.X = check_feature_matrix(X)
        self.config = config
        self.name = name
        d = self.X.shape[1]
        declared = check_feature_groups(feature_groups, d)
        if config.covariance == "full":
            self.groups = [list(range(d))]
        elif config.covariance == "independent":
            self.groups = [[j] for j in range(d)]
        else:
            self.groups = declared
        self.gamma = magnitude_initialization(self.X, config.init_threshold)
        self.params: MixtureParameters | None = None
        self.history = EMHistory()
        # Iteration-loop state lives on the instance (not as locals in
        # :meth:`run`) so a fit can be checkpointed mid-loop and resumed
        # bit-identically — see :meth:`capture_loop_state`.
        self._tail: deque[np.ndarray] = deque(maxlen=config.tail_window)
        self._previous_ll: float | None = None
        self._iteration = 0
        # The shared correlation R (§4) depends only on the data, not on the
        # posteriors — estimate it once.
        self._shared_correlation = (
            pooled_correlation_blocks(self.X, self.groups)
            if config.shared_correlation
            else None
        )

    @classmethod
    def from_params(
        cls,
        params: MixtureParameters,
        feature_groups: list[list[int]],
        config: ZeroERConfig,
        name: str = "model",
    ) -> "EMRunner":
        """A frozen runner carrying learned parameters but no training data.

        Used when deserializing model artifacts: :meth:`posterior` works
        (it needs only ``params``), while the training-side methods
        (:meth:`m_step`, :meth:`e_step`, :meth:`run`) must not be called —
        there is no feature matrix to re-fit on.
        """
        runner = object.__new__(cls)
        runner.X = np.zeros((0, params.match.n_features))
        runner.config = config
        runner.name = name
        runner.groups = [list(g) for g in feature_groups]
        runner.gamma = np.zeros(0)
        runner.params = params
        runner.history = EMHistory()
        runner._tail = deque(maxlen=config.tail_window)
        runner._previous_ll = None
        runner._iteration = 0
        runner._shared_correlation = None
        return runner

    # -- M-step -----------------------------------------------------------------

    def m_step(self) -> MixtureParameters:
        """Re-estimate π, μ_C, Σ_C from the current posteriors (Eq. 8/11/13/15).

        If one component's effective mass has collapsed below
        ``config.min_component_mass``, its previous parameters are kept (a
        numerical guard; the prior keeps shrinking so EM still converges).
        """
        cfg = self.config
        n = self.X.shape[0]
        weights = {"M": self.gamma, "U": 1.0 - self.gamma}
        masses = {c: float(w.sum()) for c, w in weights.items()}

        means: dict[str, np.ndarray] = {}
        for c, w in weights.items():
            if masses[c] < cfg.min_component_mass and self.params is not None:
                previous = self.params.match if c == "M" else self.params.unmatch
                means[c] = previous.mean
            else:
                means[c] = weighted_mean(self.X, np.maximum(w, 0.0) + 1e-300)

        penalty = penalty_diagonal(cfg, means["M"], means["U"])

        distributions: dict[str, BlockDiagonalGaussian] = {}
        for c, w in weights.items():
            if masses[c] < cfg.min_component_mass and self.params is not None:
                distributions[c] = self.params.match if c == "M" else self.params.unmatch
                continue
            blocks = []
            for g, idx in enumerate(self.groups):
                sub = self.X[:, idx]
                cov = weighted_covariance(sub, w, means[c][idx])
                if self._shared_correlation is not None:
                    cov = rescale_to_correlation(cov, self._shared_correlation[g])
                blocks.append(apply_regularization(cov, penalty, idx))
            distributions[c] = BlockDiagonalGaussian(means[c], self.groups, blocks)

        prior = float(np.clip(masses["M"] / n, cfg.prior_floor, 1.0 - cfg.prior_floor))
        self.params = MixtureParameters(prior, distributions["M"], distributions["U"])
        return self.params

    # -- E-step -----------------------------------------------------------------

    def e_step(self) -> float:
        """Update posteriors from the current parameters (Equation 3).

        Returns the observed-data log likelihood normalized per pair, which
        is the convergence criterion quantity of §6.
        """
        if self.params is None:
            raise RuntimeError("m_step must run before e_step")
        log_m = np.log(self.params.prior_match) + self.params.match.logpdf(self.X)
        log_u = np.log1p(-self.params.prior_match) + self.params.unmatch.logpdf(self.X)
        log_total = np.logaddexp(log_m, log_u)
        gamma = np.exp(log_m - log_total)
        # flush vanishing posteriors to exact zero: subnormal floats in the
        # M-step's weighted sums hit the CPU's slow denormal path (an
        # order-of-magnitude per-iteration slowdown on large candidate sets)
        gamma[gamma < 1e-30] = 0.0
        gamma[gamma > 1.0 - 1e-15] = 1.0
        self.gamma = gamma
        return float(np.mean(log_total))

    # -- checkpointable loop state ------------------------------------------------

    def fingerprint(self) -> dict:
        """What a checkpoint must match to be resumable into this runner.

        Resuming EM state onto a different candidate set, feature space, or
        configuration would silently produce garbage; the fingerprint makes
        that a :class:`~repro.reliability.checkpoint.CheckpointError`.
        """
        return {
            "name": self.name,
            "n_pairs": int(self.X.shape[0]),
            "n_features": int(self.X.shape[1]),
            "groups": [list(g) for g in self.groups],
            "config": dataclasses.asdict(self.config),
        }

    def capture_loop_state(self, prefix: str = "") -> tuple[dict, dict[str, np.ndarray]]:
        """Snapshot the iteration loop: ``(json_meta, named_arrays)``.

        Everything :meth:`restore_loop_state` needs to continue the fit
        bit-identically: posteriors, the tail-averaging window, the learned
        parameters, the likelihood trace, and the loop counters. Array keys
        are prefixed (``"F."`` etc.) so the record-linkage trainer can pack
        three runners into one checkpoint.
        """
        n = int(self.gamma.shape[0])
        arrays: dict[str, np.ndarray] = {
            f"{prefix}gamma": np.asarray(self.gamma, dtype=np.float64),
            f"{prefix}tail": (
                np.stack(self._tail) if self._tail else np.zeros((0, n))
            ),
        }
        meta = {
            "iteration": self._iteration,
            "previous_ll": self._previous_ll,
            "log_likelihoods": list(self.history.log_likelihoods),
            "iteration_seconds": list(self.history.iteration_seconds),
            "transitivity_adjustments": list(self.history.transitivity_adjustments),
            "has_params": self.params is not None,
        }
        if self.params is not None:
            state = mixture_state(self.params)
            meta["prior_match"] = state["prior_match"]
            meta["n_blocks"] = len(state["match_blocks"])
            arrays[f"{prefix}match_mean"] = state["match_mean"]
            arrays[f"{prefix}unmatch_mean"] = state["unmatch_mean"]
            for c in ("match", "unmatch"):
                for g, block in enumerate(state[f"{c}_blocks"]):
                    arrays[f"{prefix}{c}_block_{g}"] = block
        return meta, arrays

    def restore_loop_state(self, meta: dict, arrays, prefix: str = "") -> None:
        """Inverse of :meth:`capture_loop_state`: rewind to the snapshot."""
        self.gamma = np.asarray(arrays[f"{prefix}gamma"], dtype=np.float64)
        tail_stack = np.asarray(arrays[f"{prefix}tail"], dtype=np.float64)
        self._tail = deque(
            (row.copy() for row in tail_stack), maxlen=self.config.tail_window
        )
        self._previous_ll = meta["previous_ll"]
        self._iteration = int(meta["iteration"])
        self.history.log_likelihoods = [float(v) for v in meta["log_likelihoods"]]
        self.history.iteration_seconds = [float(v) for v in meta["iteration_seconds"]]
        self.history.transitivity_adjustments = [
            int(v) for v in meta["transitivity_adjustments"]
        ]
        if meta.get("has_params"):
            n_blocks = int(meta["n_blocks"])
            self.params = mixture_from_state(
                {
                    "prior_match": meta["prior_match"],
                    "match_mean": arrays[f"{prefix}match_mean"],
                    "unmatch_mean": arrays[f"{prefix}unmatch_mean"],
                    "match_blocks": [
                        arrays[f"{prefix}match_block_{g}"] for g in range(n_blocks)
                    ],
                    "unmatch_blocks": [
                        arrays[f"{prefix}unmatch_block_{g}"] for g in range(n_blocks)
                    ],
                },
                self.groups,
            )

    def save_checkpoint(self, store) -> None:
        """Write this runner's loop state through the crash-safe writer."""
        meta, arrays = self.capture_loop_state()
        store.save(
            {
                "format": 1,
                "kind": "em",
                "iteration": self._iteration,
                "fingerprint": self.fingerprint(),
                "runner": meta,
            },
            arrays,
        )

    def resume_from_checkpoint(self, store) -> bool:
        """Restore the latest valid checkpoint; ``False`` if there is none.

        Raises :class:`~repro.reliability.checkpoint.CheckpointError` when
        the stored fingerprint does not match this fit (different data,
        feature space, or configuration).
        """
        loaded = store.latest()
        if loaded is None:
            return False
        meta, arrays = loaded
        if meta.get("kind") != "em" or meta.get("fingerprint") != self.fingerprint():
            raise CheckpointError(
                f"checkpoint in {store.root} does not match this fit "
                "(different data, feature space, or configuration)",
                path=store.root,
            )
        self.restore_loop_state(meta["runner"], arrays)
        record_condition(
            EM_RESUMED_FROM_CHECKPOINT,
            f"{self.name}: resumed EM at iteration {self._iteration}",
            severity="info",
            model=self.name,
            iteration=self._iteration,
        )
        return True

    # -- full loop (single-model case) ------------------------------------------

    def run(self, calibrator=None, controls: FitControls | None = None) -> EMHistory:
        """Algorithm 1: iterate M/E (with optional transitivity calibration).

        On hitting ``max_iter`` without likelihood convergence the posterior
        is replaced by the average of the last ``tail_window`` iterations'
        posteriors (§6's tail averaging). ``controls`` adds the reliability
        behaviors (all off by default): periodic crash-safe checkpoints,
        resuming from the latest checkpoint, and a wall-clock budget that
        stops the loop with best-so-far parameters and ``converged=False``
        instead of running to ``max_iter``.
        """
        cfg = self.config
        traced = telemetry_active()
        store = controls.checkpoint if controls is not None else None
        started_run = time.monotonic()
        with span(
            "em.fit", model=self.name, n_pairs=int(self.X.shape[0]), max_iter=cfg.max_iter
        ) as sp:
            if controls is not None and controls.resume and store is not None:
                self.resume_from_checkpoint(store)
            budget_hit = False
            while self._iteration < cfg.max_iter:
                iteration = self._iteration
                started = time.perf_counter()
                self.m_step()
                ll = self.e_step()
                if calibrator is not None and iteration >= cfg.transitivity_warmup:
                    self.history.transitivity_adjustments.append(
                        calibrator.calibrate(self.gamma)
                    )
                self._tail.append(self.gamma.copy())
                self.history.iteration_seconds.append(time.perf_counter() - started)
                self.history.log_likelihoods.append(ll)
                if traced:
                    self.history.match_probability_histograms.append(
                        match_probability_histogram(self.gamma)
                    )
                self._iteration += 1
                if self._previous_ll is not None and abs(ll - self._previous_ll) < cfg.tol:
                    self.history.converged = True
                    break
                self._previous_ll = ll
                if controls is not None and controls.time_budget_s is not None:
                    budget_hit = time.monotonic() - started_run >= controls.time_budget_s
                # Checkpoints capture the clean loop state *before* any
                # tail-averaging, so a resumed run continues exactly where
                # an uninterrupted one would be.
                if store is not None and (
                    budget_hit or self._iteration % controls.checkpoint_every == 0
                ):
                    self.save_checkpoint(store)
                if budget_hit:
                    record_condition(
                        EM_TIME_BUDGET_EXHAUSTED,
                        f"{self.name}: EM stopped after {self._iteration} iterations "
                        f"on a {controls.time_budget_s:g}s budget; returning "
                        "best-so-far parameters",
                        model=self.name,
                        iteration=self._iteration,
                        time_budget_s=controls.time_budget_s,
                    )
                    break
            if not self.history.converged:
                if not budget_hit:
                    record_condition(
                        EM_NON_CONVERGENCE,
                        f"{self.name}: EM hit max_iter={cfg.max_iter} without "
                        "likelihood convergence; returning the tail-averaged "
                        "posterior",
                        model=self.name,
                        max_iter=cfg.max_iter,
                    )
                if len(self._tail) > 1:
                    self.gamma = np.mean(np.stack(self._tail), axis=0)
            sp.set(
                n_iterations=self.history.n_iterations, converged=self.history.converged
            )
        if traced:
            emit_fit_metrics(self.name, self.history, self.gamma)
        return self.history

    # -- inference on new data ----------------------------------------------------

    def posterior(self, X: np.ndarray) -> np.ndarray:
        """Posterior match probabilities for new (already normalized) rows."""
        if self.params is None:
            raise RuntimeError("model has no parameters; fit first")
        X = check_feature_matrix(X)
        log_m = np.log(self.params.prior_match) + self.params.match.logpdf(X)
        log_u = np.log1p(-self.params.prior_match) + self.params.unmatch.logpdf(X)
        return np.exp(log_m - np.logaddexp(log_m, log_u))
