"""The ZeroER matcher (single-model form).

Covers deduplication (one table, within-table pairs) and plain record
linkage when the three-model transitivity coupling of §5 is not wanted —
for that, use :class:`repro.core.linkage.ZeroERLinkage`.

The matcher is completely unsupervised: ``fit`` consumes only the feature
matrix (plus the feature-group partition and, optionally, the pair ids that
enable transitivity calibration).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ZeroERConfig
from repro.core.em import (
    EMHistory,
    EMRunner,
    MixtureParameters,
    frozen_scorer_parts,
    frozen_scorer_state,
)
from repro.core.transitivity import DedupTransitivityCalibrator
from repro.features.normalize import (
    MinMaxNormalizer,
    apply_normalization,
    fit_normalization,
)
from repro.utils.validation import check_feature_matrix

__all__ = ["ZeroER"]


class ZeroER:
    """Unsupervised entity-resolution matcher (paper Algorithm 1).

    Parameters
    ----------
    config:
        Full configuration; defaults to the paper's final model.
    **overrides:
        Convenience keyword overrides applied on top of ``config``, e.g.
        ``ZeroER(kappa=0.3, transitivity=False)``.

    Examples
    --------
    >>> model = ZeroER(transitivity=False)
    >>> labels = model.fit_predict(X, feature_groups=groups)   # doctest: +SKIP
    """

    def __init__(self, config: ZeroERConfig | None = None, **overrides):
        base = config if config is not None else ZeroERConfig()
        self.config = base.replace(**overrides) if overrides else base
        self._normalizer: MinMaxNormalizer | None = None
        self._impute_means: np.ndarray | None = None
        self._runner: EMRunner | None = None

    # -- fitting -------------------------------------------------------------

    def fit(
        self,
        X,
        feature_groups: Sequence[Sequence[int]] | None = None,
        pairs: Sequence[tuple] | None = None,
        controls=None,
    ) -> "ZeroER":
        """Fit the generative model on an unlabeled candidate set.

        Parameters
        ----------
        X:
            Raw feature matrix (``n_pairs × d``); NaN cells (missing
            attribute values) are allowed and imputed internally.
        feature_groups:
            Per-attribute feature index lists from the feature generator.
            ``None`` treats every feature as its own group.
        pairs:
            Record-id pairs aligned with the rows of ``X``. Required for
            transitivity calibration; if omitted while
            ``config.transitivity`` is on, calibration is skipped.
        controls:
            Optional :class:`~repro.reliability.checkpoint.FitControls`:
            crash-safe EM checkpoints, resume, and a wall-clock budget.
        """
        X = check_feature_matrix(X, allow_nan=True)
        if pairs is not None and len(pairs) != X.shape[0]:
            raise ValueError(f"{len(pairs)} pairs for {X.shape[0]} feature rows")
        X_model = self._prepare_training(X)
        self._runner = EMRunner(X_model, self._as_groups(feature_groups), self.config)
        calibrator = None
        if self.config.transitivity and pairs is not None:
            calibrator = DedupTransitivityCalibrator(
                pairs, max_degree=self.config.transitivity_max_degree
            )
        self._runner.run(calibrator, controls=controls)
        return self

    def fit_predict(
        self,
        X,
        feature_groups: Sequence[Sequence[int]] | None = None,
        pairs: Sequence[tuple] | None = None,
    ) -> np.ndarray:
        """Fit and return the 0/1 match labels for the training pairs."""
        return self.fit(X, feature_groups, pairs).labels_

    def _prepare_training(self, X: np.ndarray) -> np.ndarray:
        self._normalizer, self._impute_means, prepared = fit_normalization(X)
        return prepared

    @staticmethod
    def _as_groups(feature_groups) -> list[list[int]] | None:
        if feature_groups is None:
            return None
        return [list(g) for g in feature_groups]

    # -- fitted state ------------------------------------------------------------

    def _check_fitted(self) -> EMRunner:
        if self._runner is None:
            raise RuntimeError("ZeroER must be fitted before this operation")
        return self._runner

    @property
    def match_scores_(self) -> np.ndarray:
        """Posterior match probabilities γ for the training pairs."""
        return self._check_fitted().gamma

    @property
    def labels_(self) -> np.ndarray:
        """0/1 match labels (γ > 0.5, Equation 5) for the training pairs."""
        return (self._check_fitted().gamma > 0.5).astype(np.int64)

    @property
    def params_(self) -> MixtureParameters:
        """The learned prior and M/U distributions."""
        params = self._check_fitted().params
        if params is None:
            raise RuntimeError("ZeroER has no parameters; fit first")
        return params

    @property
    def history_(self) -> EMHistory:
        """Likelihood trace, timings, and convergence flag."""
        return self._check_fitted().history

    @property
    def n_iter_(self) -> int:
        return self.history_.n_iterations

    @property
    def converged_(self) -> bool:
        return self.history_.converged

    # -- persistence --------------------------------------------------------------

    def get_fitted_state(self) -> dict:
        """Everything :meth:`predict_proba` needs, as plain dicts and arrays.

        Captures the configuration, feature grouping, normalization and
        imputation statistics, and the learned mixture — but *not* the
        training matrix or posteriors. A model restored with
        :meth:`from_fitted_state` scores new pairs bit-identically; it cannot
        be re-fitted (that requires training data).
        """
        runner = self._check_fitted()
        if runner.params is None:
            raise RuntimeError("ZeroER has no parameters; fit first")
        if self._normalizer is None or self._impute_means is None:
            raise RuntimeError("ZeroER must be fitted before get_fitted_state")
        return frozen_scorer_state(
            "zeroer", self.config, runner, self._normalizer, self._impute_means
        )

    @classmethod
    def from_fitted_state(cls, state: dict) -> "ZeroER":
        """Rebuild a frozen (inference-only) matcher from :meth:`get_fitted_state`."""
        config, normalizer, impute_means, runner = frozen_scorer_parts(state)
        model = cls(config)
        model._normalizer = normalizer
        model._impute_means = impute_means
        model._runner = runner
        return model

    # -- inference on unseen pairs ----------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        """Posterior match probabilities for *new* candidate pairs.

        The new rows are normalized and imputed with the training
        statistics, then scored under the learned mixture (no transitivity
        calibration — the new pairs carry no graph context). Used by the
        Figure 4(c) experiment: fit on an unlabeled subsample, predict the
        remainder.
        """
        runner = self._check_fitted()
        if self._normalizer is None or self._impute_means is None:
            raise RuntimeError("ZeroER must be fitted before predict_proba")
        X = check_feature_matrix(X, allow_nan=True)
        return runner.posterior(apply_normalization(self._normalizer, self._impute_means, X))

    def predict(self, X) -> np.ndarray:
        """0/1 match labels for new candidate pairs."""
        return (self.predict_proba(X) > 0.5).astype(np.int64)

    def explain(self, X) -> list:
        """Exact per-attribute-group attributions for each pair in ``X``.

        Returns one :class:`~repro.core.explain.PairExplanation` per row:
        the pair's match log-odds decomposed into the prior term plus one
        log-likelihood-ratio contribution per feature group (the
        block-diagonal structure makes this decomposition exact, not an
        approximation).
        """
        from repro.core.explain import explain_pairs

        runner = self._check_fitted()
        if self._normalizer is None or self._impute_means is None:
            raise RuntimeError("ZeroER must be fitted before explain")
        if runner.params is None:
            raise RuntimeError("ZeroER has no parameters; fit first")
        X = check_feature_matrix(X, allow_nan=True)
        prepared = apply_normalization(self._normalizer, self._impute_means, X)
        return explain_pairs(runner.params, prepared)
