"""Per-pair explanations from the generative model.

A fitted ZeroER model decomposes naturally: because the class-conditional
densities factor over feature groups (block-diagonal covariance), the
posterior log-odds of a pair is a sum of *per-attribute-group*
log-likelihood-ratio contributions plus the prior log-odds:

    log γ/(1−γ) = log π_M/π_U + Σ_g [ log p_M(x_g) − log p_U(x_g) ]

That gives exact, additive attributions: "this pair is a match mostly
because of its title group, despite its price group." No surrogate model is
needed — the explanation *is* the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.em import MixtureParameters
from repro.utils.linalg import gaussian_logpdf

__all__ = ["GroupContribution", "PairExplanation", "explain_pairs"]


@dataclass(frozen=True)
class GroupContribution:
    """One feature group's additive contribution to a pair's match log-odds."""

    group_index: int
    feature_indices: tuple[int, ...]
    log_likelihood_ratio: float

    @property
    def favors_match(self) -> bool:
        return self.log_likelihood_ratio > 0.0


@dataclass(frozen=True)
class PairExplanation:
    """Exact additive decomposition of one pair's posterior log-odds."""

    prior_log_odds: float
    contributions: tuple[GroupContribution, ...]
    log_odds: float
    posterior: float

    def top(self, k: int = 3) -> list[GroupContribution]:
        """The ``k`` groups with the largest absolute contribution."""
        ordered = sorted(
            self.contributions, key=lambda c: -abs(c.log_likelihood_ratio)
        )
        return ordered[:k]


def explain_pairs(params: MixtureParameters, X: np.ndarray) -> list[PairExplanation]:
    """Decompose the match log-odds of each row of ``X``.

    ``X`` must already be normalized/imputed the same way the model was
    trained (use :meth:`repro.core.model.ZeroER.explain`, which handles
    that). The per-group contributions plus the prior term reconstruct the
    model's posterior exactly.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    match, unmatch = params.match, params.unmatch
    if X.shape[1] != match.n_features:
        raise ValueError(f"X has {X.shape[1]} features, model has {match.n_features}")
    prior_log_odds = float(np.log(params.prior_match) - np.log1p(-params.prior_match))

    per_group: list[np.ndarray] = []
    for (idx, m_block), u_block in zip(zip(match.groups, match.blocks), unmatch.blocks):
        llr = gaussian_logpdf(X[:, idx], match.mean[idx], m_block) - gaussian_logpdf(
            X[:, idx], unmatch.mean[idx], u_block
        )
        per_group.append(llr)
    stacked = np.stack(per_group, axis=1)  # (n, n_groups)

    explanations = []
    for i in range(X.shape[0]):
        contributions = tuple(
            GroupContribution(g, tuple(match.groups[g]), float(stacked[i, g]))
            for g in range(len(match.groups))
        )
        log_odds = prior_log_odds + float(stacked[i].sum())
        posterior = float(1.0 / (1.0 + np.exp(-np.clip(log_odds, -700, 700))))
        explanations.append(
            PairExplanation(prior_log_odds, contributions, log_odds, posterior)
        )
    return explanations
