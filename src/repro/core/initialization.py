"""EM initialization (paper §6).

The class assignment of each pair is initialized from the relative magnitude
of its feature vector: min–max normalize ``‖x_i‖`` over all pairs, then
assign ``γ_i = 1`` above the threshold ε and ``γ_i = 0`` below. Feature
vectors are similarity vectors, so large magnitude is a reasonable zero-
knowledge proxy for "probably a match". The paper shows robustness to ε in
Figure 4(b), with failure only at the extremes where one component starts
empty.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import InitializationError

__all__ = ["magnitude_initialization"]


def magnitude_initialization(X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Initial hard posteriors from normalized feature-vector magnitudes.

    Raises
    ------
    InitializationError
        If every pair lands in the same component (e.g. ε = 0 or ε = 1), in
        which case EM cannot estimate one of the distributions.
    """
    if threshold <= 0.0 or threshold >= 1.0:
        # §7.4: "when ε = 0 or 1, no data is assigned to M or U component so
        # that EM will fail to run"
        raise InitializationError(
            f"initialization threshold {threshold} leaves one component empty; EM cannot run"
        )
    X = np.asarray(X, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1)
    span = norms.max() - norms.min()
    if span > 0.0:
        scaled = (norms - norms.min()) / span
    else:
        scaled = np.zeros_like(norms)
    gamma = (scaled > threshold).astype(np.float64)
    n_match = int(gamma.sum())
    if n_match == 0 or n_match == gamma.shape[0]:
        raise InitializationError(
            f"initialization threshold {threshold} assigned all {gamma.shape[0]} pairs to one "
            "component; EM cannot run (try a threshold nearer 0.5)"
        )
    return gamma
