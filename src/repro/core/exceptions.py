"""Exception hierarchy for the ZeroER core."""

__all__ = ["ZeroERError", "InitializationError", "EMFailureError"]


class ZeroERError(Exception):
    """Base class for all ZeroER-specific failures."""


class InitializationError(ZeroERError):
    """EM could not start: the initial assignment left a component empty.

    The paper observes this at initialization thresholds ε = 0 or ε = 1
    (§7.4): with no pairs assigned to one component, its parameters cannot
    be estimated and EM fails to run.
    """


class EMFailureError(ZeroERError):
    """EM could not continue (e.g. a component's effective mass collapsed)."""
