"""Exception hierarchy for the ZeroER core."""

__all__ = [
    "ZeroERError",
    "InitializationError",
    "EMFailureError",
    "FeatureMatrixError",
]


class ZeroERError(Exception):
    """Base class for all ZeroER-specific failures."""


class FeatureMatrixError(ZeroERError, ValueError):
    """A feature matrix is unusable for fitting (e.g. infinite values).

    Subclasses ``ValueError`` so existing callers that catch the generic
    validation error keep working; the message names the offending columns
    so the diagnostic points at the feature, not at a numpy warning three
    layers down.
    """


class InitializationError(ZeroERError):
    """EM could not start: the initial assignment left a component empty.

    The paper observes this at initialization thresholds ε = 0 or ε = 1
    (§7.4): with no pairs assigned to one component, its parameters cannot
    be estimated and EM fails to run.
    """


class EMFailureError(ZeroERError):
    """EM could not continue (e.g. a component's effective mass collapsed)."""
