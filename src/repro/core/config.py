"""Configuration and ablation switches for ZeroER.

Every design choice the paper ablates in Table 4 is an explicit knob here:

=====================  =======================================================
knob                   paper section
=====================  =======================================================
``covariance``         §3.2 feature grouping (``full`` / ``independent`` /
                       ``grouped``)
``regularization``     §3.3 (``none`` / ``tikhonov`` / ``adaptive``)
``kappa``              regularization magnitude (0.15 default; the paper uses
                       0.6 for partially-equipped ablation variants)
``shared_correlation`` §4 class-imbalance handling ("P" in Table 4)
``transitivity``       §5 soft transitivity constraint ("T" in Table 4)
``init_threshold``     §6 initialization ε (default 0.5)
=====================  =======================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = [
    "ZeroERConfig",
    "COVARIANCE_STRUCTURES",
    "REGULARIZATIONS",
    "ablation_variants",
]

COVARIANCE_STRUCTURES = ("grouped", "full", "independent")
REGULARIZATIONS = ("none", "tikhonov", "adaptive")


@dataclass(frozen=True)
class ZeroERConfig:
    """Hyperparameters of the ZeroER generative model.

    The defaults reproduce the paper's full configuration
    (grouped + adaptive + shared correlation + transitivity, κ = 0.15).
    """

    covariance: str = "grouped"
    regularization: str = "adaptive"
    kappa: float = 0.15
    shared_correlation: bool = True
    transitivity: bool = True
    init_threshold: float = 0.5
    max_iter: int = 200
    tol: float = 1e-5
    tail_window: int = 20
    prior_floor: float = 1e-10
    #: Minimum effective sample mass for a component before its parameters
    #: are frozen instead of re-estimated (numerical guard, not in the paper).
    min_component_mass: float = 1e-3
    #: Per-node cap on high-confidence edges considered by the transitivity
    #: calibrator (bounds the triangle enumeration; §5's efficiency argument).
    transitivity_max_degree: int = 30
    #: EM iterations to run before the first transitivity calibration. The
    #: paper calibrates every E-step; calibrating against *uninitialized*
    #: within-table models mass-demotes posteriors from noise, so we let all
    #: models stabilize first (implementation choice, documented in DESIGN.md).
    transitivity_warmup: int = 5
    #: Initialization threshold ε for the within-table models Fl/Fr in record
    #: linkage. Their candidate populations are co-candidate neighborhoods —
    #: *every* pair is textually similar — so the cross-model default ε = 0.5
    #: seeds far too large a match component; only near-identical pairs
    #: should seed it (implementation choice, documented in DESIGN.md).
    within_init_threshold: float = 0.7
    #: Record-linkage training schedule. ``"staged"`` (default) trains the
    #: within-table models Fl/Fr to convergence first and holds them fixed
    #: while F trains with calibration — calibration writes to Fl/Fr are then
    #: sticky, which prevents the raise-then-overwrite oscillation the joint
    #: schedule can fall into. ``"joint"`` is the paper's literal per-iteration
    #: interleaving (F.E, F.M, Fl.M, Fl.E, Fr.M, Fr.E). See DESIGN.md.
    linkage_mode: str = "staged"

    def __post_init__(self):
        if self.covariance not in COVARIANCE_STRUCTURES:
            raise ValueError(
                f"covariance must be one of {COVARIANCE_STRUCTURES}, got {self.covariance!r}"
            )
        if self.regularization not in REGULARIZATIONS:
            raise ValueError(
                f"regularization must be one of {REGULARIZATIONS}, got {self.regularization!r}"
            )
        if self.kappa < 0.0:
            raise ValueError(f"kappa must be non-negative, got {self.kappa}")
        if not 0.0 <= self.init_threshold <= 1.0:
            raise ValueError(f"init_threshold must be in [0, 1], got {self.init_threshold}")
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter}")
        if self.tol <= 0.0:
            raise ValueError(f"tol must be positive, got {self.tol}")
        if self.tail_window < 1:
            raise ValueError(f"tail_window must be >= 1, got {self.tail_window}")
        if not 0.0 < self.prior_floor < 0.5:
            raise ValueError(f"prior_floor must be in (0, 0.5), got {self.prior_floor}")
        if self.transitivity_max_degree < 2:
            raise ValueError(
                f"transitivity_max_degree must be >= 2, got {self.transitivity_max_degree}"
            )
        if self.transitivity_warmup < 0:
            raise ValueError(
                f"transitivity_warmup must be >= 0, got {self.transitivity_warmup}"
            )
        if self.linkage_mode not in ("staged", "joint"):
            raise ValueError(
                f"linkage_mode must be 'staged' or 'joint', got {self.linkage_mode!r}"
            )
        if not 0.0 <= self.within_init_threshold <= 1.0:
            raise ValueError(
                f"within_init_threshold must be in [0, 1], got {self.within_init_threshold}"
            )

    def replace(self, **changes) -> "ZeroERConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """All fields as a JSON-serializable dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ZeroERConfig":
        """Build a config from a (possibly partial) field dict.

        Missing fields take their defaults; unknown keys raise ``ValueError``
        so a typo in a spec file fails loudly instead of silently running
        with defaults. Field values go through the usual ``__post_init__``
        validation.
        """
        if not isinstance(data, dict):
            raise ValueError(f"config must be a dict, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown key(s) {unknown} in ZeroERConfig spec")
        return cls(**data)


def ablation_variants(kappa_partial: float = 0.6, kappa_full: float = 0.15) -> dict[str, ZeroERConfig]:
    """The eleven model variants of Table 4, keyed by the paper's column names.

    ``kappa_partial`` (0.6 in the paper) is used for every variant that is
    not the final model; ``kappa_full`` (0.15) for G+A+P and G+A+P+T.
    """
    def base(**kw) -> ZeroERConfig:
        defaults = dict(shared_correlation=False, transitivity=False, kappa=kappa_partial)
        defaults.update(kw)
        return ZeroERConfig(**defaults)

    return {
        # no regularization
        "Full": base(covariance="full", regularization="none"),
        "Independent": base(covariance="independent", regularization="none"),
        "Grouped": base(covariance="grouped", regularization="none"),
        # Tikhonov regularization
        "F-Tik": base(covariance="full", regularization="tikhonov"),
        "I-Tik": base(covariance="independent", regularization="tikhonov"),
        "G-Tik": base(covariance="grouped", regularization="tikhonov"),
        # adaptive regularization
        "F-Adp": base(covariance="full", regularization="adaptive"),
        "I-Adp": base(covariance="independent", regularization="adaptive"),
        "G-Adp": base(covariance="grouped", regularization="adaptive"),
        # + Pearson (shared correlation), + transitivity
        "G+A+P": base(regularization="adaptive", shared_correlation=True, kappa=kappa_full),
        "G+A+P+T": base(
            regularization="adaptive",
            shared_correlation=True,
            transitivity=True,
            kappa=kappa_full,
        ),
    }
