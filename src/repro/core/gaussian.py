"""Block-diagonal multivariate Gaussian.

Feature grouping (paper §3.2) makes each class-conditional distribution a
product of independent per-group Gaussians — equivalently one Gaussian with
a block-diagonal covariance (Equation 10). The log-density therefore
decomposes into a sum of small per-block log-densities, which is both the
fast path and the numerically stable one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.linalg import gaussian_logpdf

__all__ = ["BlockDiagonalGaussian"]


@dataclass
class BlockDiagonalGaussian:
    """``N(mean, Σ)`` with ``Σ`` block-diagonal over feature groups.

    Parameters
    ----------
    mean:
        Full mean vector of length ``d``.
    groups:
        Partition of ``range(d)`` into index lists (one per block).
    blocks:
        Per-group covariance matrices, aligned with ``groups``.
    """

    mean: np.ndarray
    groups: list[list[int]]
    blocks: list[np.ndarray]

    def __post_init__(self):
        self.mean = np.asarray(self.mean, dtype=np.float64)
        if len(self.groups) != len(self.blocks):
            raise ValueError(
                f"{len(self.groups)} groups but {len(self.blocks)} covariance blocks"
            )
        covered = sorted(j for g in self.groups for j in g)
        if covered != list(range(self.mean.shape[0])):
            raise ValueError("groups must partition the feature indices exactly")
        for idx, block in zip(self.groups, self.blocks):
            block = np.asarray(block, dtype=np.float64)
            if block.shape != (len(idx), len(idx)):
                raise ValueError(
                    f"block for group {idx} has shape {block.shape}, expected {(len(idx), len(idx))}"
                )

    @property
    def n_features(self) -> int:
        return self.mean.shape[0]

    def logpdf(self, X: np.ndarray) -> np.ndarray:
        """Per-row log density: sum of per-block Gaussian log densities."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features:
            raise ValueError(f"X has {X.shape[1]} features, distribution has {self.n_features}")
        total = np.zeros(X.shape[0])
        for idx, block in zip(self.groups, self.blocks):
            total += gaussian_logpdf(X[:, idx], self.mean[idx], block)
        return total

    def covariance_matrix(self) -> np.ndarray:
        """The full ``d × d`` block-diagonal covariance (for inspection)."""
        d = self.n_features
        cov = np.zeros((d, d))
        for idx, block in zip(self.groups, self.blocks):
            cov[np.ix_(idx, idx)] = block
        return cov

    def variances(self) -> np.ndarray:
        """Per-feature variances (the diagonal of the full covariance)."""
        var = np.zeros(self.n_features)
        for idx, block in zip(self.groups, self.blocks):
            var[idx] = np.diag(block)
        return var
