"""ZeroER core: the paper's generative model.

Public entry points:

* :class:`~repro.core.model.ZeroER` — single-model matcher (deduplication,
  or record linkage without the transitivity coupling);
* :class:`~repro.core.linkage.ZeroERLinkage` — the three-model record-linkage
  trainer of §5 (cross model F plus within-table models Fl, Fr);
* :class:`~repro.core.config.ZeroERConfig` — all hyperparameters and the
  ablation switches of Table 4.
"""

from repro.core.config import ZeroERConfig, ablation_variants
from repro.core.exceptions import EMFailureError, InitializationError, ZeroERError
from repro.core.model import ZeroER
from repro.core.linkage import ZeroERLinkage

__all__ = [
    "ZeroER",
    "ZeroERLinkage",
    "ZeroERConfig",
    "ablation_variants",
    "ZeroERError",
    "InitializationError",
    "EMFailureError",
]
