"""Reliability substrate: crash-safe I/O, resumable fits, health reporting.

Everything here exists so a ``kill -9`` (or a flaky disk) at any moment
leaves the system in a defined state:

* :mod:`repro.reliability.atomic` — atomic file/directory writes, sha256
  checksum manifests, quarantine, bounded I/O retry.
* :mod:`repro.reliability.checkpoint` — iteration-stamped EM checkpoints
  and the :class:`FitControls` knob bundle (checkpointing cadence, resume,
  wall-clock budget).
* :mod:`repro.reliability.health` — graceful-degradation flags collected
  into a :class:`HealthReport` per run.
* :mod:`repro.reliability.faultinject` — the failpoint harness the test
  suite uses to prove the crash-consistency invariant.
"""

from repro.reliability.atomic import (
    CHECKSUMS_NAME,
    TMP_MARKER,
    IntegrityError,
    atomic_directory,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    cleanup_stale_tmp,
    quarantine,
    retry_io,
    sha256_file,
    verify_checksum_manifest,
    write_checksum_manifest,
)
from repro.reliability.checkpoint import CheckpointError, CheckpointStore, FitControls
from repro.reliability.faultinject import (
    FaultInjector,
    SimulatedCrash,
    inject,
    inject_global,
    record_failpoints,
)
from repro.reliability.health import (
    ALL_NAN_FEATURE_COLUMN,
    ARTIFACT_IO_RETRIED,
    EM_NON_CONVERGENCE,
    EM_RESUMED_FROM_CHECKPOINT,
    EM_TIME_BUDGET_EXHAUSTED,
    EMPTY_CANDIDATE_SET,
    SINGULAR_COVARIANCE_FALLBACK,
    HealthFlag,
    HealthReport,
    active_health,
    health_scope,
    record_condition,
)

__all__ = [
    "TMP_MARKER",
    "CHECKSUMS_NAME",
    "IntegrityError",
    "atomic_directory",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "cleanup_stale_tmp",
    "quarantine",
    "retry_io",
    "sha256_file",
    "verify_checksum_manifest",
    "write_checksum_manifest",
    "CheckpointError",
    "CheckpointStore",
    "FitControls",
    "FaultInjector",
    "SimulatedCrash",
    "inject",
    "inject_global",
    "record_failpoints",
    "EMPTY_CANDIDATE_SET",
    "ALL_NAN_FEATURE_COLUMN",
    "SINGULAR_COVARIANCE_FALLBACK",
    "EM_NON_CONVERGENCE",
    "EM_TIME_BUDGET_EXHAUSTED",
    "EM_RESUMED_FROM_CHECKPOINT",
    "ARTIFACT_IO_RETRIED",
    "HealthFlag",
    "HealthReport",
    "active_health",
    "health_scope",
    "record_condition",
]
