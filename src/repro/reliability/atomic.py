"""Crash-safe filesystem primitives: atomic writes, checksums, quarantine.

Every durable artifact in this library (frozen models, EM checkpoints) goes
through this module, which provides the classic write-ahead discipline:

* **atomic file replace** — write to a temp sibling, ``fsync``, ``rename``
  into place, ``fsync`` the parent directory. A reader sees the old bytes
  or the new bytes, never a mix (:func:`atomic_write_bytes`).
* **atomic directory publish** — stage a whole directory next to its final
  name, fsync its contents, and publish it with one ``rename``
  (:func:`atomic_directory`). Multi-file artifacts become visible all at
  once or not at all.
* **checksum manifests** — a ``checksums.json`` with one sha256 per file,
  written at publish time and verified at load time
  (:func:`write_checksum_manifest` / :func:`verify_checksum_manifest`), so
  silent corruption is detected instead of deserialized.
* **quarantine** — :func:`quarantine` renames a directory that failed
  validation to ``<name>.corrupt`` (numbered on collision) so the evidence
  survives while the caller recovers.
* **bounded retry** — :func:`retry_io` retries transient ``OSError`` with
  exponential backoff; deterministic failures propagate after the last
  attempt.

Failure-path hygiene: every temp entry carries the :data:`TMP_MARKER`
infix, exception paths remove their own temp files (unless a simulated
hard crash suppresses cleanup — see :mod:`repro.reliability.faultinject`),
and :func:`cleanup_stale_tmp` sweeps leftovers from real crashes before the
next write.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import shutil
import time
from pathlib import Path

from repro.reliability import faultinject

__all__ = [
    "TMP_MARKER",
    "CHECKSUMS_NAME",
    "IntegrityError",
    "tmp_sibling",
    "cleanup_stale_tmp",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "staged_write_bytes",
    "atomic_directory",
    "remove_tree",
    "retry_io",
    "sha256_file",
    "write_checksum_manifest",
    "verify_checksum_manifest",
    "quarantine",
]

#: Infix marking in-flight temp files/directories; anything carrying it is
#: garbage after a crash and is swept by :func:`cleanup_stale_tmp`.
TMP_MARKER = ".tmp-"

#: File name of the per-directory checksum manifest.
CHECKSUMS_NAME = "checksums.json"

_COUNTER = itertools.count()


class IntegrityError(ValueError):
    """A directory's contents do not match its checksum manifest."""

    def __init__(self, message: str, *, path: Path | None = None):
        super().__init__(message)
        self.path = path


def tmp_sibling(path: Path) -> Path:
    """A unique temp name next to ``path`` (same filesystem, so rename works)."""
    return path.with_name(f"{path.name}{TMP_MARKER}{os.getpid()}-{next(_COUNTER)}")


def cleanup_stale_tmp(root: Path) -> list[Path]:
    """Remove leftover temp entries under ``root`` from crashed writers."""
    root = Path(root)
    removed = []
    if not root.is_dir():
        return removed
    for entry in root.iterdir():
        if TMP_MARKER in entry.name:
            remove_tree(entry)
            removed.append(entry)
    return removed


def remove_tree(path: Path) -> None:
    """Best-effort removal of a file or directory tree."""
    path = Path(path)
    with contextlib.suppress(OSError):
        if path.is_dir() and not path.is_symlink():
            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink(missing_ok=True)


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    # Directory fsync is what makes a rename durable on POSIX; platforms
    # that refuse to open directories (or fsync them) just skip it.
    with contextlib.suppress(OSError):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def _write_halves(handle, data: bytes, failpoint: str) -> None:
    """Write ``data`` in two halves with a failpoint between them.

    The split is what lets the fault harness produce genuinely *partial*
    files: crashing at the midpoint leaves half the payload on disk.
    """
    half = len(data) // 2
    handle.write(data[:half])
    faultinject.trip(failpoint)
    handle.write(data[half:])


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    path = Path(path)
    tmp = tmp_sibling(path)
    faultinject.trip("atomic.file.open")
    try:
        with open(tmp, "wb") as handle:
            _write_halves(handle, data, "atomic.file.mid_write")
            handle.flush()
            faultinject.trip("atomic.file.before_fsync")
            os.fsync(handle.fileno())
        faultinject.trip("atomic.file.before_rename")
        os.replace(tmp, path)
        faultinject.trip("atomic.file.after_rename")
        _fsync_dir(path.parent)
        return path
    except BaseException:
        if not faultinject.hard_crash_active():
            remove_tree(tmp)
        raise


def atomic_write_text(path: str | Path, text: str) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload) -> Path:
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def staged_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write a file inside a staging directory (not yet visible to readers).

    No per-file atomicity is needed — the enclosing
    :func:`atomic_directory` publish is the atomic step — but the write
    still passes failpoints so the fault harness can interrupt it mid-file
    and leave a truncated member behind in the staging area.
    """
    path = Path(path)
    faultinject.trip("staged.file.open")
    with open(path, "wb") as handle:
        _write_halves(handle, data, "staged.file.mid_write")
    return path


@contextlib.contextmanager
def atomic_directory(final: str | Path):
    """Stage a directory and publish it to ``final`` with a single rename.

    Yields the staging path; the caller fills it with files. On normal
    exit every staged file is fsynced, the staging directory is renamed to
    ``final`` (which must not already exist), and the parent directory is
    fsynced. On exception the staging tree is removed — unless a simulated
    hard crash is active, in which case it is left behind exactly as a dead
    process would leave it (and swept by the next writer's
    :func:`cleanup_stale_tmp`).
    """
    final = Path(final)
    if final.exists():
        raise FileExistsError(f"atomic_directory target already exists: {final}")
    staging = tmp_sibling(final)
    staging.mkdir(parents=True)
    try:
        yield staging
        faultinject.trip("atomic.dir.before_sync")
        for entry in sorted(staging.rglob("*")):
            if entry.is_file():
                _fsync_file(entry)
        _fsync_dir(staging)
        faultinject.trip("atomic.dir.before_publish")
        os.replace(staging, final)
        faultinject.trip("atomic.dir.after_publish")
        _fsync_dir(final.parent)
    except BaseException:
        if not faultinject.hard_crash_active():
            remove_tree(staging)
        raise


def retry_io(
    fn,
    *,
    attempts: int = 3,
    backoff_s: float = 0.01,
    retry_on: tuple = (OSError,),
    sleep=time.sleep,
    on_retry=None,
):
    """Call ``fn()`` with bounded retry and exponential backoff.

    Retries only the exception types in ``retry_on`` (transient I/O by
    default); anything else — including a :class:`SimulatedCrash` — is
    never retried. The last failure propagates unchanged. ``on_retry``,
    if given, is called as ``on_retry(exc, attempt)`` before each backoff
    sleep so callers can record that a transient failure was absorbed.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt + 1 >= attempts:
                raise
            if on_retry is not None:
                on_retry(exc, attempt)
            sleep(backoff_s * (2**attempt))


def sha256_file(path: str | Path) -> str:
    """Hex sha256 digest of a file, read in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_checksum_manifest(directory: str | Path) -> Path:
    """Write ``checksums.json`` covering every other file in ``directory``."""
    directory = Path(directory)
    files = {
        entry.name: sha256_file(entry)
        for entry in sorted(directory.iterdir())
        if entry.is_file() and entry.name != CHECKSUMS_NAME
    }
    payload = {"algorithm": "sha256", "files": files}
    data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return staged_write_bytes(directory / CHECKSUMS_NAME, data)


def verify_checksum_manifest(directory: str | Path) -> None:
    """Verify every file listed in ``checksums.json``; raise on any mismatch.

    Raises :class:`IntegrityError` naming each missing or corrupt member.
    A missing or unparseable manifest is itself an integrity failure — an
    artifact published by the atomic writer always carries one.
    """
    directory = Path(directory)
    manifest_path = directory / CHECKSUMS_NAME
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        files = payload["files"]
        if not isinstance(files, dict):
            raise TypeError("'files' must be a dict")
    except FileNotFoundError:
        raise IntegrityError(
            f"{directory} has no {CHECKSUMS_NAME}", path=directory
        ) from None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise IntegrityError(
            f"unreadable {CHECKSUMS_NAME} in {directory}: {exc}", path=directory
        ) from exc
    problems = []
    for name, expected in sorted(files.items()):
        member = directory / name
        if not member.is_file():
            problems.append(f"missing file {name!r}")
        elif sha256_file(member) != expected:
            problems.append(f"checksum mismatch for {name!r}")
    if problems:
        raise IntegrityError(
            f"integrity check failed in {directory}: " + "; ".join(problems),
            path=directory,
        )


def quarantine(path: str | Path) -> Path:
    """Move a corrupt directory (or file) aside to ``<name>.corrupt``.

    Keeps the evidence for postmortems while freeing the original name for
    recovery. Numbered suffixes avoid collisions with earlier quarantines.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    n = 1
    while target.exists():
        target = path.with_name(f"{path.name}.corrupt-{n}")
        n += 1
    os.replace(path, target)
    _fsync_dir(path.parent)
    return target
