"""Fault injection for the crash-safety test suite.

The atomic-write primitives in :mod:`repro.reliability.atomic` call
:func:`trip` at named *failpoints* — the instants where a real process can
die or a real filesystem can fail (mid-write, before a rename, between a
publish and its pointer swap). With no injector installed every failpoint
is a no-op; under :func:`inject` an armed :class:`FaultInjector` raises at
a chosen point, letting tests prove the crash-consistency invariant:

    after a failure at *any* point during a save, a subsequent load yields
    either the previous artifact or the new one, bit-identically — never a
    third state.

Two failure flavors:

* :class:`SimulatedCrash` — models ``kill -9``. With ``hard=True`` the
  atomic helpers also skip their ``finally`` cleanup (a dead process runs
  no cleanup), so stale temp entries are left behind exactly as a real
  crash leaves them.
* any ``OSError`` — models transient I/O failure (disk full, EIO); these
  are what :func:`repro.reliability.atomic.retry_io` retries.

:func:`record_failpoints` runs a callable under a pass-through injector and
returns every failpoint hit in order, so tests can enumerate the crash
surface of an operation instead of hard-coding point names.

Serve-layer chaos: the serving package trips failpoints of its own —
``serve.engine.pass`` (inside the micro-batched engine pass),
``serve.writer.job`` (reload/save jobs on the writer thread),
``serve.reload`` (artifact hot-reload), and ``serve.http.write_response``
(just before a response hits the socket). Because the serving process runs
its event loop and writer thread outside the test's context,
:func:`inject_global` installs an injector visible from *every* thread; and
because overload chaos needs slowness as well as crashes, arms can carry a
``delay_s`` (sleep, then optionally raise) and a ``times`` repeat count.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SimulatedCrash",
    "FaultInjector",
    "inject",
    "inject_global",
    "trip",
    "active_injector",
    "hard_crash_active",
    "record_failpoints",
    "truncate_file",
    "flip_byte",
]


class SimulatedCrash(Exception):
    """Raised at an armed failpoint to simulate a process dying mid-operation."""


@dataclass
class _Arm:
    """One armed failure: fires when its countdown reaches zero.

    ``delay_s`` sleeps before (optionally) raising, so an arm can model a
    slow path — ``exc=None`` makes it delay-only. ``times`` is how many
    firings the arm has left; ``None`` means it never exhausts.
    """

    countdown: int
    exc: BaseException | type[BaseException] | None
    delay_s: float = 0.0
    times: int | None = 1

    def fire(self, name: str) -> None:
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        exc = self.exc
        if exc is None:
            return
        if isinstance(exc, type):
            exc = exc(f"injected failure at failpoint {name!r}")
        raise exc


@dataclass
class FaultInjector:
    """Deterministically fail at named failpoints (or at the N-th hit overall).

    Parameters
    ----------
    hard:
        Simulate a hard crash (``kill -9``): the atomic helpers skip their
        exception-path cleanup, leaving temp files behind exactly as a dead
        process would. Leave ``False`` to model an in-process exception,
        where ``finally`` blocks do run.
    """

    hard: bool = False
    #: Every failpoint hit, in order — also populated by a never-armed
    #: injector, which is how :func:`record_failpoints` enumerates a flow.
    hits: list[str] = field(default_factory=list)
    _by_name: dict[str, _Arm] = field(default_factory=dict)
    _by_index: dict[int, _Arm] = field(default_factory=dict)

    def arm(
        self,
        name: str,
        *,
        after: int = 0,
        exc: BaseException | type[BaseException] | None = SimulatedCrash,
        delay_s: float = 0.0,
        times: int | None = 1,
    ) -> "FaultInjector":
        """Fail at the ``(after + 1)``-th hit of failpoint ``name``.

        ``delay_s`` sleeps before raising (with ``exc=None``: delay only —
        a slow path rather than a dead one). ``times`` repeats the firing
        for that many hits (``None`` = every hit), modeling sustained
        slowness or a flapping fault instead of a one-shot crash.
        """
        self._by_name[name] = _Arm(countdown=after, exc=exc, delay_s=delay_s, times=times)
        return self

    def arm_hit(
        self,
        index: int,
        *,
        exc: BaseException | type[BaseException] = SimulatedCrash,
    ) -> "FaultInjector":
        """Fail at the ``index``-th failpoint hit overall (0-based).

        This is the enumeration hook: pair it with the hit list returned by
        :func:`record_failpoints` to crash an operation at every one of its
        failpoints in turn.
        """
        self._by_index[int(index)] = _Arm(countdown=0, exc=exc)
        return self

    def trip(self, name: str) -> None:
        """Record a failpoint hit and raise if an armed failure matches it."""
        index = len(self.hits)
        self.hits.append(name)
        arm = self._by_index.get(index)
        if arm is not None:
            arm.fire(name)
        arm = self._by_name.get(name)
        if arm is not None:
            if arm.countdown > 0:
                arm.countdown -= 1
                return
            if arm.times is not None:
                arm.times -= 1
                if arm.times <= 0:
                    del self._by_name[name]
            arm.fire(name)


_CURRENT: contextvars.ContextVar[FaultInjector | None] = contextvars.ContextVar(
    "repro_fault_injector", default=None
)

# Cross-thread injector: the serving layer's failpoints fire on the event
# loop and the writer thread, which never see a test's contextvars.
_GLOBAL: FaultInjector | None = None
_GLOBAL_LOCK = threading.Lock()


@contextlib.contextmanager
def inject(injector: FaultInjector):
    """Install ``injector`` as the active fault injector for the block."""
    token = _CURRENT.set(injector)
    try:
        yield injector
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def inject_global(injector: FaultInjector):
    """Install ``injector`` process-wide, visible from every thread.

    The context-local :func:`inject` cannot reach code on other threads
    (a server's event loop, the batcher's writer thread); this one can.
    Only one global injector may be active at a time — chaos tests are
    expected to serialize.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is not None:
            raise RuntimeError("a global FaultInjector is already installed")
        _GLOBAL = injector
    try:
        yield injector
    finally:
        with _GLOBAL_LOCK:
            _GLOBAL = None


def active_injector() -> FaultInjector | None:
    return _CURRENT.get() or _GLOBAL


def trip(name: str) -> None:
    """Hit a failpoint: no-op unless a :class:`FaultInjector` is installed."""
    injector = _CURRENT.get() or _GLOBAL
    if injector is not None:
        injector.trip(name)


def hard_crash_active() -> bool:
    """Whether cleanup paths should behave as if the process just died."""
    injector = _CURRENT.get() or _GLOBAL
    return injector is not None and injector.hard


def record_failpoints(fn) -> list[str]:
    """Run ``fn`` under a pass-through injector; return the failpoints it hit."""
    injector = FaultInjector()
    with inject(injector):
        fn()
    return list(injector.hits)


# -- on-disk corruption helpers (for load-path tests) ---------------------------


def truncate_file(path: str | Path, drop_bytes: int = 16) -> Path:
    """Drop the last ``drop_bytes`` bytes of a file (a partial write)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(0, len(data) - drop_bytes)])
    return path


def flip_byte(path: str | Path, offset: int = -1) -> Path:
    """XOR one byte of a file (silent media corruption)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path
