"""Fault injection for the crash-safety test suite.

The atomic-write primitives in :mod:`repro.reliability.atomic` call
:func:`trip` at named *failpoints* — the instants where a real process can
die or a real filesystem can fail (mid-write, before a rename, between a
publish and its pointer swap). With no injector installed every failpoint
is a no-op; under :func:`inject` an armed :class:`FaultInjector` raises at
a chosen point, letting tests prove the crash-consistency invariant:

    after a failure at *any* point during a save, a subsequent load yields
    either the previous artifact or the new one, bit-identically — never a
    third state.

Two failure flavors:

* :class:`SimulatedCrash` — models ``kill -9``. With ``hard=True`` the
  atomic helpers also skip their ``finally`` cleanup (a dead process runs
  no cleanup), so stale temp entries are left behind exactly as a real
  crash leaves them.
* any ``OSError`` — models transient I/O failure (disk full, EIO); these
  are what :func:`repro.reliability.atomic.retry_io` retries.

:func:`record_failpoints` runs a callable under a pass-through injector and
returns every failpoint hit in order, so tests can enumerate the crash
surface of an operation instead of hard-coding point names.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SimulatedCrash",
    "FaultInjector",
    "inject",
    "trip",
    "active_injector",
    "hard_crash_active",
    "record_failpoints",
    "truncate_file",
    "flip_byte",
]


class SimulatedCrash(Exception):
    """Raised at an armed failpoint to simulate a process dying mid-operation."""


@dataclass
class _Arm:
    """One armed failure: fires when its countdown reaches zero."""

    countdown: int
    exc: BaseException | type[BaseException]

    def fire(self, name: str) -> None:
        exc = self.exc
        if isinstance(exc, type):
            exc = exc(f"injected failure at failpoint {name!r}")
        raise exc


@dataclass
class FaultInjector:
    """Deterministically fail at named failpoints (or at the N-th hit overall).

    Parameters
    ----------
    hard:
        Simulate a hard crash (``kill -9``): the atomic helpers skip their
        exception-path cleanup, leaving temp files behind exactly as a dead
        process would. Leave ``False`` to model an in-process exception,
        where ``finally`` blocks do run.
    """

    hard: bool = False
    #: Every failpoint hit, in order — also populated by a never-armed
    #: injector, which is how :func:`record_failpoints` enumerates a flow.
    hits: list[str] = field(default_factory=list)
    _by_name: dict[str, _Arm] = field(default_factory=dict)
    _by_index: dict[int, _Arm] = field(default_factory=dict)

    def arm(
        self,
        name: str,
        *,
        after: int = 0,
        exc: BaseException | type[BaseException] = SimulatedCrash,
    ) -> "FaultInjector":
        """Fail at the ``(after + 1)``-th hit of failpoint ``name``."""
        self._by_name[name] = _Arm(countdown=after, exc=exc)
        return self

    def arm_hit(
        self,
        index: int,
        *,
        exc: BaseException | type[BaseException] = SimulatedCrash,
    ) -> "FaultInjector":
        """Fail at the ``index``-th failpoint hit overall (0-based).

        This is the enumeration hook: pair it with the hit list returned by
        :func:`record_failpoints` to crash an operation at every one of its
        failpoints in turn.
        """
        self._by_index[int(index)] = _Arm(countdown=0, exc=exc)
        return self

    def trip(self, name: str) -> None:
        """Record a failpoint hit and raise if an armed failure matches it."""
        index = len(self.hits)
        self.hits.append(name)
        arm = self._by_index.get(index)
        if arm is not None:
            arm.fire(name)
        arm = self._by_name.get(name)
        if arm is not None:
            if arm.countdown == 0:
                del self._by_name[name]
                arm.fire(name)
            arm.countdown -= 1


_CURRENT: contextvars.ContextVar[FaultInjector | None] = contextvars.ContextVar(
    "repro_fault_injector", default=None
)


@contextlib.contextmanager
def inject(injector: FaultInjector):
    """Install ``injector`` as the active fault injector for the block."""
    token = _CURRENT.set(injector)
    try:
        yield injector
    finally:
        _CURRENT.reset(token)


def active_injector() -> FaultInjector | None:
    return _CURRENT.get()


def trip(name: str) -> None:
    """Hit a failpoint: no-op unless a :class:`FaultInjector` is installed."""
    injector = _CURRENT.get()
    if injector is not None:
        injector.trip(name)


def hard_crash_active() -> bool:
    """Whether cleanup paths should behave as if the process just died."""
    injector = _CURRENT.get()
    return injector is not None and injector.hard


def record_failpoints(fn) -> list[str]:
    """Run ``fn`` under a pass-through injector; return the failpoints it hit."""
    injector = FaultInjector()
    with inject(injector):
        fn()
    return list(injector.hits)


# -- on-disk corruption helpers (for load-path tests) ---------------------------


def truncate_file(path: str | Path, drop_bytes: int = 16) -> Path:
    """Drop the last ``drop_bytes`` bytes of a file (a partial write)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(0, len(data) - drop_bytes)])
    return path


def flip_byte(path: str | Path, offset: int = -1) -> Path:
    """XOR one byte of a file (silent media corruption)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path
