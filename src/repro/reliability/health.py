"""Graceful-degradation policies: pathological conditions become flags.

Production resolution runs hit conditions that are neither clean successes
nor crash-worthy failures — an empty candidate set, an all-NaN feature
column, a singular covariance block rescued by jitter, EM stopping on a
time budget. The policy here is *downgrade and record*: the engine produces
a defined output (empty result, imputed column, jittered factorization,
best-so-far parameters) and files a :class:`HealthFlag` describing what was
degraded, instead of raising or silently proceeding.

Recording is scoped: the engine calls :func:`record_condition` from deep
inside EM or linear algebra, and whichever :func:`health_scope` is active
(opened by ``ResolutionSession.match`` or ``IncrementalResolver.resolve``)
collects the flag. With no scope active, recording is a no-op — library
users who call ``ZeroER.fit`` directly pay nothing unless they opt in.

The collected :class:`HealthReport` rides on ``ERResult.health`` /
``ResolveResult.health`` and is embedded in run reports
(``ERResult.report()["health"]``) next to the spans and metrics.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field

__all__ = [
    "EMPTY_CANDIDATE_SET",
    "ALL_NAN_FEATURE_COLUMN",
    "SINGULAR_COVARIANCE_FALLBACK",
    "EM_NON_CONVERGENCE",
    "EM_TIME_BUDGET_EXHAUSTED",
    "EM_RESUMED_FROM_CHECKPOINT",
    "ARTIFACT_IO_RETRIED",
    "HealthFlag",
    "HealthReport",
    "health_scope",
    "active_health",
    "record_condition",
]

#: Blocking produced zero candidate pairs; the run returns an empty result.
EMPTY_CANDIDATE_SET = "empty_candidate_set"
#: A feature column was entirely NaN; it is imputed to a constant and
#: carries no signal.
ALL_NAN_FEATURE_COLUMN = "all_nan_feature_column"
#: A covariance block failed plain Cholesky and was factorized with
#: diagonal jitter (rank-deficient features).
SINGULAR_COVARIANCE_FALLBACK = "singular_covariance_fallback"
#: EM hit ``max_iter`` without likelihood convergence; the tail-averaged
#: posterior is returned (paper §6).
EM_NON_CONVERGENCE = "em_non_convergence"
#: EM stopped on its wall-clock budget; best-so-far parameters are
#: returned with ``converged=False``.
EM_TIME_BUDGET_EXHAUSTED = "em_time_budget_exhausted"
#: A fit continued from a checkpoint instead of starting at iteration 0.
EM_RESUMED_FROM_CHECKPOINT = "em_resumed_from_checkpoint"
#: A transient I/O failure during an artifact write succeeded on retry.
ARTIFACT_IO_RETRIED = "artifact_io_retried"

_SEVERITIES = ("info", "warning", "error")


@dataclass
class HealthFlag:
    """One recorded condition: what degraded, how bad, and the evidence."""

    condition: str
    severity: str
    message: str
    context: dict = field(default_factory=dict)
    #: How many times the condition was recorded in this scope.
    count: int = 1

    def to_dict(self) -> dict:
        return {
            "condition": self.condition,
            "severity": self.severity,
            "message": self.message,
            "context": dict(self.context),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthFlag":
        return cls(
            condition=data["condition"],
            severity=data.get("severity", "warning"),
            message=data.get("message", ""),
            context=dict(data.get("context", {})),
            count=int(data.get("count", 1)),
        )


class HealthReport:
    """The degradations one run accumulated, deduplicated by condition.

    Re-recording a condition bumps its flag's ``count`` (and upgrades the
    severity if the new occurrence is worse) instead of appending — a fit
    whose covariance needed jitter on 180 of 200 iterations yields one
    flag with ``count=180``, not 180 flags.
    """

    def __init__(self):
        self._flags: dict[str, HealthFlag] = {}

    def record(
        self,
        condition: str,
        message: str,
        *,
        severity: str = "warning",
        **context,
    ) -> HealthFlag:
        if severity not in _SEVERITIES:
            raise ValueError(f"severity must be one of {_SEVERITIES}, got {severity!r}")
        flag = self._flags.get(condition)
        if flag is None:
            flag = HealthFlag(condition, severity, message, dict(context))
            self._flags[condition] = flag
        else:
            flag.count += 1
            if _SEVERITIES.index(severity) > _SEVERITIES.index(flag.severity):
                flag.severity = severity
        return flag

    @property
    def flags(self) -> list[HealthFlag]:
        return list(self._flags.values())

    @property
    def conditions(self) -> set[str]:
        return set(self._flags)

    def has(self, condition: str) -> bool:
        return condition in self._flags

    def __getitem__(self, condition: str) -> HealthFlag:
        return self._flags[condition]

    def __len__(self) -> int:
        return len(self._flags)

    @property
    def ok(self) -> bool:
        """No error-severity flags (warnings and infos are degradations, not failures)."""
        return all(flag.severity != "error" for flag in self._flags.values())

    @property
    def degraded(self) -> bool:
        """Any warning- or error-severity flag."""
        return any(flag.severity != "info" for flag in self._flags.values())

    def merge(self, other: "HealthReport") -> "HealthReport":
        """Fold another report's flags into this one (counts accumulate)."""
        for flag in other.flags:
            mine = self._flags.get(flag.condition)
            if mine is None:
                self._flags[flag.condition] = HealthFlag(**flag.to_dict())
            else:
                mine.count += flag.count
                if _SEVERITIES.index(flag.severity) > _SEVERITIES.index(mine.severity):
                    mine.severity = flag.severity
        return self

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "degraded": self.degraded,
            "flags": [flag.to_dict() for flag in self._flags.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthReport":
        report = cls()
        for payload in data.get("flags", []):
            flag = HealthFlag.from_dict(payload)
            report._flags[flag.condition] = flag
        return report

    def summary(self) -> str:
        """One line for logs: ``healthy`` or the flagged conditions."""
        if not self._flags:
            return "healthy"
        parts = [
            f"{flag.condition}[{flag.severity}]x{flag.count}"
            for flag in self._flags.values()
        ]
        return "degraded: " + ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HealthReport({self.summary()})"


_ACTIVE: contextvars.ContextVar[HealthReport | None] = contextvars.ContextVar(
    "repro_health_report", default=None
)


@contextlib.contextmanager
def health_scope(report: HealthReport | None = None):
    """Collect :func:`record_condition` calls into one report for the block.

    Nested scopes layer: the innermost scope collects, and on exit its
    flags are folded into the enclosing scope so an outer caller still sees
    everything that degraded underneath it.
    """
    inner = report if report is not None else HealthReport()
    outer = _ACTIVE.get()
    token = _ACTIVE.set(inner)
    try:
        yield inner
    finally:
        _ACTIVE.reset(token)
        if outer is not None and inner is not outer:
            outer.merge(inner)


def active_health() -> HealthReport | None:
    return _ACTIVE.get()


def record_condition(condition: str, message: str, *, severity: str = "warning", **context):
    """Record into the active scope, if any (no-op otherwise)."""
    report = _ACTIVE.get()
    if report is not None:
        return report.record(condition, message, severity=severity, **context)
    return None
