"""Resumable training state: atomic, checksummed EM checkpoints.

A :class:`CheckpointStore` manages a directory of iteration-stamped
checkpoints (``ckpt-000040/`` → ``state.json`` + ``arrays.npz`` +
``checksums.json``), each published with the crash-safe directory writer —
so a checkpoint either exists completely or not at all. :meth:`latest`
walks backward through the stamps, quarantining any checkpoint that fails
its checksum manifest (a crash can only have damaged the newest one) and
returning the freshest valid state.

:class:`FitControls` is the knob bundle the trainers
(:meth:`repro.core.em.EMRunner.run`, :meth:`repro.core.linkage.ZeroERLinkage.fit`)
accept: where to checkpoint, how often, whether to resume, and a wall-clock
budget after which EM returns best-so-far parameters with
``converged=False`` instead of running on.
"""

from __future__ import annotations

import io
import json
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.reliability.atomic import (
    IntegrityError,
    atomic_directory,
    cleanup_stale_tmp,
    quarantine,
    remove_tree,
    staged_write_bytes,
    verify_checksum_manifest,
    write_checksum_manifest,
)

__all__ = ["CheckpointError", "CheckpointStore", "FitControls"]

_STATE = "state.json"
_ARRAYS = "arrays.npz"
_NAME_RE = re.compile(r"^ckpt-(\d{6,})$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, or does not match the resuming fit."""

    def __init__(self, message: str, *, path: Path | None = None):
        super().__init__(message)
        self.path = path


class CheckpointStore:
    """A directory of crash-safe training checkpoints.

    Parameters
    ----------
    root:
        Directory holding the checkpoints (created on first save).
    keep:
        How many most-recent checkpoints to retain; older ones are pruned
        after each successful save. At least 1.
    """

    def __init__(self, root: str | Path, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.keep = int(keep)

    # -- writing -----------------------------------------------------------------

    def save(self, meta: dict, arrays: dict[str, np.ndarray]) -> Path:
        """Atomically write one checkpoint; ``meta`` must carry ``iteration``.

        Re-saving an iteration replaces its checkpoint. After publishing,
        stale temp entries are swept and checkpoints beyond ``keep`` are
        pruned (both best-effort — pruning failures never fail the save).
        """
        iteration = int(meta["iteration"])
        self.root.mkdir(parents=True, exist_ok=True)
        cleanup_stale_tmp(self.root)
        final = self.root / f"ckpt-{iteration:06d}"
        if final.exists():
            remove_tree(final)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        with atomic_directory(final) as staging:
            staged_write_bytes(
                staging / _STATE,
                (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode("utf-8"),
            )
            staged_write_bytes(staging / _ARRAYS, buffer.getvalue())
            write_checksum_manifest(staging)
        self._prune()
        return final

    def _prune(self) -> None:
        for path in self.paths()[: -self.keep]:
            remove_tree(path)

    # -- reading -----------------------------------------------------------------

    def paths(self) -> list[Path]:
        """Checkpoint directories, oldest first."""
        if not self.root.is_dir():
            return []
        stamped = []
        for entry in self.root.iterdir():
            match = _NAME_RE.match(entry.name)
            if match and entry.is_dir():
                stamped.append((int(match.group(1)), entry))
        return [path for _, path in sorted(stamped)]

    def latest(self) -> tuple[dict, dict[str, np.ndarray]] | None:
        """The freshest valid ``(meta, arrays)``, or ``None`` if there is none.

        Checkpoints that fail validation (truncated by a crash, corrupted
        on disk) are quarantined to ``*.corrupt`` and the walk continues to
        the next-older one — an interrupted checkpoint write never blocks
        resumption from the previous good state.
        """
        for path in reversed(self.paths()):
            try:
                verify_checksum_manifest(path)
                meta = json.loads((path / _STATE).read_text(encoding="utf-8"))
                with np.load(path / _ARRAYS) as handle:
                    arrays = dict(handle)
                return meta, arrays
            except (IntegrityError, OSError, ValueError, KeyError) as exc:
                quarantined = quarantine(path)
                import warnings

                warnings.warn(
                    f"quarantined corrupt checkpoint {path.name} -> "
                    f"{quarantined.name}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return None

    def clear(self) -> None:
        """Remove every checkpoint (a completed fit consumes its trail)."""
        for path in self.paths():
            remove_tree(path)
        cleanup_stale_tmp(self.root)

    def __len__(self) -> int:
        return len(self.paths())


@dataclass
class FitControls:
    """Reliability knobs for a single EM fit.

    Parameters
    ----------
    checkpoint:
        Where to write (and resume from) training checkpoints; ``None``
        disables checkpointing.
    checkpoint_every:
        Save a checkpoint every N iterations (a budget stop always saves
        one regardless, so resumption never loses the stopping point).
    resume:
        Restore the latest valid checkpoint before iterating, if one
        exists and matches the fit's fingerprint.
    time_budget_s:
        Wall-clock budget for the iteration loop; when exceeded, EM stops
        after the current iteration and returns best-so-far parameters
        with ``converged=False`` and a health flag.
    """

    checkpoint: CheckpointStore | None = None
    checkpoint_every: int = 10
    resume: bool = False
    time_budget_s: float | None = None

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {self.checkpoint_every}")
        if self.time_budget_s is not None and self.time_budget_s < 0:
            raise ValueError(f"time_budget_s must be >= 0, got {self.time_budget_s}")
        if self.resume and self.checkpoint is None:
            raise ValueError("resume=True requires a checkpoint store")
