"""Command-line entity resolution: ``python -m repro``.

The subcommands cover the batch, incremental, serving, and declarative
workflows:

``run``
    The full unsupervised batch pipeline on CSV inputs, scored matches to a
    CSV — the zero-to-matches path for a user with two files and no labels::

        python -m repro run --left a.csv --right b.csv --block-on name -o matches.csv
        python -m repro run --left dirty.csv --block-on name -o duplicates.csv  # dedup
        python -m repro run --left a.csv --right b.csv --spec spec.json -o matches.csv

    For backward compatibility the subcommand may be omitted:
    ``python -m repro --left a.csv ...`` is equivalent to ``run``.

``fit``
    Batch-fit once and freeze the result into an artifact directory
    (model parameters, feature generator, entity store, index config, and
    the pipeline spec for provenance)::

        python -m repro fit --left base.csv --block-on name --artifacts art/

    Long fits can checkpoint EM state (``--checkpoint-every N``), run under
    a wall-clock budget (``--time-budget SECONDS``), and pick up where an
    interrupted run stopped (``--resume``)::

        python -m repro fit --left big.csv --block-on name --artifacts art/ \
            --checkpoint-every 5 --time-budget 300
        python -m repro fit --left big.csv --block-on name --artifacts art/ --resume

    Stores larger than RAM can be sharded at freeze time: ``--shards N``
    partitions the store and index across N hash shards with memory-mapped
    per-shard artifacts, ``--workers`` adds parallel featurization, and
    ``--load-budget-mb`` caps how much of the store a later ``resolve`` /
    ``serve`` keeps mapped at once (see ``docs/architecture.md``)::

        python -m repro fit --left big.csv --block-on name --artifacts art/ \
            --shards 8 --workers 4 --load-budget-mb 512

``resolve``
    Stream a batch of new records against saved artifacts — no re-fit, the
    store and artifacts are updated in place (``--workers`` overrides the
    frozen worker count; sharded artifacts print per-shard statistics)::

        python -m repro resolve --artifacts art/ --records new.csv -o assignments.csv

``serve``
    Long-running HTTP service over saved artifacts: resolve, lookup, and
    explain over the network with micro-batched request handling and
    zero-downtime hot reload (see ``docs/serving.md``)::

        python -m repro serve --artifacts art/ --port 8707

``spec``
    Scaffold declarative pipeline spec files for ``--spec``::

        python -m repro spec init --block-on name -o spec.json

``report``
    Print the run report embedded in an artifact directory (the telemetry
    of the run that produced it)::

        python -m repro report art/
        python -m repro report art/ -o report.json

``run`` and ``fit`` accept either ``--block-on`` (flag-built pipeline) or
``--spec spec.json`` (declarative pipeline); explicit flags like ``--kappa``
override the corresponding spec values. ``run``, ``fit``, and ``resolve``
accept ``--trace out.jsonl`` to stream tracing spans to a JSON-lines file,
and ``run`` accepts ``--report report.json`` to write the run report.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path

from repro.api import (
    BlockingSpec,
    ERPipeline,
    ModelSpec,
    OutputSpec,
    PipelineSpec,
    SpecError,
    load_spec,
)
from repro.blocking import BLOCKING_ENGINES, TokenOverlapBlocker, candidate_statistics
from repro.core.config import ZeroERConfig
from repro.data.io import read_csv
from repro.reliability import CheckpointError, CheckpointStore, FitControls

__all__ = ["main"]

_SUBCOMMANDS = ("run", "fit", "resolve", "serve", "spec", "report")


class _CliError(Exception):
    """Fatal CLI error: ``main`` prints it as ``error: ...`` and exits 2."""


def _fail(message) -> int:
    """The one CLI failure path: print ``error: ...`` to stderr, return 2.

    Every subcommand funnels fatal conditions through here (directly or by
    raising :class:`_CliError`), so failures are uniformly greppable and the
    exit status is always 2 — never a raw traceback.
    """
    print(f"error: {message}", file=sys.stderr)
    return 2


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="stream tracing spans to this JSON-lines file",
    )


@contextlib.contextmanager
def _maybe_trace(args):
    """Route spans to ``--trace PATH`` for the wrapped block, if requested."""
    from repro.obs import configure_telemetry

    trace_path = getattr(args, "trace", None)
    if not trace_path:
        yield
        return
    try:
        configure_telemetry("jsonl", path=trace_path)
    except OSError as exc:
        raise _CliError(f"cannot open trace file {trace_path}: {exc}") from exc
    try:
        yield
    finally:
        configure_telemetry(None)  # closes the jsonl file


def _add_fit_arguments(parser: argparse.ArgumentParser, *, with_output: bool) -> None:
    """Flags shared by the batch-fitting subcommands (``run`` and ``fit``)."""
    parser.add_argument("--left", required=True, help="left table CSV (must have an id column)")
    parser.add_argument("--right", help="right table CSV; omit for deduplication of --left")
    parser.add_argument("--id-column", default="id", help="id column name (default: id)")
    parser.add_argument(
        "--block-on",
        help="attribute for token-overlap blocking (or use --spec)",
    )
    parser.add_argument(
        "--spec",
        help="declarative pipeline spec JSON (see: python -m repro spec init)",
    )
    parser.add_argument(
        "--blocking-engine",
        choices=BLOCKING_ENGINES,
        default=None,
        help="token-overlap blocking engine (default: sparse, the columnar kernel)",
    )
    if with_output:
        parser.add_argument("-o", "--output", required=True, help="output CSV for scored matches")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="match threshold on γ (default: 0.5, or the spec's output threshold)",
    )
    parser.add_argument(
        "--kappa",
        type=float,
        default=None,
        help="regularization strength κ (default: 0.15, or the spec's value)",
    )
    parser.add_argument(
        "--no-transitivity", action="store_true", help="disable transitivity calibration"
    )
    _add_trace_argument(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unsupervised entity resolution (ZeroER, SIGMOD 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="batch pipeline: two CSVs in, scored matches out")
    _add_fit_arguments(run, with_output=True)
    run.add_argument(
        "--one-to-one",
        action="store_true",
        help="post-process into a one-to-one assignment (linkage mode only)",
    )
    run.add_argument(
        "--report",
        metavar="PATH",
        help="write the run report (telemetry JSON document) to this file",
    )
    run.set_defaults(func=_cmd_run)

    fit = sub.add_parser("fit", help="batch-fit once and save frozen artifacts")
    _add_fit_arguments(fit, with_output=False)
    fit.add_argument(
        "--artifacts", required=True, help="directory to write the frozen artifacts to"
    )
    fit.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint EM state every N iterations under <artifacts>/checkpoints/ "
        "(default: 0, disabled)",
    )
    fit.add_argument(
        "--resume",
        action="store_true",
        help="resume EM from the latest checkpoint under <artifacts>/checkpoints/",
    )
    fit.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for EM; on expiry the best-so-far parameters are "
        "kept (converged=False) and a checkpoint is written for --resume",
    )
    fit.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the entity store and token index across N hash shards "
        "with memory-mapped per-shard artifacts (default: 1, the classic "
        "in-memory engine; overrides the spec's shard section)",
    )
    fit.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="featurization worker processes per resolve batch "
        "(default: 1, in-process; overrides the spec's shard section)",
    )
    fit.add_argument(
        "--load-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="soft cap on concurrently mapped shard bases after a reload; "
        "least-recently-probed shards are evicted past it "
        "(default: unbounded; overrides the spec's shard section)",
    )
    fit.set_defaults(func=_cmd_fit)

    resolve = sub.add_parser(
        "resolve", help="resolve new records against saved artifacts (no re-fit)"
    )
    resolve.add_argument(
        "--artifacts", required=True, help="artifact directory written by fit"
    )
    resolve.add_argument(
        "--records", required=True, help="CSV of new records to resolve"
    )
    resolve.add_argument(
        "-o", "--output", help="optional CSV for record→entity assignments"
    )
    resolve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="featurization worker processes for this batch "
        "(default: the worker count frozen into the artifacts)",
    )
    _add_trace_argument(resolve)
    resolve.set_defaults(func=_cmd_resolve)

    serve = sub.add_parser(
        "serve", help="serve resolve/lookup/explain over HTTP from saved artifacts"
    )
    serve.add_argument(
        "--artifacts", required=True, help="artifact directory written by fit"
    )
    serve.add_argument(
        "--host",
        default=None,
        help="interface to bind (default: 127.0.0.1, or the artifact spec's value)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port; 0 binds an ephemeral port (default: 8707)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="records per micro-batch handed to the engine (default: 64)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=None,
        metavar="MS",
        help="how long the first queued request waits for co-batchable "
        "traffic (default: 10)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="admission bound on queued /resolve requests; beyond it the "
        "server sheds with 503 + Retry-After (default: 256)",
    )
    serve.add_argument(
        "--max-inflight-records",
        type=int,
        default=None,
        metavar="N",
        help="admission bound on records admitted but not yet answered "
        "(default: 8192)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request budget; requests still queued past it "
        "get 504; clients override via X-Request-Deadline-Ms "
        "(default: 0 = unbounded)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="S",
        help="seconds a graceful drain (SIGTERM or POST /admin/drain) may "
        "spend finishing in-flight work before forcing shutdown "
        "(default: 10)",
    )
    serve.add_argument(
        "--conn-rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help="per-connection /resolve rate limit in requests/second; "
        "exceeding it gets 429 (default: 0 = disabled)",
    )
    serve.set_defaults(func=_cmd_serve)

    report = sub.add_parser(
        "report", help="print the run report embedded in an artifact directory"
    )
    report.add_argument("artifacts", help="artifact directory written by fit/resolve")
    report.add_argument(
        "-o", "--output", help="write the report JSON here instead of stdout"
    )
    report.set_defaults(func=_cmd_report)

    spec = sub.add_parser("spec", help="scaffold declarative pipeline spec files")
    spec_sub = spec.add_subparsers(dest="spec_command", required=True)
    init = spec_sub.add_parser(
        "init", help="write a default PipelineSpec JSON (edit it, then pass via --spec)"
    )
    init.add_argument(
        "--block-on", required=True, help="attribute for token-overlap blocking"
    )
    init.add_argument(
        "-o", "--output", help="path to write the spec JSON (default: stdout)"
    )
    init.add_argument("--threshold", type=float, default=0.5, help="match threshold on γ")
    init.add_argument("--kappa", type=float, default=0.15, help="regularization strength κ")
    init.add_argument(
        "--no-transitivity", action="store_true", help="disable transitivity calibration"
    )
    init.add_argument(
        "--blocking-engine",
        choices=BLOCKING_ENGINES,
        default="sparse",
        help="token-overlap blocking engine (default: sparse)",
    )
    init.set_defaults(func=_cmd_spec_init)
    return parser


def _load_tables(args):
    try:
        left = read_csv(Path(args.left), id_attr=args.id_column)
        right = read_csv(Path(args.right), id_attr=args.id_column) if args.right else None
    except (OSError, ValueError) as exc:
        # unreadable file, malformed CSV, or a missing id column
        return None, None, _fail(exc)
    if args.block_on and args.block_on not in left.attributes:
        return (
            None,
            None,
            _fail(f"--block-on attribute {args.block_on!r} not in the left table"),
        )
    return left, right, 0


def _blocker_attributes(blocker) -> list:
    """Every attribute a blocker (or its union members) blocks on."""
    from repro.blocking import UnionBlocker

    if isinstance(blocker, UnionBlocker):
        return [a for member in blocker.blockers for a in _blocker_attributes(member)]
    attribute = getattr(blocker, "attribute", None)
    return [attribute] if attribute is not None else []


def _check_blocking_attributes(pipeline, left) -> int:
    """Spec-built blockers must reference real columns, like --block-on does."""
    missing = sorted(
        {a for a in _blocker_attributes(pipeline.blocker) if a not in left.attributes}
    )
    if missing:
        return _fail(f"spec blocking attribute(s) {missing} not in the left table")
    return 0


def _build_pipeline(args):
    """``(pipeline, threshold, one_to_one, exit_code)`` from flags + optional spec.

    With ``--spec`` the pipeline comes from the spec file and explicit flags
    (``--kappa``, ``--threshold``, ``--no-transitivity``,
    ``--blocking-engine``) override the corresponding spec values.
    """
    one_to_one = bool(getattr(args, "one_to_one", False))
    if args.spec:
        if args.block_on:
            return None, 0.0, False, _fail("pass either --spec or --block-on, not both")
        try:
            spec = load_spec(args.spec)
        except (SpecError, OSError) as exc:
            return None, 0.0, False, _fail(exc)
        config = spec.model.config
        if args.kappa is not None:
            config = config.replace(kappa=args.kappa)
        if args.no_transitivity:
            config = config.replace(transitivity=False)
        threshold = args.threshold if args.threshold is not None else spec.output.threshold
        one_to_one = one_to_one or spec.output.one_to_one
        try:
            pipeline = ERPipeline(
                blocker=spec.blocking.build(),
                config=config,
                co_candidate_cap=spec.model.co_candidate_cap,
                feature_engine=spec.features.engine,
                type_overrides=spec.features.build_overrides(),
                blocking_engine=args.blocking_engine,
                fit_controls=(
                    FitControls(time_budget_s=float(spec.model.time_budget_s))
                    if spec.model.time_budget_s is not None
                    else None
                ),
            )
        except ValueError as exc:
            return None, 0.0, False, _fail(exc)
        return pipeline, threshold, one_to_one, 0

    if not args.block_on:
        return None, 0.0, False, _fail("provide --block-on (or a --spec file)")
    config = ZeroERConfig(
        kappa=args.kappa if args.kappa is not None else 0.15,
        transitivity=not args.no_transitivity,
    )
    pipeline = ERPipeline(
        blocking_attribute=args.block_on,
        config=config,
        blocking_engine=(
            args.blocking_engine if args.blocking_engine is not None else "sparse"
        ),
    )
    threshold = args.threshold if args.threshold is not None else 0.5
    return pipeline, threshold, one_to_one, 0


def _blocking_report(pairs, left, right) -> str:
    """One-line candidate-set summary for the ``run`` report."""
    if right is not None:
        stats = candidate_statistics(pairs, None, len(left), len(right))
    else:
        total = len(left) * (len(left) - 1) // 2
        stats = candidate_statistics(pairs, None, len(left), len(left), total_pairs=total)
    return (
        f"blocking: {stats['n_candidates']} candidate pairs, "
        f"reduction ratio {stats['reduction_ratio']:.4f}"
    )


def _cmd_run(args) -> int:
    pipeline, threshold, one_to_one, code = _build_pipeline(args)
    if code:
        return code
    left, right, code = _load_tables(args)
    if code:
        return code
    if args.spec:
        code = _check_blocking_attributes(pipeline, left)
        if code:
            return code
    with _maybe_trace(args):
        result = pipeline.run(left, right)

    use_one_to_one = one_to_one and right is not None
    rows = result.to_frame(threshold=threshold, one_to_one=use_one_to_one)
    try:
        out_path = result.to_csv(Path(args.output), frame=rows)
    except OSError as exc:
        return _fail(f"cannot write {args.output}: {exc}")
    if args.report:
        try:
            Path(args.report).write_text(
                json.dumps(result.report(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            return _fail(f"cannot write {args.report}: {exc}")
        print(f"run report written to {args.report}")
    print(_blocking_report(result.pairs, left, right))
    print(
        f"{len(result.pairs)} candidate pairs scored, {len(rows)} matches written to {out_path}"
    )
    return 0


def _fit_controls(args):
    """``(controls, store, exit_code)`` from the fit reliability flags.

    Checkpoints live under ``<artifacts>/checkpoints/``; a non-zero
    ``--checkpoint-every``, ``--resume``, or ``--time-budget`` activates a
    :class:`~repro.reliability.FitControls`.
    """
    if args.checkpoint_every < 0:
        return None, None, _fail("--checkpoint-every must be >= 0")
    wants_store = args.resume or args.checkpoint_every > 0 or args.time_budget is not None
    if not wants_store:
        return None, None, 0
    store = CheckpointStore(Path(args.artifacts) / "checkpoints")
    try:
        controls = FitControls(
            checkpoint=store,
            checkpoint_every=args.checkpoint_every if args.checkpoint_every > 0 else 10,
            resume=args.resume,
            time_budget_s=args.time_budget,
        )
    except ValueError as exc:
        return None, None, _fail(exc)
    return controls, store, 0


def _shard_settings(args):
    """``(shards, workers, load_budget_mb, exit_code)`` from flags + spec.

    The spec's ``shard`` section (when present) provides the defaults;
    explicit ``--shards`` / ``--workers`` / ``--load-budget-mb`` flags
    override individual fields, with the same validation either way.
    """
    from repro.api import ShardSpec

    base = ShardSpec()
    if args.spec:
        try:
            spec_shard = load_spec(args.spec).shard
        except (SpecError, OSError):
            # _build_pipeline already reported this spec error
            spec_shard = None
        if spec_shard is not None:
            base = spec_shard
    overrides = {}
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.load_budget_mb is not None:
        overrides["load_budget_mb"] = args.load_budget_mb
    try:
        merged = base.replace(**overrides) if overrides else base
    except SpecError as exc:
        return 1, 1, None, _fail(exc)
    return merged.shards, merged.workers, merged.load_budget_mb, 0


def _cmd_fit(args) -> int:
    pipeline, threshold, _one_to_one, code = _build_pipeline(args)
    if code:
        return code
    shards, workers, load_budget_mb, code = _shard_settings(args)
    if code:
        return code
    controls, ckpt_store, code = _fit_controls(args)
    if code:
        return code
    if controls is not None:
        # flags win over any spec-provided time budget
        pipeline.fit_controls = controls
    left, right, code = _load_tables(args)
    if code:
        return code
    if args.spec:
        code = _check_blocking_attributes(pipeline, left)
        if code:
            return code
    if right is not None:
        # fail before the (expensive) fit: freeze() needs disjoint ids
        shared = set(left.ids()) & set(right.ids())
        if shared:
            return _fail(
                f"{len(shared)} record ids appear in both tables; "
                "fit needs disjoint ids (prefix each side, e.g. L0.../R0...)"
            )
    try:
        with _maybe_trace(args):
            result = pipeline.run(left, right)
    except CheckpointError as exc:
        return _fail(exc)
    try:
        resolver = pipeline.freeze(
            threshold=threshold,
            shards=shards,
            workers=workers,
            load_budget_mb=load_budget_mb,
        )
    except (ValueError, RuntimeError) as exc:
        # e.g. overlapping record ids across the two tables, or a blocking
        # recipe that produced no candidate pairs to fit on
        return _fail(exc)
    try:
        path = resolver.save(args.artifacts, report=result.report())
    except OSError as exc:
        return _fail(f"cannot write artifacts to {args.artifacts}: {exc}")
    history = getattr(getattr(pipeline, "model_", None), "history_", None)
    converged = bool(getattr(history, "converged", True))
    if ckpt_store is not None:
        if converged:
            # a finished fit invalidates its intermediate EM state
            ckpt_store.clear()
        else:
            print(
                f"fit interrupted before convergence; resume with: "
                f"python -m repro fit ... --artifacts {args.artifacts} --resume"
            )
    shard_note = f", {shards} shards" if shards > 1 else ""
    print(
        f"fitted on {len(resolver.store)} records "
        f"({resolver.store.n_entities} entities, "
        f"{len(pipeline.result_.pairs)} candidate pairs scored{shard_note}); "
        f"artifacts written to {path}"
    )
    return 0


def _shard_summary(stats: dict) -> str:
    """One-line shard/candidate statistics for the ``resolve`` report."""
    per_shard = stats.get("pairs_per_shard") or {}
    touched = stats.get("index_shards_touched") or []
    dist = ", ".join(f"s{shard}:{count}" for shard, count in sorted(per_shard.items()))
    line = (
        f"shards: {len(touched)}/{stats['n_shards']} probed, "
        f"workers: {stats['workers']}"
    )
    if dist:
        line += f"; candidate pairs per shard: {dist}"
    loader = stats.get("loader") or {}
    if loader.get("budget_bytes"):
        line += (
            f"; mapped {loader['loaded_shards']} shard(s), "
            f"{loader['loaded_bytes']} bytes "
            f"({loader['evictions']} evicted)"
        )
    return line


def _cmd_resolve(args) -> int:
    from repro.incremental import ArtifactError, IncrementalResolver

    try:
        resolver = IncrementalResolver.load(args.artifacts, workers=args.workers)
        records = read_csv(Path(args.records), id_attr=resolver.store.id_attr)
        with _maybe_trace(args):
            result = resolver.resolve(records)
    except (ArtifactError, OSError, ValueError) as exc:
        # e.g. missing/corrupt artifacts, unreadable CSV, a record id that
        # is already in the store (a batch streamed twice), or a --workers
        # value out of range
        return _fail(exc)

    # Write the assignments before persisting the store: if the output path
    # is bad, the on-disk artifacts are untouched and the batch is retryable.
    if args.output:
        try:
            result.to_csv(Path(args.output))
        except OSError as exc:
            return _fail(f"cannot write {args.output}: {exc}")
    # persist the updated store in place, with this batch's telemetry
    try:
        resolver.save(args.artifacts, report=result.report())
    except OSError as exc:
        return _fail(f"cannot write artifacts to {args.artifacts}: {exc}")
    print(
        f"{len(result.record_ids)} records resolved against {len(result.pairs)} "
        f"candidate pairs, {len(result.matches)} matches; "
        f"store now holds {len(resolver.store)} records in "
        f"{resolver.store.n_entities} entities"
    )
    if result.shard_stats:
        print(_shard_summary(result.shard_stats))
    resolver.close()
    return 0


def _cmd_serve(args) -> int:
    from repro.incremental import ArtifactError
    from repro.serve import run_serve

    if args.port is not None and not 0 <= args.port <= 65535:
        return _fail(f"--port must be in [0, 65535], got {args.port}")
    if args.max_batch is not None and args.max_batch < 1:
        return _fail(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_wait_ms is not None and args.max_wait_ms < 0:
        return _fail(f"--max-wait-ms must be >= 0, got {args.max_wait_ms}")
    if args.max_queue is not None and args.max_queue < 1:
        return _fail(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.max_inflight_records is not None and args.max_inflight_records < 1:
        return _fail(
            f"--max-inflight-records must be >= 1, got {args.max_inflight_records}"
        )
    if args.deadline_ms is not None and args.deadline_ms < 0:
        return _fail(f"--deadline-ms must be >= 0, got {args.deadline_ms}")
    if args.drain_timeout is not None and args.drain_timeout < 0:
        return _fail(f"--drain-timeout must be >= 0, got {args.drain_timeout}")
    if args.conn_rate_limit is not None and args.conn_rate_limit < 0:
        return _fail(f"--conn-rate-limit must be >= 0, got {args.conn_rate_limit}")
    try:
        return run_serve(
            args.artifacts,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            max_inflight_records=args.max_inflight_records,
            default_deadline_ms=args.deadline_ms,
            drain_timeout_s=args.drain_timeout,
            conn_rate_limit=args.conn_rate_limit,
        )
    except (ArtifactError, OSError) as exc:
        # missing/corrupt artifacts, or the port is taken
        return _fail(exc)


def _cmd_report(args) -> int:
    from repro.incremental.artifacts import ArtifactError, artifact_dir
    from repro.obs import ReportError, validate_report

    try:
        manifest_path = artifact_dir(Path(args.artifacts)) / "manifest.json"
    except ArtifactError as exc:
        return _fail(exc)
    if not manifest_path.is_file():
        return _fail(
            f"{args.artifacts} is not an artifact directory (no manifest.json)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return _fail(f"cannot read {manifest_path}: {exc}")
    report = manifest.get("run_report")
    if report is None:
        return _fail(
            f"{args.artifacts} carries no run report "
            "(written by fit/resolve builds that embed telemetry)"
        )
    try:
        validate_report(report)
    except ReportError as exc:
        return _fail(f"embedded run report is invalid: {exc}")
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        try:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        except OSError as exc:
            return _fail(f"cannot write {args.output}: {exc}")
        print(f"run report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_spec_init(args) -> int:
    try:
        blocker = TokenOverlapBlocker(
            args.block_on, min_overlap=1, top_k=60, engine=args.blocking_engine
        )
        spec = PipelineSpec(
            blocking=BlockingSpec.from_blocker(blocker),
            model=ModelSpec(
                config=ZeroERConfig(
                    kappa=args.kappa, transitivity=not args.no_transitivity
                )
            ),
            output=OutputSpec(threshold=args.threshold),
        )
    except (SpecError, ValueError) as exc:
        return _fail(exc)
    if args.output:
        try:
            path = spec.save(args.output)
        except OSError as exc:
            return _fail(f"cannot write {args.output}: {exc}")
        print(f"spec written to {path}")
    else:
        print(spec.to_json())
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: the original flat interface had no subcommand,
    # so an invocation starting with a flag is routed to ``run``.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except _CliError as exc:
        return _fail(exc)
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. ``repro report ... | head``).
        # Redirect stdout at the fd level so interpreter shutdown does not
        # trip over the dead pipe, then exit quietly like other Unix tools.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
