"""Command-line entity resolution: ``python -m repro``.

Three subcommands cover the batch and incremental workflows:

``run``
    The full unsupervised batch pipeline on CSV inputs, scored matches to a
    CSV — the zero-to-matches path for a user with two files and no labels::

        python -m repro run --left a.csv --right b.csv --block-on name -o matches.csv
        python -m repro run --left dirty.csv --block-on name -o duplicates.csv  # dedup

    For backward compatibility the subcommand may be omitted:
    ``python -m repro --left a.csv ...`` is equivalent to ``run``.

``fit``
    Batch-fit once and freeze the result into an artifact directory
    (model parameters, feature generator, entity store, index config)::

        python -m repro fit --left base.csv --block-on name --artifacts art/

``resolve``
    Stream a batch of new records against saved artifacts — no re-fit, the
    store and artifacts are updated in place::

        python -m repro resolve --artifacts art/ --records new.csv -o assignments.csv
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.blocking import BLOCKING_ENGINES, candidate_statistics
from repro.core.config import ZeroERConfig
from repro.data.io import read_csv
from repro.eval.matching import greedy_one_to_one, score_threshold_matches
from repro.pipeline import ERPipeline

__all__ = ["main"]

_SUBCOMMANDS = ("run", "fit", "resolve")


def _add_fit_arguments(parser: argparse.ArgumentParser, *, with_output: bool) -> None:
    """Flags shared by the batch-fitting subcommands (``run`` and ``fit``)."""
    parser.add_argument("--left", required=True, help="left table CSV (must have an id column)")
    parser.add_argument("--right", help="right table CSV; omit for deduplication of --left")
    parser.add_argument("--id-column", default="id", help="id column name (default: id)")
    parser.add_argument(
        "--block-on", required=True, help="attribute for token-overlap blocking"
    )
    parser.add_argument(
        "--blocking-engine",
        choices=BLOCKING_ENGINES,
        default="sparse",
        help="token-overlap blocking engine (default: sparse, the columnar kernel)",
    )
    if with_output:
        parser.add_argument("-o", "--output", required=True, help="output CSV for scored matches")
    parser.add_argument("--threshold", type=float, default=0.5, help="match threshold on γ")
    parser.add_argument("--kappa", type=float, default=0.15, help="regularization strength κ")
    parser.add_argument(
        "--no-transitivity", action="store_true", help="disable transitivity calibration"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unsupervised entity resolution (ZeroER, SIGMOD 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="batch pipeline: two CSVs in, scored matches out")
    _add_fit_arguments(run, with_output=True)
    run.add_argument(
        "--one-to-one",
        action="store_true",
        help="post-process into a one-to-one assignment (linkage mode only)",
    )
    run.set_defaults(func=_cmd_run)

    fit = sub.add_parser("fit", help="batch-fit once and save frozen artifacts")
    _add_fit_arguments(fit, with_output=False)
    fit.add_argument(
        "--artifacts", required=True, help="directory to write the frozen artifacts to"
    )
    fit.set_defaults(func=_cmd_fit)

    resolve = sub.add_parser(
        "resolve", help="resolve new records against saved artifacts (no re-fit)"
    )
    resolve.add_argument(
        "--artifacts", required=True, help="artifact directory written by fit"
    )
    resolve.add_argument(
        "--records", required=True, help="CSV of new records to resolve"
    )
    resolve.add_argument(
        "-o", "--output", help="optional CSV for record→entity assignments"
    )
    resolve.set_defaults(func=_cmd_resolve)
    return parser


def _load_tables(args):
    left = read_csv(Path(args.left), id_attr=args.id_column)
    right = read_csv(Path(args.right), id_attr=args.id_column) if args.right else None
    if args.block_on not in left.attributes:
        print(
            f"error: --block-on attribute {args.block_on!r} not in the left table",
            file=sys.stderr,
        )
        return None, None, 2
    return left, right, 0


def _fit_pipeline(args, left, right) -> ERPipeline:
    config = ZeroERConfig(kappa=args.kappa, transitivity=not args.no_transitivity)
    pipeline = ERPipeline(
        blocking_attribute=args.block_on,
        config=config,
        blocking_engine=args.blocking_engine,
    )
    pipeline.run(left, right)
    return pipeline


def _blocking_report(pairs, left, right) -> str:
    """One-line candidate-set summary for the ``run`` report."""
    if right is not None:
        stats = candidate_statistics(pairs, None, len(left), len(right))
    else:
        total = len(left) * (len(left) - 1) // 2
        stats = candidate_statistics(pairs, None, len(left), len(left), total_pairs=total)
    return (
        f"blocking: {stats['n_candidates']} candidate pairs, "
        f"reduction ratio {stats['reduction_ratio']:.4f}"
    )


def _cmd_run(args) -> int:
    left, right, code = _load_tables(args)
    if code:
        return code
    pipeline = _fit_pipeline(args, left, right)
    result = pipeline.result_

    score_of = {tuple(p): float(s) for p, s in zip(result.pairs, result.scores)}
    if args.one_to_one and right is not None:
        matches = greedy_one_to_one(result.pairs, result.scores, args.threshold)
    else:
        matches = score_threshold_matches(result.pairs, result.scores, args.threshold)
    rows = [(a, b, score_of[(a, b)]) for a, b in matches]

    out_path = Path(args.output)
    with out_path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left_id", "right_id", "score"])
        for a, b, score in rows:
            writer.writerow([a, b, f"{score:.6f}"])
    print(_blocking_report(result.pairs, left, right))
    print(
        f"{len(result.pairs)} candidate pairs scored, {len(rows)} matches written to {out_path}"
    )
    return 0


def _cmd_fit(args) -> int:
    left, right, code = _load_tables(args)
    if code:
        return code
    if right is not None:
        # fail before the (expensive) fit: freeze() needs disjoint ids
        shared = set(left.ids()) & set(right.ids())
        if shared:
            print(
                f"error: {len(shared)} record ids appear in both tables; "
                "fit needs disjoint ids (prefix each side, e.g. L0.../R0...)",
                file=sys.stderr,
            )
            return 2
    pipeline = _fit_pipeline(args, left, right)
    try:
        resolver = pipeline.freeze(threshold=args.threshold)
    except (ValueError, RuntimeError) as exc:
        # e.g. overlapping record ids across the two tables, or a blocking
        # recipe that produced no candidate pairs to fit on
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = resolver.save(args.artifacts)
    print(
        f"fitted on {len(resolver.store)} records "
        f"({resolver.store.n_entities} entities, "
        f"{len(pipeline.result_.pairs)} candidate pairs scored); "
        f"artifacts written to {path}"
    )
    return 0


def _cmd_resolve(args) -> int:
    from repro.incremental import ArtifactError, IncrementalResolver

    try:
        resolver = IncrementalResolver.load(args.artifacts)
        records = read_csv(Path(args.records), id_attr=resolver.store.id_attr)
        result = resolver.resolve(records)
    except (ArtifactError, OSError, ValueError) as exc:
        # e.g. missing/corrupt artifacts, unreadable CSV, or a record id
        # that is already in the store (a batch streamed twice)
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Write the assignments before persisting the store: if the output path
    # is bad, the on-disk artifacts are untouched and the batch is retryable.
    if args.output:
        out_path = Path(args.output)
        try:
            with out_path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(["record_id", "entity_id"])
                for rid in result.record_ids:
                    writer.writerow([rid, result.assignments[rid]])
        except OSError as exc:
            print(f"error: cannot write {out_path}: {exc}", file=sys.stderr)
            return 2
    resolver.save(args.artifacts)  # persist the updated store in place
    print(
        f"{len(result.record_ids)} records resolved against {len(result.pairs)} "
        f"candidate pairs, {len(result.matches)} matches; "
        f"store now holds {len(resolver.store)} records in "
        f"{resolver.store.n_entities} entities"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: the original flat interface had no subcommand,
    # so an invocation starting with a flag is routed to ``run``.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
