"""Command-line entity resolution: ``python -m repro``.

Runs the full unsupervised pipeline on CSV inputs and writes the scored
matches to a CSV — the zero-to-matches path for a user who has two files
and no labels:

    python -m repro --left a.csv --right b.csv --block-on name -o matches.csv
    python -m repro --left dirty.csv --block-on name -o duplicates.csv  # dedup

The output has columns ``left_id,right_id,score`` for every pair scored
above the threshold (default 0.5).
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.core.config import ZeroERConfig
from repro.data.io import read_csv
from repro.eval.matching import greedy_one_to_one, score_threshold_matches
from repro.pipeline import ERPipeline

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unsupervised entity resolution (ZeroER, SIGMOD 2020).",
    )
    parser.add_argument("--left", required=True, help="left table CSV (must have an id column)")
    parser.add_argument("--right", help="right table CSV; omit for deduplication of --left")
    parser.add_argument("--id-column", default="id", help="id column name (default: id)")
    parser.add_argument(
        "--block-on", required=True, help="attribute for token-overlap blocking"
    )
    parser.add_argument("-o", "--output", required=True, help="output CSV for scored matches")
    parser.add_argument("--threshold", type=float, default=0.5, help="match threshold on γ")
    parser.add_argument("--kappa", type=float, default=0.15, help="regularization strength κ")
    parser.add_argument(
        "--no-transitivity", action="store_true", help="disable transitivity calibration"
    )
    parser.add_argument(
        "--one-to-one",
        action="store_true",
        help="post-process into a one-to-one assignment (linkage mode only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    left = read_csv(Path(args.left), id_attr=args.id_column)
    right = read_csv(Path(args.right), id_attr=args.id_column) if args.right else None
    if args.block_on not in left.attributes:
        print(f"error: --block-on attribute {args.block_on!r} not in the left table", file=sys.stderr)
        return 2

    config = ZeroERConfig(kappa=args.kappa, transitivity=not args.no_transitivity)
    pipeline = ERPipeline(blocking_attribute=args.block_on, config=config)
    result = pipeline.run(left, right)

    if args.one_to_one and right is not None:
        matches = greedy_one_to_one(result.pairs, result.scores, args.threshold)
        score_of = {tuple(p): float(s) for p, s in zip(result.pairs, result.scores)}
        rows = [(a, b, score_of[(a, b)]) for a, b in matches]
    else:
        matches = score_threshold_matches(result.pairs, result.scores, args.threshold)
        score_of = {tuple(p): float(s) for p, s in zip(result.pairs, result.scores)}
        rows = [(a, b, score_of[(a, b)]) for a, b in matches]

    out_path = Path(args.output)
    with out_path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left_id", "right_id", "score"])
        for a, b, score in rows:
            writer.writerow([a, b, f"{score:.6f}"])
    print(
        f"{len(result.pairs)} candidate pairs scored, {len(rows)} matches written to {out_path}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
