"""repro — a full reproduction of *ZeroER: Entity Resolution using Zero
Labeled Examples* (SIGMOD 2020).

The curated top-level facade covers the common workflows::

    import repro

    # one call: tables in, scored matches out
    result = repro.resolve(left, right, blocking_attribute="name")

    # staged: inspect and re-run individual stages
    session = repro.ERPipeline(blocking_attribute="name").session(left, right)
    matches = session.block().featurize().match()
    matches = session.match(kappa=0.4)          # re-match only, cached features

    # declarative: a serializable spec drives the same pipeline
    result = repro.resolve(left, right, spec="spec.json")

Lower-level pieces remain importable from their subpackages:
:mod:`repro.core` (the generative model), :mod:`repro.text` (similarity
functions), :mod:`repro.features` (Magellan-style feature generation),
:mod:`repro.blocking`, :mod:`repro.data` (tables + benchmark generators),
:mod:`repro.baselines`, :mod:`repro.eval` (metrics + experiment harness),
:mod:`repro.incremental` (frozen-model artifacts + streaming resolution),
:mod:`repro.serve` (the async HTTP serving layer over frozen artifacts),
and :mod:`repro.api` (the pipeline/session/spec layer re-exported here).
"""

from repro.api import (
    SPEC_VERSION,
    BlockingSpec,
    CandidateSet,
    ERPipeline,
    ERResult,
    FeatureMatrix,
    FeatureSpec,
    MatchSet,
    ModelSpec,
    OutputSpec,
    PipelineSpec,
    ResolutionSession,
    ServeSpec,
    ShardSpec,
    SpecError,
    TelemetrySpec,
    configure_telemetry,
    load_spec,
    resolve,
    telemetry_active,
)
from repro.core import (
    EMFailureError,
    InitializationError,
    ZeroER,
    ZeroERConfig,
    ZeroERError,
    ZeroERLinkage,
    ablation_variants,
)
from repro.data import ERDataset, Table, load_benchmark
from repro.features import FeatureGenerator
from repro.incremental import (
    EntityStore,
    IncrementalResolver,
    IncrementalTokenIndex,
    load_artifacts,
    save_artifacts,
)

__version__ = "1.1.0"

__all__ = [
    # the model family
    "ZeroER",
    "ZeroERLinkage",
    "ZeroERConfig",
    "ablation_variants",
    "ZeroERError",
    "InitializationError",
    "EMFailureError",
    # data + features
    "FeatureGenerator",
    "Table",
    "ERDataset",
    "load_benchmark",
    # the resolution API
    "resolve",
    "load_spec",
    "ERPipeline",
    "ERResult",
    "ResolutionSession",
    "CandidateSet",
    "FeatureMatrix",
    "MatchSet",
    "PipelineSpec",
    "BlockingSpec",
    "FeatureSpec",
    "ModelSpec",
    "OutputSpec",
    "TelemetrySpec",
    "ServeSpec",
    "ShardSpec",
    "SpecError",
    "SPEC_VERSION",
    # observability
    "configure_telemetry",
    "telemetry_active",
    # incremental resolution
    "EntityStore",
    "IncrementalResolver",
    "IncrementalTokenIndex",
    "save_artifacts",
    "load_artifacts",
    "__version__",
]

#: Deprecated aliases served via module ``__getattr__`` (warn, don't break).
_DEPRECATED_ALIASES = {
    # the paper's arXiv preprint used the name AutoER; same model
    "AutoER": ("ZeroER", lambda: ZeroER),
}


def __getattr__(name: str):
    if name in _DEPRECATED_ALIASES:
        replacement, resolve_alias = _DEPRECATED_ALIASES[name]
        import warnings

        warnings.warn(
            f"repro.{name} is deprecated; use repro.{replacement} — "
            "this alias will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        return resolve_alias()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DEPRECATED_ALIASES))
