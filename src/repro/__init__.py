"""repro — a full reproduction of *ZeroER: Entity Resolution using Zero
Labeled Examples* (SIGMOD 2020).

Top-level convenience exports cover the common workflow::

    from repro import ZeroER, ZeroERConfig, FeatureGenerator, load_benchmark
    from repro.blocking import TokenOverlapBlocker

    ds = load_benchmark("rest_fz")
    pairs = TokenOverlapBlocker("name").block(ds.left, ds.right)
    gen = FeatureGenerator().fit(ds.left, ds.right, ds.attributes)
    X = gen.transform(ds.left, ds.right, pairs)
    labels = ZeroER().fit_predict(X, gen.feature_groups_, pairs)

Subpackages: :mod:`repro.core` (the generative model), :mod:`repro.text`
(similarity functions), :mod:`repro.features` (Magellan-style feature
generation), :mod:`repro.blocking`, :mod:`repro.data` (tables + benchmark
generators), :mod:`repro.baselines` (from-scratch supervised/unsupervised
baselines), :mod:`repro.eval` (metrics + experiment harness),
:mod:`repro.incremental` (frozen-model artifacts + streaming resolution).
"""

from repro.core import (
    EMFailureError,
    InitializationError,
    ZeroER,
    ZeroERConfig,
    ZeroERError,
    ZeroERLinkage,
    ablation_variants,
)
from repro.data import ERDataset, Table, load_benchmark
from repro.features import FeatureGenerator
from repro.incremental import (
    EntityStore,
    IncrementalResolver,
    IncrementalTokenIndex,
    load_artifacts,
    save_artifacts,
)
from repro.pipeline import ERPipeline, ERResult

#: The paper's arXiv preprint used the name AutoER; same model.
AutoER = ZeroER

__version__ = "1.0.0"

__all__ = [
    "ZeroER",
    "AutoER",
    "ZeroERLinkage",
    "ZeroERConfig",
    "ablation_variants",
    "ZeroERError",
    "InitializationError",
    "EMFailureError",
    "FeatureGenerator",
    "Table",
    "ERDataset",
    "ERPipeline",
    "ERResult",
    "load_benchmark",
    "EntityStore",
    "IncrementalResolver",
    "IncrementalTokenIndex",
    "save_artifacts",
    "load_artifacts",
    "__version__",
]
