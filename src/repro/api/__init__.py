"""The public resolution API: pipeline, staged sessions, declarative specs.

Three complementary surfaces over the same engine:

* **one call** — :func:`repro.api.resolve` (also re-exported as
  ``repro.resolve``): tables in, :class:`ERResult` out;
* **staged sessions** — ``ERPipeline.session(left, right)`` yields typed,
  cached intermediate artifacts (:class:`CandidateSet` →
  :class:`FeatureMatrix` → :class:`MatchSet`), each inspectable and
  individually re-runnable with overrides;
* **declarative specs** — :class:`PipelineSpec`, a versioned,
  JSON-serializable description of a pipeline that builds it
  (``spec.build()``), travels with frozen incremental artifacts for
  provenance, and drives the CLI via ``--spec``.
"""

from repro.api.facade import load_spec, resolve
from repro.api.pipeline import ERPipeline, ERResult
from repro.api.session import CandidateSet, FeatureMatrix, MatchSet, ResolutionSession
from repro.api.spec import (
    SPEC_VERSION,
    BlockingSpec,
    FeatureSpec,
    ModelSpec,
    OutputSpec,
    PipelineSpec,
    ServeSpec,
    ShardSpec,
    SpecError,
    TelemetrySpec,
)
from repro.obs import configure_telemetry, telemetry_active

__all__ = [
    "ERPipeline",
    "ERResult",
    "ResolutionSession",
    "CandidateSet",
    "FeatureMatrix",
    "MatchSet",
    "PipelineSpec",
    "BlockingSpec",
    "FeatureSpec",
    "ModelSpec",
    "OutputSpec",
    "TelemetrySpec",
    "ServeSpec",
    "ShardSpec",
    "SpecError",
    "SPEC_VERSION",
    "resolve",
    "load_spec",
    "configure_telemetry",
    "telemetry_active",
]
