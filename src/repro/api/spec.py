"""Versioned, serializable pipeline specifications.

A :class:`PipelineSpec` is a declarative description of an
:class:`~repro.api.pipeline.ERPipeline`: a dataclass tree with one sub-spec
per concern (blocking / features / model / output) that round-trips through
plain dicts and JSON::

    spec = PipelineSpec(blocking=BlockingSpec("token_overlap",
                                              {"attribute": "name", "top_k": 60}))
    spec.save("spec.json")
    pipeline = PipelineSpec.load("spec.json").build()

Validation is eager and loud: unknown keys, unknown types, and out-of-range
values all raise :class:`SpecError` at parse time, not at run time. A spec
built from the same parameters as a code-built pipeline produces a pipeline
with identical behavior (same candidate pairs, same scores).

Specs are also the provenance format: :meth:`ERPipeline.freeze` embeds the
capturing spec into frozen incremental artifacts, and the CLI accepts
``--spec spec.json`` (see ``python -m repro spec init``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.pipeline import ERPipeline
from repro.blocking.base import Blocker, build_blocker
from repro.core.config import ZeroERConfig
from repro.features.generator import validate_feature_engine
from repro.features.types import AttributeType

__all__ = [
    "SPEC_VERSION",
    "SpecError",
    "BlockingSpec",
    "FeatureSpec",
    "ModelSpec",
    "OutputSpec",
    "TelemetrySpec",
    "ServeSpec",
    "ShardSpec",
    "PipelineSpec",
]

#: Bump when the spec schema changes incompatibly.
SPEC_VERSION = 1


class SpecError(ValueError):
    """Raised when a pipeline spec is malformed: unknown keys or types,
    out-of-range values, or a version this build cannot read."""


def _require_keys(data: dict, known: tuple, context: str) -> None:
    if not isinstance(data, dict):
        raise SpecError(f"{context} spec must be a dict, got {type(data).__name__}")
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise SpecError(f"unknown key(s) {unknown} in {context} spec")


@dataclass(frozen=True)
class BlockingSpec:
    """Declarative blocker: a registered ``type`` plus its constructor options.

    ``type`` is one of :func:`repro.blocking.blocker_types` (e.g.
    ``"token_overlap"``); ``options`` holds that blocker's parameters as a
    JSON-serializable dict. Validation builds the blocker once eagerly, so a
    bad option fails at construction time.
    """

    type: str
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        try:
            self.build()
        except SpecError:
            raise
        except (ValueError, TypeError, KeyError) as exc:
            raise SpecError(f"invalid blocking spec: {exc}") from exc

    def build(self) -> Blocker:
        """Construct the described blocker."""
        return build_blocker({"type": self.type, **self.options})

    def to_dict(self) -> dict:
        """The JSON-serializable form: ``type`` plus the flattened options."""
        return {"type": self.type, **self.options}

    @classmethod
    def from_dict(cls, data: dict) -> "BlockingSpec":
        """Validate a ``blocking`` payload into a :class:`BlockingSpec`."""
        if not isinstance(data, dict):
            raise SpecError(f"blocking spec must be a dict, got {type(data).__name__}")
        if "type" not in data:
            raise SpecError("blocking spec is missing the 'type' key")
        options = {key: value for key, value in data.items() if key != "type"}
        return cls(type=data["type"], options=options)

    @classmethod
    def from_blocker(cls, blocker: Blocker) -> "BlockingSpec":
        """Capture an existing blocker instance declaratively.

        Raises :class:`SpecError` for blockers that cannot be serialized
        (custom classes, callable-configured blockers, custom tokenizers).
        """
        try:
            return cls.from_dict(blocker.to_spec())
        except TypeError as exc:
            raise SpecError(str(exc)) from exc


@dataclass(frozen=True)
class FeatureSpec:
    """Declarative featurization: engine choice plus attribute-type pins."""

    #: ``"batch"`` (columnar kernels) or ``"per-pair"`` (reference loop).
    engine: str = "batch"
    #: ``{attribute: AttributeType value string}`` type-inference overrides.
    type_overrides: dict = field(default_factory=dict)

    def __post_init__(self):
        try:
            validate_feature_engine(self.engine)
        except ValueError as exc:
            raise SpecError(f"feature {exc}") from exc
        if not isinstance(self.type_overrides, dict):
            raise SpecError("type_overrides must be a dict of attribute -> type name")
        for attribute, type_name in self.type_overrides.items():
            try:
                AttributeType(type_name)
            except ValueError:
                valid = [t.value for t in AttributeType]
                raise SpecError(
                    f"unknown attribute type {type_name!r} for {attribute!r}; "
                    f"valid types: {valid}"
                ) from None

    def build_overrides(self) -> dict | None:
        """The overrides as ``{attribute: AttributeType}`` (``None`` if empty)."""
        if not self.type_overrides:
            return None
        return {a: AttributeType(v) for a, v in self.type_overrides.items()}

    def to_dict(self) -> dict:
        """The JSON-serializable form of this features section."""
        return {"engine": self.engine, "type_overrides": dict(self.type_overrides)}

    @classmethod
    def from_dict(cls, data: dict) -> "FeatureSpec":
        """Validate a ``features`` payload into a :class:`FeatureSpec`."""
        _require_keys(data, ("engine", "type_overrides"), "features")
        overrides = data.get("type_overrides") or {}
        if not isinstance(overrides, dict):
            raise SpecError(
                "type_overrides must be a dict of attribute -> type name, "
                f"got {type(overrides).__name__}"
            )
        return cls(
            engine=data.get("engine", "batch"),
            type_overrides=dict(overrides),
        )


@dataclass(frozen=True)
class ModelSpec:
    """Declarative matcher: the ZeroER config plus pipeline-level model knobs."""

    config: ZeroERConfig = field(default_factory=ZeroERConfig)
    #: Per-anchor cap for the linkage transitivity co-candidate sets.
    co_candidate_cap: int = 10
    #: Wall-clock budget (seconds) for the EM fit; ``None`` (default) means
    #: unbounded. On exhaustion EM returns best-so-far parameters with
    #: ``converged=False`` and an ``em_time_budget_exhausted`` health flag.
    time_budget_s: float | None = None

    def __post_init__(self):
        if not isinstance(self.config, ZeroERConfig):
            raise SpecError(
                f"config must be a ZeroERConfig, got {type(self.config).__name__}"
            )
        if not isinstance(self.co_candidate_cap, int) or self.co_candidate_cap < 1:
            raise SpecError(
                f"co_candidate_cap must be an int >= 1, got {self.co_candidate_cap!r}"
            )
        if self.time_budget_s is not None:
            if (
                not isinstance(self.time_budget_s, (int, float))
                or isinstance(self.time_budget_s, bool)
                or self.time_budget_s < 0
            ):
                raise SpecError(
                    f"time_budget_s must be a number >= 0 or null, got "
                    f"{self.time_budget_s!r}"
                )

    def to_dict(self) -> dict:
        """The JSON-serializable form of this model section."""
        return {
            "config": self.config.to_dict(),
            "co_candidate_cap": self.co_candidate_cap,
            "time_budget_s": self.time_budget_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelSpec":
        """Validate a ``model`` payload into a :class:`ModelSpec`."""
        _require_keys(data, ("config", "co_candidate_cap", "time_budget_s"), "model")
        try:
            config = ZeroERConfig.from_dict(data.get("config") or {})
        except (ValueError, TypeError) as exc:
            raise SpecError(f"invalid model config: {exc}") from exc
        return cls(
            config=config,
            co_candidate_cap=data.get("co_candidate_cap", 10),
            time_budget_s=data.get("time_budget_s"),
        )


@dataclass(frozen=True)
class OutputSpec:
    """Declarative output handling: match threshold and assignment shape."""

    #: Match-probability threshold (pairs strictly above it are matches).
    threshold: float = 0.5
    #: Post-process into a greedy one-to-one assignment (linkage mode).
    one_to_one: bool = False

    def __post_init__(self):
        if not isinstance(self.threshold, (int, float)) or isinstance(self.threshold, bool):
            raise SpecError(f"threshold must be a number, got {self.threshold!r}")
        if not 0.0 <= self.threshold <= 1.0:
            raise SpecError(f"threshold must be in [0, 1], got {self.threshold}")
        if not isinstance(self.one_to_one, bool):
            raise SpecError(f"one_to_one must be a bool, got {self.one_to_one!r}")

    def to_dict(self) -> dict:
        """The JSON-serializable form of this output section."""
        return {"threshold": self.threshold, "one_to_one": self.one_to_one}

    @classmethod
    def from_dict(cls, data: dict) -> "OutputSpec":
        """Validate an ``output`` payload into an :class:`OutputSpec`."""
        _require_keys(data, ("threshold", "one_to_one"), "output")
        return cls(
            threshold=data.get("threshold", 0.5),
            one_to_one=data.get("one_to_one", False),
        )


@dataclass(frozen=True)
class TelemetrySpec:
    """Declarative telemetry: which span sink (if any) a run should feed.

    ``sink`` is one of :data:`repro.obs.SINK_NAMES` (``"none"``, the
    default, keeps telemetry fully disabled — the no-op fast path).
    ``path`` is the output file for the ``"jsonl"`` sink and is invalid
    for any other sink.
    """

    sink: str = "none"
    path: str | None = None

    def __post_init__(self):
        from repro.obs import SINK_NAMES

        if self.sink not in SINK_NAMES:
            raise SpecError(
                f"telemetry sink must be one of {SINK_NAMES}, got {self.sink!r}"
            )
        if self.sink == "jsonl" and not self.path:
            raise SpecError("telemetry sink 'jsonl' needs a 'path'")
        if self.sink != "jsonl" and self.path is not None:
            raise SpecError(
                f"telemetry 'path' only applies to the 'jsonl' sink, not {self.sink!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this spec asks for any telemetry at all."""
        return self.sink != "none"

    def apply(self):
        """Configure the process-wide telemetry sink as described.

        Returns the configured sink (``None`` for ``"none"``), as
        :func:`repro.obs.configure_telemetry` does.
        """
        from repro.obs import configure_telemetry

        return configure_telemetry(self.sink, path=self.path)

    def to_dict(self) -> dict:
        """The JSON-serializable form of this telemetry section."""
        return {"sink": self.sink, "path": self.path}

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySpec":
        """Validate a ``telemetry`` payload into a :class:`TelemetrySpec`."""
        _require_keys(data, ("sink", "path"), "telemetry")
        return cls(sink=data.get("sink", "none"), path=data.get("path"))


@dataclass(frozen=True)
class ServeSpec:
    """Declarative serving configuration for ``python -m repro serve``.

    Embedded (optionally) as the ``serve`` section of a
    :class:`PipelineSpec`, so frozen artifacts can carry their preferred
    serving posture; CLI flags override any field at launch.
    """

    #: Interface to bind (loopback by default — put a proxy in front for
    #: anything external).
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (tests and benchmarks).
    port: int = 8707
    #: Record budget per micro-batch handed to the columnar engine.
    max_batch: int = 64
    #: Milliseconds the first queued request waits for co-batchable
    #: traffic; ``0`` coalesces only already-queued requests.
    max_wait_ms: float = 10.0
    #: Admission bound on ``/resolve`` requests waiting to be batched;
    #: submissions beyond it are shed with 503 + ``Retry-After``.
    max_queue: int = 256
    #: Admission bound on total records admitted but not yet answered.
    max_inflight_records: int = 8192
    #: Default per-request budget in milliseconds (``0`` disables);
    #: clients override per request via ``X-Request-Deadline-Ms``.
    default_deadline_ms: float = 0.0
    #: Seconds a graceful drain (SIGTERM / ``POST /admin/drain``) may
    #: spend finishing in-flight work before forcing shutdown.
    drain_timeout_s: float = 10.0
    #: Per-connection ``/resolve`` rate limit in requests/second
    #: (token bucket, 429 when exceeded; ``0`` disables).
    conn_rate_limit: float = 0.0

    def __post_init__(self):
        if not isinstance(self.host, str) or not self.host:
            raise SpecError(f"host must be a non-empty string, got {self.host!r}")
        if not isinstance(self.port, int) or isinstance(self.port, bool):
            raise SpecError(f"port must be an int, got {self.port!r}")
        if not 0 <= self.port <= 65535:
            raise SpecError(f"port must be in [0, 65535], got {self.port}")
        for name in ("max_batch", "max_queue", "max_inflight_records"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(f"{name} must be an int, got {value!r}")
            if value < 1:
                raise SpecError(f"{name} must be >= 1, got {value}")
        for name in (
            "max_wait_ms",
            "default_deadline_ms",
            "drain_timeout_s",
            "conn_rate_limit",
        ):
            value = getattr(self, name)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0
            ):
                raise SpecError(f"{name} must be a number >= 0, got {value!r}")

    def replace(self, **changes) -> "ServeSpec":
        """A copy with the given fields replaced (CLI-flag overrides)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """The JSON-serializable form of this serve section."""
        return {
            "host": self.host,
            "port": self.port,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_queue": self.max_queue,
            "max_inflight_records": self.max_inflight_records,
            "default_deadline_ms": self.default_deadline_ms,
            "drain_timeout_s": self.drain_timeout_s,
            "conn_rate_limit": self.conn_rate_limit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServeSpec":
        """Validate a ``serve`` payload into a :class:`ServeSpec`."""
        _require_keys(
            data,
            (
                "host",
                "port",
                "max_batch",
                "max_wait_ms",
                "max_queue",
                "max_inflight_records",
                "default_deadline_ms",
                "drain_timeout_s",
                "conn_rate_limit",
            ),
            "serve",
        )
        return cls(
            host=data.get("host", "127.0.0.1"),
            port=data.get("port", 8707),
            max_batch=data.get("max_batch", 64),
            max_wait_ms=data.get("max_wait_ms", 10.0),
            max_queue=data.get("max_queue", 256),
            max_inflight_records=data.get("max_inflight_records", 8192),
            default_deadline_ms=data.get("default_deadline_ms", 0.0),
            drain_timeout_s=data.get("drain_timeout_s", 10.0),
            conn_rate_limit=data.get("conn_rate_limit", 0.0),
        )


@dataclass(frozen=True)
class ShardSpec:
    """Declarative sharding for ``python -m repro fit`` / ``freeze()``.

    Embedded (optionally) as the ``shard`` section of a
    :class:`PipelineSpec`. ``shards=1`` keeps the classic in-memory
    engine; ``shards >= 2`` partitions the entity store and token index
    across that many hash shards (see :mod:`repro.shard`) with
    ``workers`` featurization processes per resolve and an optional
    in-process ``load_budget_mb`` for memory-mapped shard bases.
    CLI flags override any field at fit time.
    """

    #: Number of hash shards for the store and index (1..64; 1 = classic).
    shards: int = 1
    #: Featurization worker processes per resolve batch (1 = in-process).
    workers: int = 1
    #: Soft cap in MiB on concurrently mapped shard bases after a reload;
    #: ``None`` disables eviction.
    load_budget_mb: float | None = None

    def __post_init__(self):
        from repro.shard import MAX_SHARDS
        from repro.shard.pool import MAX_WORKERS

        for name, value, cap in (
            ("shards", self.shards, MAX_SHARDS),
            ("workers", self.workers, MAX_WORKERS),
        ):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(f"{name} must be an int, got {value!r}")
            if not 1 <= value <= cap:
                raise SpecError(f"{name} must be in [1, {cap}], got {value}")
        if self.load_budget_mb is not None:
            if (
                not isinstance(self.load_budget_mb, (int, float))
                or isinstance(self.load_budget_mb, bool)
                or self.load_budget_mb <= 0
            ):
                raise SpecError(
                    f"load_budget_mb must be a number > 0 or null, "
                    f"got {self.load_budget_mb!r}"
                )

    def replace(self, **changes) -> "ShardSpec":
        """A copy with the given fields replaced (CLI-flag overrides)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """The JSON-serializable form of this shard section."""
        return {
            "shards": self.shards,
            "workers": self.workers,
            "load_budget_mb": self.load_budget_mb,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        """Validate a ``shard`` payload into a :class:`ShardSpec`."""
        _require_keys(data, ("shards", "workers", "load_budget_mb"), "shard")
        return cls(
            shards=data.get("shards", 1),
            workers=data.get("workers", 1),
            load_budget_mb=data.get("load_budget_mb"),
        )


@dataclass(frozen=True)
class PipelineSpec:
    """The full declarative pipeline: blocking + features + model + output."""

    blocking: BlockingSpec
    features: FeatureSpec = field(default_factory=FeatureSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    output: OutputSpec = field(default_factory=OutputSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    #: Optional serving posture (``None`` — the common case for specs that
    #: never get served — serializes as an absent ``serve`` section).
    serve: ServeSpec | None = None
    #: Optional sharding posture for freeze/fit (``None`` — classic
    #: unsharded engine — serializes as an absent ``shard`` section).
    shard: ShardSpec | None = None
    version: int = SPEC_VERSION

    def __post_init__(self):
        if self.version != SPEC_VERSION:
            raise SpecError(
                f"spec version {self.version!r} is not supported "
                f"(this build reads version {SPEC_VERSION})"
            )
        for name, expected in (
            ("blocking", BlockingSpec),
            ("features", FeatureSpec),
            ("model", ModelSpec),
            ("output", OutputSpec),
            ("telemetry", TelemetrySpec),
        ):
            value = getattr(self, name)
            if not isinstance(value, expected):
                raise SpecError(
                    f"{name} must be a {expected.__name__}, got {type(value).__name__}"
                )
        if self.serve is not None and not isinstance(self.serve, ServeSpec):
            raise SpecError(
                f"serve must be a ServeSpec or None, got {type(self.serve).__name__}"
            )
        if self.shard is not None and not isinstance(self.shard, ShardSpec):
            raise SpecError(
                f"shard must be a ShardSpec or None, got {type(self.shard).__name__}"
            )

    # -- construction ------------------------------------------------------------

    def build(self) -> ERPipeline:
        """Construct the described :class:`~repro.api.pipeline.ERPipeline`.

        When the spec carries an enabled telemetry sub-spec, the
        process-wide sink is configured here (``sink="none"``, the default,
        leaves any existing configuration untouched).
        """
        if self.telemetry.enabled:
            self.telemetry.apply()
        fit_controls = None
        if self.model.time_budget_s is not None:
            from repro.reliability.checkpoint import FitControls

            fit_controls = FitControls(time_budget_s=float(self.model.time_budget_s))
        return ERPipeline(
            blocker=self.blocking.build(),
            config=self.model.config,
            co_candidate_cap=self.model.co_candidate_cap,
            feature_engine=self.features.engine,
            type_overrides=self.features.build_overrides(),
            fit_controls=fit_controls,
        )

    @classmethod
    def from_pipeline(
        cls,
        pipeline: ERPipeline,
        threshold: float | None = None,
        one_to_one: bool = False,
    ) -> "PipelineSpec":
        """Capture an existing pipeline declaratively (for provenance).

        Raises :class:`SpecError` when the pipeline cannot be described
        (custom blocker class, non-serializable tokenizer, ...). ``threshold``
        and ``one_to_one`` fill the output sub-spec, which the pipeline
        object itself does not carry.
        """
        overrides = pipeline.type_overrides or {}
        controls = getattr(pipeline, "fit_controls", None)
        return cls(
            blocking=BlockingSpec.from_blocker(pipeline.blocker),
            features=FeatureSpec(
                engine=pipeline.feature_engine,
                type_overrides={a: t.value for a, t in overrides.items()},
            ),
            model=ModelSpec(
                config=pipeline.config,
                co_candidate_cap=pipeline.co_candidate_cap,
                time_budget_s=controls.time_budget_s if controls is not None else None,
            ),
            output=OutputSpec(
                threshold=0.5 if threshold is None else threshold, one_to_one=one_to_one
            ),
        )

    def replace(self, **changes) -> "PipelineSpec":
        """A copy with the given sub-specs replaced."""
        return dataclasses.replace(self, **changes)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """The full JSON document (the ``serve`` key only when configured)."""
        out = {
            "version": self.version,
            "blocking": self.blocking.to_dict(),
            "features": self.features.to_dict(),
            "model": self.model.to_dict(),
            "output": self.output.to_dict(),
            "telemetry": self.telemetry.to_dict(),
        }
        if self.serve is not None:
            out["serve"] = self.serve.to_dict()
        if self.shard is not None:
            out["shard"] = self.shard.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineSpec":
        """Validate a full spec document; every section validates eagerly."""
        _require_keys(
            data,
            (
                "version",
                "blocking",
                "features",
                "model",
                "output",
                "telemetry",
                "serve",
                "shard",
            ),
            "pipeline",
        )
        if "blocking" not in data:
            raise SpecError("pipeline spec is missing the 'blocking' section")
        version = data.get("version", SPEC_VERSION)
        if not isinstance(version, int):
            raise SpecError(f"version must be an int, got {version!r}")
        serve_payload = data.get("serve")
        shard_payload = data.get("shard")
        return cls(
            blocking=BlockingSpec.from_dict(data["blocking"]),
            features=FeatureSpec.from_dict(data.get("features") or {}),
            model=ModelSpec.from_dict(data.get("model") or {}),
            output=OutputSpec.from_dict(data.get("output") or {}),
            telemetry=TelemetrySpec.from_dict(data.get("telemetry") or {}),
            serve=None if serve_payload is None else ServeSpec.from_dict(serve_payload),
            shard=None if shard_payload is None else ShardSpec.from_dict(shard_payload),
            version=version,
        )

    def to_json(self, indent: int | None = 2) -> str:
        """The spec as a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Parse and validate a JSON spec document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        """Write the spec as JSON to ``path``."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PipelineSpec":
        """Read a spec saved with :meth:`save` (or hand-written JSON)."""
        path = Path(path)
        if not path.is_file():
            raise SpecError(f"spec file not found: {path}")
        return cls.from_json(path.read_text(encoding="utf-8"))
