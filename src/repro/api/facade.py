"""One-call conveniences over the staged API.

:func:`resolve` is the zero-ceremony entry point — tables in, scored
matches out — accepting either explicit pipeline options or a declarative
spec. :func:`load_spec` normalizes every way a spec can arrive (path, dict,
:class:`~repro.api.spec.PipelineSpec`) into a validated ``PipelineSpec``.
"""

from __future__ import annotations

from pathlib import Path

from repro.api.pipeline import ERPipeline, ERResult
from repro.api.spec import PipelineSpec
from repro.core.config import ZeroERConfig
from repro.data.table import Table

__all__ = ["resolve", "load_spec"]


def load_spec(source) -> PipelineSpec:
    """Normalize ``source`` into a validated :class:`PipelineSpec`.

    Accepts a ``PipelineSpec`` (returned as-is), a plain dict (parsed via
    ``PipelineSpec.from_dict``), or a path to a JSON spec file. Malformed
    specs raise :class:`~repro.api.spec.SpecError`.
    """
    if isinstance(source, PipelineSpec):
        return source
    if isinstance(source, dict):
        return PipelineSpec.from_dict(source)
    if isinstance(source, (str, Path)):
        return PipelineSpec.load(source)
    raise TypeError(
        f"cannot load a spec from {type(source).__name__}; "
        "pass a PipelineSpec, a dict, or a path to a JSON file"
    )


def resolve(
    left: Table,
    right: Table | None = None,
    *,
    spec=None,
    blocking_attribute: str | None = None,
    config: ZeroERConfig | None = None,
    **pipeline_options,
) -> ERResult:
    """Resolve entities between two tables (or within one) in a single call.

    Either pass ``spec`` (a :class:`PipelineSpec`, dict, or JSON file path)
    or explicit pipeline options (``blocking_attribute``, ``config``, and
    any other :class:`~repro.api.pipeline.ERPipeline` keyword) — not both.

    >>> result = repro.resolve(left, right, blocking_attribute="name")
    >>> result = repro.resolve(left, right, spec="spec.json")
    """
    if spec is not None:
        if blocking_attribute is not None or config is not None or pipeline_options:
            raise ValueError(
                "pass either a spec or explicit pipeline options, not both"
            )
        pipeline = load_spec(spec).build()
    else:
        pipeline = ERPipeline(
            blocking_attribute=blocking_attribute, config=config, **pipeline_options
        )
    return pipeline.run(left, right)
