"""Staged resolution sessions: typed, cached, individually re-runnable stages.

A :class:`ResolutionSession` (opened with ``pipeline.session(left, right)``)
decomposes :meth:`~repro.api.pipeline.ERPipeline.run` into its three stages
and hands back a typed artifact per stage::

    session = pipeline.session(left, right)
    candidates = session.block()        # CandidateSet
    features = candidates.featurize()   # FeatureMatrix
    matches = features.match()          # MatchSet
    result = matches.to_result()        # == pipeline.run(left, right)

Every artifact is cached on the session: calling a stage again without
overrides returns the cached object, calling it with overrides (or
``force=True``) recomputes that stage and invalidates everything downstream.
The payoff is cheap what-if iteration — ``session.match(kappa=0.4)``
re-runs EM only, reusing the cached candidate set and feature matrix.

The full chain reproduces ``ERPipeline.run()`` exactly: same pairs, same
scores, same timing keys.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.api.pipeline import ERPipeline, ERResult
from repro.blocking.base import Blocker, candidate_statistics
from repro.blocking.overlap import TokenOverlapBlocker, validate_blocking_engine
from repro.core.config import ZeroERConfig
from repro.core.model import ZeroER
from repro.data.table import Table
from repro.features.generator import FeatureGenerator, validate_feature_engine
from repro.obs import (
    RunCollector,
    RunTelemetry,
    add_counter,
    collector_scope,
    em_history_summary,
    span,
    telemetry_active,
)
from repro.reliability.health import (
    EMPTY_CANDIDATE_SET,
    HealthReport,
    health_scope,
    record_condition,
)

__all__ = ["ResolutionSession", "CandidateSet", "FeatureMatrix", "MatchSet"]


@dataclass
class CandidateSet:
    """Blocking output: the candidate pairs, plus the blocker that made them."""

    #: Candidate pairs in the blocker's deterministic order.
    pairs: list[tuple]
    #: The blocker instance actually used (after any engine override).
    blocker: Blocker
    #: Wall-clock seconds spent blocking.
    seconds: float
    session: "ResolutionSession" = field(repr=False)

    def __len__(self) -> int:
        return len(self.pairs)

    def statistics(self, gold_matches=None) -> dict:
        """Candidate-set quality summary (dedup-aware pair-total denominator)."""
        left, right = self.session.left, self.session.right
        if right is None:
            total = len(left) * (len(left) - 1) // 2
            return candidate_statistics(
                self.pairs, gold_matches, len(left), len(left), total_pairs=total
            )
        return candidate_statistics(self.pairs, gold_matches, len(left), len(right))

    def featurize(self, **overrides) -> "FeatureMatrix":
        """Chain into the featurization stage (see :meth:`ResolutionSession.featurize`)."""
        return self.session.featurize(**overrides)


@dataclass
class FeatureMatrix:
    """Featurization output: the pair-similarity matrix and its provenance."""

    #: ``n_pairs × n_features`` similarity matrix (NaN = missing value).
    X: np.ndarray
    #: Column names, aligned with ``X``.
    feature_names: list[str]
    #: Per-attribute column index groups (the model's covariance blocks).
    feature_groups: list[list[int]]
    #: The fitted generator (types, idf tables, scales).
    generator: FeatureGenerator
    #: Engine that produced ``X`` (``"batch"`` or ``"per-pair"``).
    engine: str
    #: Wall-clock seconds spent fitting the generator + transforming.
    seconds: float
    session: "ResolutionSession" = field(repr=False)

    @property
    def shape(self) -> tuple:
        """``(n_pairs, n_features)`` of :attr:`X`."""
        return self.X.shape

    def column(self, name: str) -> np.ndarray:
        """One feature column by name."""
        try:
            idx = self.feature_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown feature {name!r}; available: {self.feature_names}"
            ) from None
        return self.X[:, idx]

    def match(self, **overrides) -> "MatchSet":
        """Chain into the matching stage (see :meth:`ResolutionSession.match`)."""
        return self.session.match(**overrides)


@dataclass
class MatchSet:
    """Matching output: scored pairs plus the fitted model that scored them."""

    #: The assembled :class:`~repro.api.pipeline.ERResult` (what ``run()`` returns).
    result: ERResult
    #: Fitted matcher (``None`` when blocking produced no candidates).
    model: object | None
    #: Fitted feature generator (``None`` when blocking produced no candidates).
    generator: FeatureGenerator | None
    #: The effective config this match ran with (after overrides).
    config: ZeroERConfig
    session: "ResolutionSession" = field(repr=False)

    @property
    def pairs(self) -> list[tuple]:
        """Scored candidate pairs, in blocking order."""
        return self.result.pairs

    @property
    def scores(self) -> np.ndarray:
        """Match probability γ per pair, aligned with :attr:`pairs`."""
        return self.result.scores

    @property
    def labels(self) -> np.ndarray:
        """0/1 match labels per pair (γ thresholded at 0.5)."""
        return self.result.labels

    @property
    def matches(self) -> list[tuple]:
        """``(left_id, right_id, score)`` triples for the predicted matches."""
        return self.result.matches

    def top_matches(self, k: int = 10) -> list[tuple]:
        """The ``k`` highest-scoring matches (see :meth:`ERResult.top_matches`)."""
        return self.result.top_matches(k)

    def to_frame(self, threshold: float = 0.5, one_to_one: bool = False) -> list[dict]:
        """Matches above ``threshold`` as a list of row dicts."""
        return self.result.to_frame(threshold=threshold, one_to_one=one_to_one)

    def to_csv(self, path, threshold: float = 0.5, one_to_one: bool = False):
        """Write the matches above ``threshold`` to ``path`` as CSV."""
        return self.result.to_csv(path, threshold=threshold, one_to_one=one_to_one)

    def to_result(self) -> ERResult:
        """The plain :class:`ERResult`, exactly as ``ERPipeline.run`` returns it."""
        return self.result

    def rematch(self, **overrides) -> "MatchSet":
        """Re-run the matching stage only (e.g. ``rematch(kappa=0.4)``)."""
        return self.session.match(force=True, **overrides)


class ResolutionSession:
    """One (left, right) resolution broken into cached, re-runnable stages.

    Created via :meth:`ERPipeline.session`. ``right=None`` means
    deduplication of ``left``. Stage methods compute on first call and
    return the cached artifact afterwards; overrides (or ``force=True``)
    recompute the stage and drop everything downstream. Completing
    :meth:`match` publishes the fitted state back onto the pipeline
    (``generator_``/``model_``/``result_``), so ``pipeline.freeze()`` works
    after a staged run exactly as after ``run()``.
    """

    def __init__(self, pipeline: ERPipeline, left: Table, right: Table | None = None):
        self.pipeline = pipeline
        self.left = left
        self.right = right
        self.candidates_: CandidateSet | None = None
        self.features_: FeatureMatrix | None = None
        self.matches_: MatchSet | None = None
        #: Created lazily on the first traced stage; one collector spans the
        #: whole session so staged runs produce a single coherent trace.
        self._collector: RunCollector | None = None

    def _collector_scope(self):
        """The session's span/metric capture scope (no-op when untraced)."""
        if self._collector is None and telemetry_active():
            mode = "dedup" if self.right is None else "linkage"
            self._collector = RunCollector("resolve", mode=mode)
        return collector_scope(self._collector)

    # -- stage 1: blocking -----------------------------------------------------

    def block(
        self,
        blocker: Blocker | None = None,
        blocking_engine: str | None = None,
        force: bool = False,
    ) -> CandidateSet:
        """Compute (or return the cached) candidate pairs.

        ``blocker`` substitutes a different blocker for this session;
        ``blocking_engine`` re-runs a token-overlap blocker under the other
        engine. Any override invalidates the cached features and matches.
        """
        overridden = blocker is not None or blocking_engine is not None
        if self.candidates_ is not None and not force and not overridden:
            return self.candidates_

        effective = blocker if blocker is not None else self.pipeline.blocker
        if blocking_engine is not None:
            validate_blocking_engine(blocking_engine)
            if not isinstance(effective, TokenOverlapBlocker):
                raise ValueError(
                    "blocking_engine applies to TokenOverlapBlocker (and subclasses); "
                    f"got {type(effective).__name__}"
                )
            if effective.engine != blocking_engine:
                effective = copy.deepcopy(effective)
                effective.engine = blocking_engine

        with self._collector_scope():
            with span("blocking", blocker=type(effective).__name__) as sp:
                pairs = effective.block(self.left, self.right)
                sp.set(n_pairs=len(pairs))
            add_counter("blocking.candidate_pairs", len(pairs))
        self.candidates_ = CandidateSet(
            pairs=pairs, blocker=effective, seconds=sp.seconds, session=self
        )
        self.features_ = None
        self.matches_ = None
        return self.candidates_

    # -- stage 2: featurization ------------------------------------------------

    def featurize(self, engine: str | None = None, force: bool = False) -> FeatureMatrix:
        """Compute (or return the cached) pair feature matrix.

        Runs :meth:`block` first if needed. ``engine`` overrides the
        pipeline's featurization engine for this session; an override
        invalidates the cached matches.
        """
        overridden = engine is not None
        if self.features_ is not None and not force and not overridden:
            return self.features_

        effective = engine if engine is not None else self.pipeline.feature_engine
        validate_feature_engine(effective)
        candidates = self.block()
        with self._collector_scope():
            with span("features", engine=effective) as sp:
                with span("features.fit"):
                    generator = FeatureGenerator(
                        type_overrides=self.pipeline.type_overrides
                    ).fit(self.left, self.right)
                if candidates.pairs:
                    X = generator.transform(
                        self.left, self.right, candidates.pairs, engine=effective
                    )
                else:
                    X = np.zeros((0, len(generator.feature_names_)))
                sp.set(n_pairs=int(X.shape[0]), n_features=int(X.shape[1]))
        self.features_ = FeatureMatrix(
            X=X,
            feature_names=generator.feature_names_,
            feature_groups=generator.feature_groups_,
            generator=generator,
            engine=effective,
            seconds=sp.seconds,
            session=self,
        )
        self.matches_ = None
        return self.features_

    # -- stage 3: matching -----------------------------------------------------

    def match(
        self,
        config: ZeroERConfig | None = None,
        force: bool = False,
        **config_overrides,
    ) -> MatchSet:
        """Fit the matcher on the cached features (or return the cached matches).

        ``config`` substitutes a whole :class:`ZeroERConfig`; keyword
        overrides patch individual fields of the effective config, e.g.
        ``session.match(kappa=0.4)`` re-runs EM under a different κ while
        reusing the cached candidate set and feature matrix.
        """
        overridden = config is not None or bool(config_overrides)
        if self.matches_ is not None and not force and not overridden:
            return self.matches_

        effective = config if config is not None else self.pipeline.config
        if config_overrides:
            effective = effective.replace(**config_overrides)

        health = HealthReport()
        candidates = self.block()
        timings: dict[str, float] = {"blocking": candidates.seconds}
        if not candidates.pairs:
            with health_scope(health):
                record_condition(
                    EMPTY_CANDIDATE_SET,
                    "blocking produced no candidate pairs; the result is empty "
                    "and no model was fitted",
                    n_left=len(self.left),
                    n_right=len(self.right) if self.right is not None else None,
                )
            result = ERResult([], np.zeros(0), np.zeros(0, dtype=np.int64), [], timings)
            result.health = health
            result.telemetry = self._run_telemetry(
                candidates, None, None, effective, health
            )
            self.matches_ = MatchSet(
                result=result, model=None, generator=None, config=effective, session=self
            )
            self._publish(self.matches_)
            return self.matches_

        features = self.featurize()
        timings["features"] = features.seconds

        with self._collector_scope(), health_scope(health):
            with span(
                "matching",
                n_pairs=len(candidates.pairs),
                transitivity=bool(effective.transitivity),
            ) as sp:
                if self.right is not None and effective.transitivity:
                    model = self.pipeline._fit_linkage(
                        self.left,
                        self.right,
                        candidates.pairs,
                        features.generator,
                        features.X,
                        config=effective,
                        engine=features.engine,
                    )
                else:
                    model = ZeroER(effective)
                    model.fit(
                        features.X,
                        features.feature_groups,
                        candidates.pairs if self.right is None else None,
                        controls=self.pipeline.fit_controls,
                    )
                labels = (model.match_scores_ > 0.5).astype(np.int64)
            add_counter("matching.pairs_scored", len(candidates.pairs))
            add_counter("matching.matches", int(labels.sum()))
        timings["matching"] = sp.seconds

        result = ERResult(
            pairs=candidates.pairs,
            scores=model.match_scores_,
            labels=labels,
            feature_names=features.feature_names,
            seconds=timings,
        )
        result.health = health
        result.telemetry = self._run_telemetry(candidates, features, model, effective, health)
        self.matches_ = MatchSet(
            result=result,
            model=model,
            generator=features.generator,
            config=effective,
            session=self,
        )
        self._publish(self.matches_)
        return self.matches_

    # -- the full chain ----------------------------------------------------------

    def run(self) -> ERResult:
        """Run (or finish) all stages and return the :class:`ERResult`.

        Equivalent to ``ERPipeline.run``: the pipeline's fit state is
        cleared first so a run that raises cannot leave ``freeze()`` pairing
        a previous run's model with this session's tables.
        """
        pipeline = self.pipeline
        pipeline.generator_ = None
        pipeline.model_ = None
        pipeline.result_ = None
        pipeline.fitted_blocker_ = None
        pipeline.fitted_config_ = None
        pipeline.fitted_engine_ = None
        pipeline.left_, pipeline.right_ = self.left, self.right
        with self._collector_scope():
            with span("resolve", mode="dedup" if self.right is None else "linkage"):
                matches = self.match()
        self._publish(matches)  # re-publish when match() was already cached
        result = matches.to_result()
        if self._collector is not None and result.telemetry is not None:
            # the root span closed after match() attached the telemetry:
            # refresh the metrics snapshot (the spans list is shared)
            result.telemetry.metrics = self._collector.registry.snapshot()
        return result

    def _run_telemetry(
        self, candidates, features, model, config, health: HealthReport | None = None
    ) -> RunTelemetry:
        """Assemble the telemetry attached to this session's result.

        Always populated — even untraced runs carry the cheap summaries
        (mode/sizes, candidate statistics, EM history); the spans list and
        metrics snapshot are filled only when a collector was active.
        """
        n_left = len(self.left)
        n_right = len(self.right) if self.right is not None else None
        total = n_left * (n_left - 1) // 2 if self.right is None else n_left * n_right
        n_candidates = len(candidates.pairs)
        stats = {
            "n_candidates": n_candidates,
            "total_pairs": total,
            "reduction_ratio": 1.0 - n_candidates / total if total else 0.0,
        }
        context = {
            "mode": "dedup" if self.right is None else "linkage",
            "n_left": n_left,
            "n_right": n_right,
            "feature_engine": features.engine if features is not None else None,
            "n_features": len(features.feature_names) if features is not None else 0,
            "transitivity": bool(config.transitivity),
        }
        em = em_history_summary(model.history_) if model is not None else None
        health_doc = health.to_dict() if health is not None and len(health) else None
        collector = self._collector
        if collector is not None:
            return RunTelemetry(
                kind="resolve",
                traced=True,
                spans=collector.spans,
                metrics=collector.registry.snapshot(),
                context=context,
                candidate_statistics=stats,
                em=em,
                health=health_doc,
            )
        return RunTelemetry(
            kind="resolve",
            traced=False,
            context=context,
            candidate_statistics=stats,
            em=em,
            health=health_doc,
        )

    def _publish(self, matches: MatchSet) -> None:
        """Copy a completed match's fitted state onto the pipeline.

        Includes the session-effective blocker, config, and engine so
        ``freeze()`` (index parameters + provenance spec) describes what
        actually produced the model, even when stages ran with overrides.
        """
        pipeline = self.pipeline
        pipeline.left_, pipeline.right_ = self.left, self.right
        pipeline.generator_ = matches.generator
        pipeline.model_ = matches.model
        pipeline.result_ = matches.result
        pipeline.fitted_blocker_ = (
            self.candidates_.blocker if self.candidates_ is not None else None
        )
        pipeline.fitted_config_ = matches.config
        pipeline.fitted_engine_ = (
            self.features_.engine if self.features_ is not None else None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stages = [
            name
            for name, artifact in (
                ("block", self.candidates_),
                ("featurize", self.features_),
                ("match", self.matches_),
            )
            if artifact is not None
        ]
        mode = "dedup" if self.right is None else "linkage"
        return f"ResolutionSession({mode}, completed={stages})"
