"""High-level end-to-end pipeline (the canonical home of :class:`ERPipeline`).

:class:`ERPipeline` wires blocking, automatic feature generation, and the
ZeroER matcher into one object for the common case: two tables in,
scored/labeled pairs out. Record-linkage transitivity (the F/Fl/Fr coupling
of §5) is handled automatically when enabled: within-table candidate sets
are derived from cross-candidate co-occurrence, exactly as the benchmark
harness does.

``run()`` is a thin wrapper over a staged :class:`~repro.api.session.ResolutionSession`
(``pipeline.session(left, right)``), which exposes the intermediate
artifacts — ``CandidateSet → FeatureMatrix → MatchSet`` — individually,
cached and re-runnable with overrides. Pipelines can also be described
declaratively: see :class:`~repro.api.spec.PipelineSpec`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.blocking.base import Blocker
from repro.blocking.overlap import TokenOverlapBlocker, validate_blocking_engine
from repro.core.config import ZeroERConfig
from repro.core.linkage import ZeroERLinkage
from repro.core.model import ZeroER
from repro.data.io import write_rows_csv
from repro.data.table import Table
from repro.eval.harness import co_candidate_pairs
from repro.eval.matching import greedy_one_to_one, score_threshold_matches
from repro.features.generator import FeatureGenerator, validate_feature_engine

__all__ = ["ERPipeline", "ERResult"]


@dataclass
class ERResult:
    """Everything a pipeline run produces."""

    pairs: list[tuple]
    scores: np.ndarray
    labels: np.ndarray
    feature_names: list[str]
    seconds: dict[str, float] = field(default_factory=dict)
    #: Spans/metrics/EM summaries captured by the run (a
    #: :class:`~repro.obs.report.RunTelemetry`); ``None`` only for results
    #: constructed outside the session layer.
    telemetry: object | None = field(default=None, repr=False, compare=False)
    #: Degradations recorded while matching (a
    #: :class:`~repro.reliability.health.HealthReport`); ``None`` only for
    #: results constructed outside the session layer.
    health: object | None = field(default=None, repr=False, compare=False)

    def report(self) -> dict:
        """The run as one versioned JSON document (see :mod:`repro.obs.report`).

        Assembles the captured spans, metrics, candidate statistics, EM
        history, and health flags into a
        :func:`repro.obs.validate_report`-clean dict. Works on untraced runs
        too — the document then has empty spans/metrics but real timings and
        EM summaries.
        """
        from repro.obs import RunTelemetry, build_report

        telemetry = self.telemetry
        if telemetry is None:
            telemetry = RunTelemetry(kind="resolve", traced=False)
        if telemetry.health is None and self.health is not None and len(self.health):
            telemetry.health = self.health.to_dict()
        return build_report(telemetry, self.seconds)

    @property
    def matches(self) -> list[tuple]:
        """The predicted matching pairs."""
        return [pair for pair, label in zip(self.pairs, self.labels) if label == 1]

    def top_matches(self, k: int = 10) -> list[tuple]:
        """The ``k`` most confident predicted matches with their scores."""
        order = np.argsort(-self.scores)
        out = []
        for i in order:
            if self.labels[int(i)] == 1:
                out.append((self.pairs[int(i)], float(self.scores[int(i)])))
            if len(out) >= k:
                break
        return out

    def to_frame(self, threshold: float = 0.5, one_to_one: bool = False) -> list[dict]:
        """Matched pairs as ``{"left_id", "right_id", "score"}`` row dicts.

        ``threshold`` selects pairs with score strictly above it;
        ``one_to_one`` post-processes into a greedy one-to-one assignment
        (sensible for record linkage between deduplicated tables only).
        """
        score_of = {tuple(p): float(s) for p, s in zip(self.pairs, self.scores)}
        if one_to_one:
            selected = greedy_one_to_one(self.pairs, self.scores, threshold)
        else:
            selected = score_threshold_matches(self.pairs, self.scores, threshold)
        return [
            {"left_id": a, "right_id": b, "score": score_of[(a, b)]} for a, b in selected
        ]

    def to_csv(
        self,
        path: str | Path,
        threshold: float = 0.5,
        one_to_one: bool = False,
        *,
        frame: list[dict] | None = None,
    ) -> Path:
        """Write :meth:`to_frame` rows to ``path`` (scores formatted to 6 dp).

        ``frame`` accepts an already-computed :meth:`to_frame` result so
        callers that need both the rows and the file pay for the match
        selection once; ``threshold``/``one_to_one`` are ignored then.
        """
        if frame is None:
            frame = self.to_frame(threshold=threshold, one_to_one=one_to_one)
        rows = ((row["left_id"], row["right_id"], f"{row['score']:.6f}") for row in frame)
        return write_rows_csv(path, ("left_id", "right_id", "score"), rows)


class ERPipeline:
    """Block → featurize → match, in one call.

    Parameters
    ----------
    blocker:
        Any :class:`~repro.blocking.base.Blocker`; defaults to token overlap
        on ``blocking_attribute``.
    blocking_attribute:
        Attribute for the default blocker (required when ``blocker`` is not
        given).
    config:
        ZeroER hyperparameters (paper defaults when omitted).
    co_candidate_cap:
        Per-anchor cap when deriving within-table candidate sets for the
        linkage transitivity coupling.
    feature_engine:
        Featurization engine forwarded to
        :meth:`~repro.features.generator.FeatureGenerator.transform`:
        ``"batch"`` (default, columnar kernels) or ``"per-pair"`` (the
        reference scoring loop).
    blocking_engine:
        Blocking engine for token-overlap blockers: ``"sparse"`` (columnar
        CSR kernel) or ``"per-record"`` (the reference loop). ``None``
        (default) keeps the blocker's own setting — ``"sparse"`` for the
        default blocker. Setting it alongside a non-token-overlap
        ``blocker`` raises ``ValueError``.
    type_overrides:
        Optional ``{attribute: AttributeType}`` forwarded to the
        :class:`~repro.features.generator.FeatureGenerator`, pinning types
        that inference would get wrong.
    fit_controls:
        Optional :class:`~repro.reliability.checkpoint.FitControls` applied
        to every EM fit this pipeline runs: crash-safe checkpoints, resume,
        and a wall-clock budget (best-so-far parameters with
        ``converged=False`` instead of hanging).
    """

    def __init__(
        self,
        blocker: Blocker | None = None,
        blocking_attribute: str | None = None,
        config: ZeroERConfig | None = None,
        co_candidate_cap: int = 10,
        feature_engine: str = "batch",
        blocking_engine: str | None = None,
        type_overrides: dict | None = None,
        fit_controls=None,
    ):
        if blocker is None:
            if blocking_attribute is None:
                raise ValueError("provide either a blocker or a blocking_attribute")
            blocker = TokenOverlapBlocker(
                blocking_attribute,
                min_overlap=1,
                top_k=60,
                engine=blocking_engine if blocking_engine is not None else "sparse",
            )
        elif blocking_engine is not None:
            validate_blocking_engine(blocking_engine)
            if not isinstance(blocker, TokenOverlapBlocker):
                raise ValueError(
                    "blocking_engine applies to TokenOverlapBlocker (and subclasses); "
                    f"got {type(blocker).__name__}"
                )
            if blocker.engine != blocking_engine:
                # leave the caller's blocker fully untouched: a deep copy so
                # no mutable state (tokenizer, caches) is shared either way
                blocker = copy.deepcopy(blocker)
                blocker.engine = blocking_engine
        validate_feature_engine(feature_engine)
        self.blocker = blocker
        self.config = config if config is not None else ZeroERConfig()
        self.co_candidate_cap = int(co_candidate_cap)
        self.feature_engine = feature_engine
        self.type_overrides = dict(type_overrides) if type_overrides else None
        self.fit_controls = fit_controls
        self.generator_: FeatureGenerator | None = None
        self.model_: ZeroER | ZeroERLinkage | None = None
        self.left_: Table | None = None
        self.right_: Table | None = None
        self.result_: ERResult | None = None
        # Effective settings behind model_/result_: staged sessions may
        # override the blocker, config, or engine per stage, and freeze()
        # must describe what actually ran, not the pipeline's defaults.
        self.fitted_blocker_: Blocker | None = None
        self.fitted_config_: ZeroERConfig | None = None
        self.fitted_engine_: str | None = None

    def session(self, left: Table, right: Table | None = None):
        """Open a staged :class:`~repro.api.session.ResolutionSession`.

        The session exposes the pipeline's stages individually —
        ``session.block()`` → ``session.featurize()`` → ``session.match()``
        — with each intermediate artifact cached, inspectable, and
        re-runnable with overrides (e.g. re-match under a different κ
        without re-blocking or re-featurizing).
        """
        from repro.api.session import ResolutionSession

        return ResolutionSession(self, left, right)

    def run(self, left: Table, right: Table | None = None) -> ERResult:
        """Resolve entities between two tables (or within one, dedup mode)."""
        return self.session(left, right).run()

    def freeze(
        self,
        threshold: float = 0.5,
        shards: int = 1,
        workers: int = 1,
        load_budget_mb: float | None = None,
    ):
        """Turn the completed batch run into an :class:`IncrementalResolver`.

        The fitted model and feature generator are frozen as-is; the entity
        store is seeded with every record of the run's table(s), clustered
        by the run's predicted matches; the incremental index is built with
        the pipeline blocker's retrieval parameters (requires a
        :class:`~repro.blocking.overlap.TokenOverlapBlocker`). In linkage
        mode the two tables share one store, so their record ids must be
        disjoint. The pipeline's declarative spec (when capturable) is
        embedded in the resolver for provenance.

        ``shards=1`` (the default) freezes onto the classic in-memory
        store/index — the reference engine. ``shards >= 2`` freezes onto
        the partitioned structures of :mod:`repro.shard` (same results,
        bit for bit; out-of-core artifacts and vectorized probing), with
        ``workers`` parallel featurization processes and an optional
        in-process shard ``load_budget_mb`` enforced after a reload.
        """
        from repro.incremental.index import IncrementalTokenIndex
        from repro.incremental.resolver import IncrementalResolver
        from repro.incremental.store import EntityStore
        from repro.shard import (
            ShardedEntityStore,
            ShardedTokenIndex,
            ShardLoadManager,
            validate_shard_count,
        )

        shards = validate_shard_count(shards)
        if self.result_ is None:
            raise RuntimeError("run() must complete before freeze()")
        if self.model_ is None or self.generator_ is None:
            raise RuntimeError(
                "cannot freeze: the run produced no candidate pairs, so no model was fitted"
            )
        left, right = self.left_, self.right_
        if right is not None:
            shared = set(left.ids()) & set(right.ids())
            if shared:
                example = sorted(shared, key=repr)[:3]
                raise ValueError(
                    f"cannot freeze: {len(shared)} record ids appear in both tables "
                    f"(e.g. {example}); the shared entity store needs disjoint ids — "
                    "prefix each side before running"
                )
        blocker = self.fitted_blocker_ if self.fitted_blocker_ is not None else self.blocker
        engine = self.fitted_engine_ if self.fitted_engine_ is not None else self.feature_engine
        if shards > 1:
            budget = int(load_budget_mb * 1024 * 1024) if load_budget_mb else None
            loader = ShardLoadManager(budget_bytes=budget)
            index = ShardedTokenIndex.from_blocker(
                blocker, id_attr=left.id_attr, n_shards=shards, loader=loader
            )
            store = ShardedEntityStore(
                id_attr=left.id_attr, n_shards=shards, loader=loader
            )
        else:
            index = IncrementalTokenIndex.from_blocker(blocker, id_attr=left.id_attr)
            store = EntityStore(id_attr=left.id_attr)
        for table in (left, right) if right is not None else (left,):
            for rec in table:
                store.add(rec)
                index.add([rec])
        for pair, score in zip(self.result_.pairs, self.result_.scores):
            if score > threshold:
                store.merge(*pair)
        return IncrementalResolver(
            self.generator_,
            self.model_,
            index,
            store,
            threshold=threshold,
            engine=engine,
            spec=self._capture_spec(threshold, shards, workers, load_budget_mb),
            workers=workers,
        )

    def _capture_spec(
        self,
        threshold: float,
        shards: int = 1,
        workers: int = 1,
        load_budget_mb: float | None = None,
    ):
        """Best-effort declarative capture of the *fitted* run, for provenance.

        Describes what actually produced ``model_``/``result_`` — the
        session-effective blocker, config, and engine when a staged run
        overrode the pipeline's defaults. Returns ``None`` when the run
        cannot be described declaratively (custom blocker class,
        non-serializable tokenizer, ...) — freezing still works, the
        artifact just carries no spec.
        """
        from repro.api.spec import (
            BlockingSpec,
            FeatureSpec,
            ModelSpec,
            OutputSpec,
            PipelineSpec,
            ShardSpec,
            SpecError,
        )

        blocker = self.fitted_blocker_ if self.fitted_blocker_ is not None else self.blocker
        config = self.fitted_config_ if self.fitted_config_ is not None else self.config
        engine = self.fitted_engine_ if self.fitted_engine_ is not None else self.feature_engine
        overrides = self.type_overrides or {}
        sharded = shards > 1 or workers > 1 or load_budget_mb is not None
        try:
            return PipelineSpec(
                blocking=BlockingSpec.from_blocker(blocker),
                features=FeatureSpec(
                    engine=engine,
                    type_overrides={a: t.value for a, t in overrides.items()},
                ),
                model=ModelSpec(
                    config=config,
                    co_candidate_cap=self.co_candidate_cap,
                    time_budget_s=(
                        self.fit_controls.time_budget_s
                        if self.fit_controls is not None
                        else None
                    ),
                ),
                output=OutputSpec(threshold=threshold),
                shard=(
                    ShardSpec(
                        shards=shards, workers=workers, load_budget_mb=load_budget_mb
                    )
                    if sharded
                    else None
                ),
            )
        except (SpecError, TypeError):
            return None

    def _fit_linkage(
        self,
        left,
        right,
        pairs,
        generator,
        X,
        config: ZeroERConfig | None = None,
        engine: str | None = None,
    ) -> ZeroERLinkage:
        config = config if config is not None else self.config
        engine = engine if engine is not None else self.feature_engine
        left_pairs = co_candidate_pairs(pairs, side=0, cap=self.co_candidate_cap)
        right_pairs = co_candidate_pairs(pairs, side=1, cap=self.co_candidate_cap)
        X_left = (
            generator.transform(left, None, left_pairs, engine=engine) if left_pairs else None
        )
        X_right = (
            generator.transform(right, None, right_pairs, engine=engine) if right_pairs else None
        )
        model = ZeroERLinkage(config)
        model.fit(
            X,
            pairs,
            feature_groups=generator.feature_groups_,
            X_left=X_left,
            left_pairs=left_pairs if X_left is not None else None,
            X_right=X_right,
            right_pairs=right_pairs if X_right is not None else None,
            controls=self.fit_controls,
        )
        return model
