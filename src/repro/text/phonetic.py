"""Phonetic encodings.

Classic record-linkage blocking/matching keys: names that sound alike get
the same code even when spelled differently ("smith" / "smyth"). Soundex is
the encoding the Fellegi–Sunter tradition (and the U.S. Census) used.
"""

from __future__ import annotations

__all__ = ["soundex", "phonetic_match"]

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(value: str | None) -> str | None:
    """American Soundex code (letter + three digits), e.g. ``robert → r163``.

    Follows the standard algorithm: keep the first letter; code consonants;
    collapse adjacent identical codes (including across ``h``/``w``); drop
    vowels; pad with zeros. Non-alphabetic characters are ignored; an input
    with no letters (or ``None``) encodes to ``None``.
    """
    if value is None:
        return None
    letters = [c for c in str(value).lower() if c.isalpha()]
    if not letters:
        return None
    first = letters[0]
    digits = [_SOUNDEX_CODES.get(first, "")]
    for ch in letters[1:]:
        if ch in "hw":
            continue  # h/w do not break runs of identical codes
        code = _SOUNDEX_CODES.get(ch, "")
        digits.append(code)
    collapsed: list[str] = []
    previous = digits[0]
    for code in digits[1:]:
        if code and code != previous:
            collapsed.append(code)
        if code:  # vowels (empty codes) break runs
            previous = code
        else:
            previous = ""
    return (first + "".join(collapsed) + "000")[:4]


def phonetic_match(a: str | None, b: str | None) -> float:
    """1.0 if the Soundex codes agree, 0.0 otherwise (NaN when missing)."""
    ca, cb = soundex(a), soundex(b)
    if ca is None or cb is None:
        return float("nan")
    return 1.0 if ca == cb else 0.0
