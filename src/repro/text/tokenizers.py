"""Tokenizers used by token-based similarity measures.

Mirrors the tokenizer set Magellan exposes: q-gram tokenizers (with optional
padding), whitespace tokenization, alphanumeric tokenization, and an
arbitrary-delimiter tokenizer. Tokenizers are small callables so similarity
functions can be composed with any of them.
"""

from __future__ import annotations

import re

__all__ = [
    "Tokenizer",
    "QgramTokenizer",
    "WhitespaceTokenizer",
    "AlnumTokenizer",
    "DelimiterTokenizer",
    "tokenizer_spec",
    "tokenizer_from_spec",
]


class Tokenizer:
    """Base class: a tokenizer maps a string to a list of tokens.

    Subclasses implement :meth:`tokenize`. Instances are also callable.
    ``None`` input (a missing attribute value) tokenizes to an empty list,
    which downstream similarity functions translate into a NaN feature.
    """

    #: Whether :meth:`tokenize` may return duplicate tokens (bag semantics).
    returns_bag = True

    def tokenize(self, text: str | None) -> list[str]:
        raise NotImplementedError

    def __call__(self, text: str | None) -> list[str]:
        return self.tokenize(text)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class QgramTokenizer(Tokenizer):
    """Character q-grams, optionally padded with boundary markers.

    Padding with ``q - 1`` copies of ``#`` / ``$`` (Magellan's convention)
    gives boundary characters the same weight as interior ones, which helps
    short strings.

    >>> QgramTokenizer(3).tokenize("abc")
    ['##a', '#ab', 'abc', 'bc$', 'c$$']
    """

    def __init__(self, q: int = 3, *, padded: bool = True, lowercase: bool = True):
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = int(q)
        self.padded = bool(padded)
        self.lowercase = bool(lowercase)

    def tokenize(self, text: str | None) -> list[str]:
        if text is None:
            return []
        s = str(text)
        if self.lowercase:
            s = s.lower()
        if not s:
            return []
        if self.padded and self.q > 1:
            pad = self.q - 1
            s = "#" * pad + s + "$" * pad
        if len(s) < self.q:
            return [s]
        return [s[i : i + self.q] for i in range(len(s) - self.q + 1)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QgramTokenizer(q={self.q}, padded={self.padded})"


class WhitespaceTokenizer(Tokenizer):
    """Split on runs of whitespace.

    >>> WhitespaceTokenizer().tokenize("deep  learning for ER")
    ['deep', 'learning', 'for', 'er']
    """

    def __init__(self, *, lowercase: bool = True):
        self.lowercase = bool(lowercase)

    def tokenize(self, text: str | None) -> list[str]:
        if text is None:
            return []
        s = str(text)
        if self.lowercase:
            s = s.lower()
        return s.split()


class AlnumTokenizer(Tokenizer):
    """Maximal alphanumeric runs; punctuation acts as a delimiter.

    >>> AlnumTokenizer().tokenize("O'Neil & Sons, Ltd.")
    ['o', 'neil', 'sons', 'ltd']
    """

    _pattern = re.compile(r"[a-z0-9]+")

    def __init__(self, *, lowercase: bool = True):
        self.lowercase = bool(lowercase)

    def tokenize(self, text: str | None) -> list[str]:
        if text is None:
            return []
        s = str(text)
        if self.lowercase:
            s = s.lower()
        else:  # match uppercase too when not lowercasing
            return re.findall(r"[A-Za-z0-9]+", s)
        return self._pattern.findall(s)


class DelimiterTokenizer(Tokenizer):
    """Split on a fixed delimiter string (e.g. ``,`` for author lists).

    >>> DelimiterTokenizer(",").tokenize("Smith, J., Doe, J.")
    ['smith', 'j.', 'doe', 'j.']
    """

    def __init__(self, delimiter: str = ",", *, lowercase: bool = True, strip: bool = True):
        if not delimiter:
            raise ValueError("delimiter must be a non-empty string")
        self.delimiter = delimiter
        self.lowercase = bool(lowercase)
        self.strip = bool(strip)

    def tokenize(self, text: str | None) -> list[str]:
        if text is None:
            return []
        s = str(text)
        if self.lowercase:
            s = s.lower()
        parts = s.split(self.delimiter)
        if self.strip:
            parts = [p.strip() for p in parts]
        return [p for p in parts if p]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DelimiterTokenizer({self.delimiter!r})"


def tokenizer_spec(tokenizer: Tokenizer) -> dict:
    """JSON-serializable description of a standard tokenizer.

    Covers the library's tokenizer families; a custom subclass cannot be
    persisted declaratively (its behavior is not captured by the parameters)
    and raises ``TypeError`` — exact types only.
    """
    kind = type(tokenizer)
    if kind is QgramTokenizer:
        return {
            "type": "qgram",
            "q": tokenizer.q,
            "padded": tokenizer.padded,
            "lowercase": tokenizer.lowercase,
        }
    if kind is DelimiterTokenizer:
        return {
            "type": "delimiter",
            "delimiter": tokenizer.delimiter,
            "lowercase": tokenizer.lowercase,
            "strip": tokenizer.strip,
        }
    if kind is AlnumTokenizer:
        return {"type": "alnum", "lowercase": tokenizer.lowercase}
    if kind is WhitespaceTokenizer:
        return {"type": "whitespace", "lowercase": tokenizer.lowercase}
    raise TypeError(f"cannot serialize tokenizer of type {kind.__name__}")


def tokenizer_from_spec(spec: dict) -> Tokenizer:
    """Rebuild a tokenizer from :func:`tokenizer_spec` output."""
    kind = spec["type"]
    if kind == "qgram":
        return QgramTokenizer(spec["q"], padded=spec["padded"], lowercase=spec["lowercase"])
    if kind == "delimiter":
        return DelimiterTokenizer(
            spec["delimiter"], lowercase=spec["lowercase"], strip=spec["strip"]
        )
    if kind == "alnum":
        return AlnumTokenizer(lowercase=spec["lowercase"])
    if kind == "whitespace":
        return WhitespaceTokenizer(lowercase=spec["lowercase"])
    raise ValueError(f"unknown tokenizer spec type {kind!r}")
