"""String similarity substrate.

This package reimplements the similarity-function zoo that Magellan
(py_entitymatching) applies during automatic feature generation, plus the
tokenizers those functions depend on. Everything is pure Python/numpy.

Two API styles are provided:

* plain functions (``jaccard``, ``levenshtein_similarity``, ...) operating on
  already-tokenized input or raw strings, and
* small callable classes (``QgramTokenizer``, ...) carrying configuration,
  used by :mod:`repro.features` when it assembles feature tables.
"""

from repro.text.tokenizers import (
    AlnumTokenizer,
    DelimiterTokenizer,
    QgramTokenizer,
    WhitespaceTokenizer,
)
from repro.text.phonetic import phonetic_match, soundex
from repro.text.similarity import (
    cosine,
    dice,
    exact_match,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    needleman_wunsch,
    numeric_absolute_similarity,
    numeric_relative_similarity,
    overlap_coefficient,
    smith_waterman,
    tfidf_cosine,
)

__all__ = [
    "QgramTokenizer",
    "WhitespaceTokenizer",
    "AlnumTokenizer",
    "DelimiterTokenizer",
    "jaccard",
    "cosine",
    "dice",
    "overlap_coefficient",
    "tfidf_cosine",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "monge_elkan",
    "needleman_wunsch",
    "smith_waterman",
    "exact_match",
    "numeric_absolute_similarity",
    "numeric_relative_similarity",
    "soundex",
    "phonetic_match",
]
