"""String similarity substrate.

This package reimplements the similarity-function zoo that Magellan
(py_entitymatching) applies during automatic feature generation, plus the
tokenizers those functions depend on. Everything is pure Python/numpy.

Two API styles are provided:

* plain functions (``jaccard``, ``levenshtein_similarity``, ...) operating on
  already-tokenized input or raw strings, and
* small callable classes (``QgramTokenizer``, ...) carrying configuration,
  used by :mod:`repro.features` when it assembles feature tables.
"""

from repro.text.tokenizers import (
    AlnumTokenizer,
    DelimiterTokenizer,
    QgramTokenizer,
    WhitespaceTokenizer,
    tokenizer_from_spec,
    tokenizer_spec,
)
from repro.text.batch import (
    TokenPairStats,
    batch_jaro_winkler,
    batch_jaro_winkler_indexed,
    batch_levenshtein_similarity,
    batch_levenshtein_similarity_indexed,
    batch_monge_elkan_jw,
    batch_monge_elkan_jw_indexed,
    batch_tfidf_cosine,
    batch_tfidf_cosine_indexed,
    cosine_from_stats,
    dice_from_stats,
    jaccard_from_stats,
    overlap_from_stats,
    qgram_pair_stats_indexed,
    token_pair_stats,
    token_pair_stats_indexed,
)
from repro.text.phonetic import phonetic_match, soundex
from repro.text.similarity import (
    cosine,
    dice,
    exact_match,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    needleman_wunsch,
    numeric_absolute_similarity,
    numeric_relative_similarity,
    overlap_coefficient,
    smith_waterman,
    tfidf_cosine,
)

__all__ = [
    "QgramTokenizer",
    "WhitespaceTokenizer",
    "AlnumTokenizer",
    "DelimiterTokenizer",
    "tokenizer_spec",
    "tokenizer_from_spec",
    "jaccard",
    "cosine",
    "dice",
    "overlap_coefficient",
    "tfidf_cosine",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "monge_elkan",
    "needleman_wunsch",
    "smith_waterman",
    "exact_match",
    "numeric_absolute_similarity",
    "numeric_relative_similarity",
    "soundex",
    "phonetic_match",
    "TokenPairStats",
    "token_pair_stats",
    "token_pair_stats_indexed",
    "qgram_pair_stats_indexed",
    "jaccard_from_stats",
    "cosine_from_stats",
    "dice_from_stats",
    "overlap_from_stats",
    "batch_tfidf_cosine",
    "batch_tfidf_cosine_indexed",
    "batch_levenshtein_similarity",
    "batch_levenshtein_similarity_indexed",
    "batch_jaro_winkler",
    "batch_jaro_winkler_indexed",
    "batch_monge_elkan_jw",
    "batch_monge_elkan_jw_indexed",
]
