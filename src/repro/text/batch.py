"""Columnar batch kernels for the pair-scoring hot path.

Featurizing a blocked candidate set is the dominant end-to-end cost of
ZeroER (paper §2.1, §5.5): up to ~100k pairs, each scored by a dozen or
more similarity features. The per-pair functions in
:mod:`repro.text.similarity` pay Python-level call overhead and per-call
``set``/``Counter`` construction on every cell; the kernels here score a
whole pair batch per numpy operation instead.

Every kernel comes in two forms: a *record-indexed* ``*_indexed`` variant
taking record-level prepared values plus per-pair row indices (what the
feature generator uses — records repeat across a blocked candidate set, so
per-record work is paid once), and a per-pair convenience wrapper taking
two aligned lists.

Kernel families:

* **Token-set measures** — :func:`token_pair_stats_indexed` computes the
  intersection size of all pairs with a dense/sparse split: the
  highest-document-frequency tokens (ranked at encode time) live in
  per-record *bitmasks*, so most of each intersection is a handful of
  ``AND`` + popcount word operations per pair; the rare-token tail is a
  sorted-key merge. Jaccard / cosine / Dice / overlap then derive from the
  shared :class:`TokenPairStats` with pure arithmetic, so e.g. an
  attribute's ``cos_qgm3`` and ``dice_qgm3`` cost one tokenization and one
  intersection pass, total.
* **TF-IDF cosine** — each distinct bag is weighted (``tf · idf``) and
  normed once at the record level; pair dot products come from one
  sorted-key merge.
* **Edit measures** — Levenshtein and Jaro–Winkler deduplicate value
  combinations, short-circuit equal/empty cases, and bucket the remainder
  by ``(len(a), len(b))`` so the dynamic programs run vectorized across all
  string pairs of a bucket (strings become contiguous uint32 code matrices
  via the same utf-32 encoding the scalar kernels use).
* **Monge–Elkan** — token pairs are deduplicated across the whole batch
  and scored once with the batch Jaro–Winkler kernel; the per-pair
  best-match/mean aggregation runs as dense ``(k, |A|, |B|)`` reductions
  per length bucket.

Every kernel reproduces the scalar functions' conventions exactly:
``None`` → NaN, both-empty → 1.0, one-empty → 0.0. The set/edit measures
are bit-identical to the scalar path; TF-IDF and Monge–Elkan match to
float rounding (only summation order differs).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.text.similarity import jaro_winkler, levenshtein_distance

__all__ = [
    "TokenPairStats",
    "token_pair_stats",
    "token_pair_stats_indexed",
    "qgram_pair_stats_indexed",
    "jaccard_from_stats",
    "cosine_from_stats",
    "dice_from_stats",
    "overlap_from_stats",
    "batch_tfidf_cosine",
    "batch_tfidf_cosine_indexed",
    "batch_levenshtein_similarity",
    "batch_levenshtein_similarity_indexed",
    "batch_jaro_winkler",
    "batch_jaro_winkler_indexed",
    "batch_monge_elkan_jw",
    "batch_monge_elkan_jw_indexed",
]

_NAN = float("nan")

#: Value-combination buckets smaller than this fall back to the scalar edit
#: kernels: the vectorized DP's per-bucket setup costs more than a handful
#: of scalar calls.
_MIN_VECTOR_BUCKET = 4

#: Cap on dense bitmask width (bits per record) for token intersections.
#: Tokens ranked beyond the cap go through the sorted-merge tail.
_DENSE_BITS_CAP = 1024

#: Monge–Elkan expansion budget: if Σ |A|·|B| over the batch exceeds this,
#: the kernel refuses (returns None) and the caller falls back to the
#: per-pair path rather than allocating unbounded intermediates.
_MONGE_ELKAN_CELL_BUDGET = 60_000_000

#: Rows of a Monge–Elkan bucket are processed in chunks of at most this
#: many (pair, token_a, token_b) cells, capping the transient int64/float64
#: intermediates at ~50 MB regardless of batch size.
_MONGE_ELKAN_CHUNK_CELLS = 2_000_000

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    def _popcount_rows(words: np.ndarray) -> np.ndarray:
        """Total set bits per row of a (n, w) uint64 matrix."""
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
else:  # pragma: no cover - exercised only on numpy 1.x
    _POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount_rows(words: np.ndarray) -> np.ndarray:
        n = words.shape[0]
        return _POPCOUNT8[words.view(np.uint8).reshape(n, -1)].sum(axis=1, dtype=np.int64)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _pair_positions(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def _none_flags(values: Sequence) -> np.ndarray:
    return np.fromiter((v is None for v in values), dtype=bool, count=len(values))


def _gather_rows(indptr: np.ndarray, data: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR rows ``rows``; returns (values, owner index per value)."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    owners = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
    if total == 0:
        return data[:0], owners
    shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.repeat(starts - shift, counts) + np.arange(total, dtype=np.int64)
    return data[positions], owners


def _sorted_key_merge_counts(
    keys_a: np.ndarray, owners_a: np.ndarray, keys_b: np.ndarray, n: int
) -> np.ndarray:
    """Per-owner count of keys_a entries present in keys_b (both sorted unique)."""
    if not len(keys_a) or not len(keys_b):
        return np.zeros(n, dtype=np.int64)
    pos = np.searchsorted(keys_b, keys_a)
    pos_clipped = np.minimum(pos, len(keys_b) - 1)
    hit = keys_b[pos_clipped] == keys_a
    return np.bincount(owners_a[hit], minlength=n)


# ---------------------------------------------------------------------------
# Token-set measures
# ---------------------------------------------------------------------------

@dataclass
class TokenPairStats:
    """Shared per-pair statistics for all set-semantics token measures.

    One instance serves every measure over the same ``(attribute,
    tokenizer)`` combination — the expensive parts (encoding, intersection
    counting) happen once.
    """

    #: ``|A ∩ B|`` per pair (0 where a side is missing).
    intersection: np.ndarray
    #: ``|A|`` / ``|B|`` per pair (0 where missing).
    size_a: np.ndarray
    size_b: np.ndarray
    #: True where either side's value is missing (→ NaN feature).
    missing: np.ndarray

    def __len__(self) -> int:
        return len(self.intersection)


def _stats_from_flat(
    owner: np.ndarray,
    ids: np.ndarray,
    n_records: int,
    vocab_size: int,
    none: np.ndarray,
    ua: np.ndarray,
    ub: np.ndarray,
    *,
    deduped: bool = False,
) -> TokenPairStats:
    """Intersection/size stats from a flat (record, token-id) incidence.

    ``owner``/``ids`` may contain within-record duplicates (bag input) —
    unless ``deduped=True``, the first step deduplicates to set semantics.
    Both pair sides index into the *same* record space (callers append
    side-b records after side-a and offset ``ub``).

    Token ids are re-ranked by descending document frequency: ids below a
    dense cutoff live in per-record uint64 bitmasks, so the bulk of every
    pair intersection is a handful of AND + popcount word operations; the
    rare-token tail goes through a sorted-key merge. This is the CSR
    token-incidence split that makes set measures columnar.
    """
    n = len(ua)
    missing = none[ua] | none[ub]
    if vocab_size == 0 or len(owner) == 0 or n == 0:
        zeros = np.zeros(n, dtype=np.int64)
        sizes = np.zeros(n_records, dtype=np.int64)
        if len(owner):
            sizes = np.bincount(owner, minlength=n_records)
        return TokenPairStats(
            intersection=zeros, size_a=sizes[ua], size_b=sizes[ub], missing=missing
        )

    if deduped:
        owner_u, ids_u = owner, ids
    else:
        # set semantics: drop within-record duplicates
        keys = np.unique(owner * vocab_size + ids)
        owner_u = keys // vocab_size
        ids_u = keys % vocab_size
    sizes = np.bincount(owner_u, minlength=n_records)

    # rank ids by descending document frequency so the dense bitmask prefix
    # absorbs the bulk of every intersection
    df = np.bincount(ids_u, minlength=vocab_size)
    order = np.argsort(-df, kind="stable")
    rank = np.empty(vocab_size, dtype=np.int64)
    rank[order] = np.arange(vocab_size, dtype=np.int64)
    ranked = rank[ids_u]

    dense_bits = min(_DENSE_BITS_CAP, -(-min(vocab_size, _DENSE_BITS_CAP) // 64) * 64)
    n_words = dense_bits // 64
    masks = np.zeros((n_records, n_words), dtype=np.uint64)
    dense_sel = ranked < dense_bits
    if dense_sel.any():
        np.bitwise_or.at(
            masks.reshape(-1),
            owner_u[dense_sel] * n_words + (ranked[dense_sel] >> 6),
            np.left_shift(np.uint64(1), (ranked[dense_sel] & 63).astype(np.uint64)),
        )
    inter = _popcount_rows(masks[ua] & masks[ub])

    tail_sel = ~dense_sel
    if tail_sel.any():
        tail_keys = np.sort(owner_u[tail_sel] * vocab_size + ranked[tail_sel])
        tail_ids = tail_keys % vocab_size
        tail_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(tail_keys // vocab_size, minlength=n_records)))
        )
        toks_a, owners_a = _gather_rows(tail_indptr, tail_ids, ua)
        toks_b, owners_b = _gather_rows(tail_indptr, tail_ids, ub)
        # rows are token-sorted and owners ascend → keys globally sorted
        inter += _sorted_key_merge_counts(
            owners_a * vocab_size + toks_a, owners_a, owners_b * vocab_size + toks_b, n
        )
    return TokenPairStats(
        intersection=inter, size_a=sizes[ua], size_b=sizes[ub], missing=missing
    )


def token_pair_stats_indexed(
    records_a: Sequence,
    ua: np.ndarray,
    records_b: Sequence,
    ub: np.ndarray,
) -> TokenPairStats:
    """Intersection/size stats for pairs ``(records_a[ua[i]], records_b[ub[i]])``.

    ``records_*`` hold each distinct record's tokens (any iterable — bags
    are deduplicated to sets — or ``None`` for missing); ``ua``/``ub`` map
    pairs to record rows. Pass the *same list object* for both sides in
    dedup mode to share the encoding.
    """
    same = records_b is records_a
    records_all = records_a if same else list(records_a) + list(records_b)
    vocab: dict = {}
    counts: list[int] = []
    flat: list[int] = []
    for tokens in records_all:
        if tokens is None:
            counts.append(0)
            continue
        row = [vocab.setdefault(t, len(vocab)) for t in tokens]
        flat.extend(row)
        counts.append(len(row))
    owner = np.repeat(np.arange(len(records_all), dtype=np.int64), counts)
    ids = np.asarray(flat, dtype=np.int64) if flat else np.zeros(0, dtype=np.int64)
    ua = np.asarray(ua, dtype=np.int64)
    ub = np.asarray(ub, dtype=np.int64)
    return _stats_from_flat(
        owner,
        ids,
        len(records_all),
        len(vocab),
        _none_flags(records_all),
        ua,
        ub if same else ub + len(records_a),
    )


def qgram_pair_stats_indexed(
    strings_a: Sequence,
    ua: np.ndarray,
    strings_b: Sequence,
    ub: np.ndarray,
    *,
    q: int,
    padded: bool = True,
    lowercase: bool = True,
) -> TokenPairStats:
    """Q-gram set stats straight from record strings — no Python tokens.

    Reproduces :class:`repro.text.tokenizers.QgramTokenizer` semantics
    (lowercase, then ``#``/``$`` padding, then length-``q`` windows)
    entirely in numpy: every record's padded string becomes a row of
    utf-32 code points, the sliding windows become a ``(N, q)`` uint32
    matrix, and window identity is resolved with one :func:`numpy.unique`
    over the raw window bytes. Requires ``padded=True`` or ``q == 1`` (the
    unpadded short-string case tokenizes to the whole string, which has no
    windowed equivalent).
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if not padded and q > 1:
        raise ValueError("qgram_pair_stats_indexed requires padded=True or q == 1")
    same = strings_b is strings_a
    all_strings = strings_a if same else list(strings_a) + list(strings_b)
    pad = "#" * (q - 1), "$" * (q - 1)
    prepared = [
        None if s is None else (pad[0] + (s.lower() if lowercase else s) + pad[1] if s else "")
        for s in all_strings
    ]
    lens = np.fromiter(
        (0 if s is None else len(s) for s in prepared), dtype=np.int64, count=len(prepared)
    )
    n_windows = np.maximum(lens - (q - 1), 0)
    total = int(n_windows.sum())
    none = _none_flags(all_strings)
    ua = np.asarray(ua, dtype=np.int64)
    ub = np.asarray(ub, dtype=np.int64) if same else np.asarray(ub, dtype=np.int64) + len(strings_a)
    if total == 0:
        return _stats_from_flat(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            len(all_strings), 0, none, ua, ub,
        )
    codes = np.frombuffer(
        "".join(s for s in prepared if s).encode("utf-32-le"), dtype=np.uint32
    )
    starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
    owner = np.repeat(np.arange(len(all_strings), dtype=np.int64), n_windows)
    shift = np.concatenate(([0], np.cumsum(n_windows)[:-1]))
    win_starts = np.repeat(starts - shift, n_windows) + np.arange(total, dtype=np.int64)

    # Map code points to a compact corpus alphabet so each window packs
    # into one int64 (base-|alphabet| number). One combined owner+window
    # key then deduplicates windows per record in a single unique pass.
    alphabet, char_ids = np.unique(codes, return_inverse=True)
    base = max(len(alphabet), 1)
    window_space = base**q  # python int — never overflows
    if window_space < 2**61 and len(all_strings) * window_space < 2**62:
        win_vals = np.zeros(total, dtype=np.int64)
        for i in range(q):
            win_vals *= base
            win_vals += char_ids[win_starts + i]
        keys = np.unique(owner * window_space + win_vals)
        owner_u = keys // window_space
        vocab, ids_u = np.unique(keys % window_space, return_inverse=True)
        return _stats_from_flat(
            owner_u, ids_u.astype(np.int64), len(all_strings), len(vocab),
            none, ua, ub, deduped=True,
        )
    # enormous alphabet/q: fall back to byte-identity over window rows
    windows = np.ascontiguousarray(codes[win_starts[:, None] + np.arange(q, dtype=np.int64)])
    as_void = windows.view(np.dtype((np.void, 4 * q))).ravel()
    unique_windows, ids = np.unique(as_void, return_inverse=True)
    return _stats_from_flat(
        owner, ids.astype(np.int64), len(all_strings), len(unique_windows), none, ua, ub
    )


def token_pair_stats(sets_a: Sequence, sets_b: Sequence) -> TokenPairStats:
    """Per-pair convenience wrapper: ``sets_a[i]``/``sets_b[i]`` form pair i."""
    if len(sets_a) != len(sets_b):
        raise ValueError("sets_a and sets_b must be aligned per pair")
    idx = _pair_positions(len(sets_a))
    return token_pair_stats_indexed(sets_a, idx, sets_b, idx)


def _empty_aware(stats: TokenPairStats, compute) -> np.ndarray:
    """Shared missing/empty handling: NaN, both-empty → 1, one-empty → 0."""
    sa = stats.size_a.astype(np.float64)
    sb = stats.size_b.astype(np.float64)
    inter = stats.intersection.astype(np.float64)
    out = np.zeros(len(stats), dtype=np.float64)
    both_present = (stats.size_a > 0) & (stats.size_b > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.copyto(out, compute(inter, sa, sb), where=both_present)
    out[(stats.size_a == 0) & (stats.size_b == 0)] = 1.0
    out[stats.missing] = _NAN
    return out


def jaccard_from_stats(stats: TokenPairStats) -> np.ndarray:
    """Batch Jaccard ``|A∩B| / |A∪B|`` from shared stats."""
    return _empty_aware(stats, lambda i, sa, sb: i / (sa + sb - i))


def cosine_from_stats(stats: TokenPairStats) -> np.ndarray:
    """Batch set (Ochiai) cosine ``|A∩B| / sqrt(|A|·|B|)``."""
    return _empty_aware(stats, lambda i, sa, sb: i / np.sqrt(sa * sb))


def dice_from_stats(stats: TokenPairStats) -> np.ndarray:
    """Batch Dice coefficient ``2·|A∩B| / (|A| + |B|)``."""
    return _empty_aware(stats, lambda i, sa, sb: 2.0 * i / (sa + sb))


def overlap_from_stats(stats: TokenPairStats) -> np.ndarray:
    """Batch overlap coefficient ``|A∩B| / min(|A|, |B|)``."""
    return _empty_aware(stats, lambda i, sa, sb: i / np.minimum(sa, sb))


# ---------------------------------------------------------------------------
# TF-IDF cosine
# ---------------------------------------------------------------------------

def batch_tfidf_cosine_indexed(
    bags_a: Sequence,
    ua: np.ndarray,
    bags_b: Sequence,
    ub: np.ndarray,
    idf: dict[str, float],
    default_idf: float | None = None,
) -> np.ndarray:
    """Batch TF-IDF cosine; record-level bags plus per-pair row indices.

    Each distinct bag is weighted (``tf · idf``) and normed once; pair dot
    products come from one sorted-key merge. Matches
    :func:`repro.text.similarity.tfidf_cosine` to float rounding (summation
    order differs).
    """
    n = len(ua)
    if default_idf is None:
        default_idf = max(idf.values(), default=1.0)
    vocab: dict = {}

    def encode(bags):
        indptr = np.zeros(len(bags) + 1, dtype=np.int64)
        tok_rows: list[np.ndarray] = []
        w_rows: list[np.ndarray] = []
        for u, bag in enumerate(bags):
            counts = Counter(bag) if bag is not None else {}
            ids = np.fromiter(
                (vocab.setdefault(t, len(vocab)) for t in counts),
                dtype=np.int64,
                count=len(counts),
            )
            weights = np.fromiter(
                (tf * idf.get(t, default_idf) for t, tf in counts.items()),
                dtype=np.float64,
                count=len(counts),
            )
            order = np.argsort(ids)
            tok_rows.append(ids[order])
            w_rows.append(weights[order])
            indptr[u + 1] = indptr[u] + len(ids)
        tok = np.concatenate(tok_rows) if tok_rows else np.zeros(0, dtype=np.int64)
        w = np.concatenate(w_rows) if w_rows else np.zeros(0, dtype=np.float64)
        sizes = np.diff(indptr)
        norms = np.sqrt(np.bincount(
            np.repeat(np.arange(len(bags), dtype=np.int64), sizes),
            weights=w * w,
            minlength=max(len(bags), 1),
        )) if len(bags) else np.zeros(0)
        return indptr, tok, w, sizes, norms

    enc_a = encode(bags_a)
    enc_b = enc_a if bags_b is bags_a else encode(bags_b)
    indptr_a, tok_a, w_a, sizes_a, norms_a = enc_a
    indptr_b, tok_b, w_b, sizes_b, norms_b = enc_b

    missing = _none_flags(bags_a)[ua] | _none_flags(bags_b)[ub]
    size_a = sizes_a[ua]
    size_b = sizes_b[ub]
    out = np.zeros(n, dtype=np.float64)
    vocab_size = len(vocab)
    if vocab_size and n:
        toks_pa, owners_a = _gather_rows(indptr_a, tok_a, ua)
        toks_pb, owners_b = _gather_rows(indptr_b, tok_b, ub)
        wa, _ = _gather_rows(indptr_a, w_a, ua)
        wb, _ = _gather_rows(indptr_b, w_b, ub)
        keys_a = owners_a * vocab_size + toks_pa
        keys_b = owners_b * vocab_size + toks_pb
        if len(keys_a) and len(keys_b):
            pos = np.searchsorted(keys_b, keys_a)
            pos_clipped = np.minimum(pos, len(keys_b) - 1)
            hit = keys_b[pos_clipped] == keys_a
            dots = np.bincount(
                owners_a[hit], weights=wa[hit] * wb[pos_clipped[hit]], minlength=n
            )
            denom = norms_a[ua] * norms_b[ub]
            with np.errstate(divide="ignore", invalid="ignore"):
                np.copyto(out, dots / denom, where=denom > 0.0)
    out[(size_a == 0) & (size_b == 0)] = 1.0
    out[missing] = _NAN
    return out


def batch_tfidf_cosine(
    bags_a: Sequence,
    bags_b: Sequence,
    idf: dict[str, float],
    default_idf: float | None = None,
) -> np.ndarray:
    """Per-pair convenience wrapper over :func:`batch_tfidf_cosine_indexed`."""
    if len(bags_a) != len(bags_b):
        raise ValueError("bags_a and bags_b must be aligned per pair")
    idx = _pair_positions(len(bags_a))
    return batch_tfidf_cosine_indexed(bags_a, idx, bags_b, idx, idf, default_idf)


# ---------------------------------------------------------------------------
# Edit measures
# ---------------------------------------------------------------------------

def _codes(strings: Sequence[str], length: int) -> np.ndarray:
    """Stack equal-length strings into a (k, length) uint32 code-point matrix."""
    joined = "".join(strings)
    flat = np.frombuffer(joined.encode("utf-32-le"), dtype=np.uint32)
    return flat.reshape(len(strings), length)


class _StringValues:
    """Value-level dedup of record strings: rows → unique value ids."""

    def __init__(self, records: Sequence):
        seen: dict[str, int] = {}
        self.values: list[str] = []
        self.none = _none_flags(records)
        ids = np.empty(len(records), dtype=np.int64)
        for i, v in enumerate(records):
            if v is None:
                ids[i] = 0  # placeholder; masked by `none`
                continue
            u = seen.get(v)
            if u is None:
                u = seen[v] = len(self.values)
                self.values.append(v)
            ids[i] = u
        self.ids = ids
        self.lengths = np.fromiter(map(len, self.values), dtype=np.int64, count=len(self.values))


def _unique_combos(
    vals_a: _StringValues, ua: np.ndarray, vals_b: _StringValues, ub: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Distinct (value_a, value_b) combinations over the non-missing pairs.

    Returns (cva, cvb, inverse, missing): value-id pairs per combo, the
    combo index of every valid pair, and the per-pair missing mask.
    """
    missing = vals_a.none[ua] | vals_b.none[ub]
    va = vals_a.ids[ua[~missing]]
    vb = vals_b.ids[ub[~missing]]
    n_b = max(len(vals_b.values), 1)
    combos, inverse = np.unique(va * n_b + vb, return_inverse=True)
    return combos // n_b, combos % n_b, inverse, missing


def _scatter_combos(
    combo_values: np.ndarray, inverse: np.ndarray, missing: np.ndarray
) -> np.ndarray:
    out = np.full(len(missing), _NAN, dtype=np.float64)
    out[~missing] = combo_values[inverse]
    return out


def _length_buckets(la: np.ndarray, lb: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
    """Group indices by exact length pair (vectorized, no per-item python loop)."""
    if not len(la):
        return {}
    cap = int(lb.max()) + 1
    keys = la * cap + lb
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_keys)) + 1))
    groups = np.split(order, starts[1:])
    return {
        (int(sorted_keys[s] // cap), int(sorted_keys[s] % cap)): g
        for s, g in zip(starts, groups)
    }


def batch_levenshtein_similarity_indexed(
    records_a: Sequence, ua: np.ndarray, records_b: Sequence, ub: np.ndarray
) -> np.ndarray:
    """Batch normalized Levenshtein similarity over record-indexed pairs.

    Distinct value combinations are bucketed by (longer, shorter) length;
    each bucket runs the same prefix-minimum DP as the scalar kernel,
    vectorized across the bucket's pairs. Distances are integers, so
    results are bit-identical to
    :func:`repro.text.similarity.levenshtein_similarity`.
    """
    vals_a = _StringValues(records_a)
    vals_b = vals_a if records_b is records_a else _StringValues(records_b)
    cva, cvb, inverse, missing = _unique_combos(vals_a, ua, vals_b, ub)
    m = len(cva)
    sims = np.empty(m, dtype=np.float64)
    if m:
        strs_a = [vals_a.values[i] for i in cva]
        strs_b = [vals_b.values[i] for i in cvb]
        la = vals_a.lengths[cva]
        lb = vals_b.lengths[cvb]
        equal = np.fromiter(
            (x == y for x, y in zip(strs_a, strs_b)), dtype=bool, count=m
        )
        # orient every combo longer-first (distance is symmetric)
        swap = la < lb
        long_strs = [b if s else a for a, b, s in zip(strs_a, strs_b, swap)]
        short_strs = [a if s else b for a, b, s in zip(strs_a, strs_b, swap)]
        l_long = np.where(swap, lb, la)
        l_short = np.where(swap, la, lb)
        sims[equal] = 1.0  # covers both-empty
        sims[~equal & (l_short == 0)] = 0.0  # distance == longest → 0
        todo = ~equal & (l_short > 0)
        for (length_long, length_short), members in _length_buckets(
            l_long[todo], l_short[todo]
        ).items():
            members = np.flatnonzero(todo)[members]
            if len(members) < _MIN_VECTOR_BUCKET:
                for u in members:
                    sims[u] = 1.0 - levenshtein_distance(long_strs[u], short_strs[u]) / length_long
                continue
            A = _codes([long_strs[u] for u in members], length_long)
            B = _codes([short_strs[u] for u in members], length_short)
            sims[members] = 1.0 - _bucket_levenshtein(A, B) / length_long
    return _scatter_combos(sims, inverse, missing)


def batch_levenshtein_similarity(strings_a: Sequence, strings_b: Sequence) -> np.ndarray:
    """Per-pair wrapper over :func:`batch_levenshtein_similarity_indexed`."""
    if len(strings_a) != len(strings_b):
        raise ValueError("strings_a and strings_b must be aligned per pair")
    idx = _pair_positions(len(strings_a))
    return batch_levenshtein_similarity_indexed(strings_a, idx, strings_b, idx)


def _bucket_levenshtein(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Levenshtein distances for a (k, la) × (k, lb) bucket, la ≥ lb.

    The scalar kernel's prefix-minimum recurrence, run over all k pairs at
    once: each of the la steps does O(k·lb) numpy work.
    """
    k, la = A.shape
    lb = B.shape[1]
    offsets = np.arange(lb + 1, dtype=np.float64)
    prev = np.tile(offsets, (k, 1))
    row = np.empty_like(prev)
    for i in range(la):
        cost = (B != A[:, i : i + 1]).astype(np.float64)
        row[:, 0] = i + 1
        row[:, 1:] = np.minimum(prev[:, 1:] + 1.0, prev[:, :-1] + cost)
        row -= offsets
        np.minimum.accumulate(row, axis=1, out=row)
        row += offsets
        prev, row = row, prev
    return prev[:, lb]


def batch_jaro_winkler_indexed(
    records_a: Sequence,
    ua: np.ndarray,
    records_b: Sequence,
    ub: np.ndarray,
    *,
    prefix_weight: float = 0.1,
    max_prefix: int = 4,
) -> np.ndarray:
    """Batch Jaro–Winkler over record-indexed pairs.

    Same dedup/short-circuit/bucket scheme as the Levenshtein kernel; the
    greedy match loop runs one character position at a time across the
    whole bucket, with the transposition count recovered from the match
    masks in one pass. Bit-identical to the scalar kernel.
    """
    vals_a = _StringValues(records_a)
    vals_b = vals_a if records_b is records_a else _StringValues(records_b)
    cva, cvb, inverse, missing = _unique_combos(vals_a, ua, vals_b, ub)
    m = len(cva)
    sims = np.empty(m, dtype=np.float64)
    if m:
        strs_a = [vals_a.values[i] for i in cva]
        strs_b = [vals_b.values[i] for i in cvb]
        la = vals_a.lengths[cva]
        lb = vals_b.lengths[cvb]
        equal = np.fromiter(
            (x == y for x, y in zip(strs_a, strs_b)), dtype=bool, count=m
        )
        sims[equal] = 1.0
        sims[~equal & ((la == 0) | (lb == 0))] = 0.0
        todo = ~equal & (la > 0) & (lb > 0)
        for (length_a, length_b), members in _length_buckets(la[todo], lb[todo]).items():
            members = np.flatnonzero(todo)[members]
            if len(members) < _MIN_VECTOR_BUCKET:
                for u in members:
                    sims[u] = jaro_winkler(
                        strs_a[u], strs_b[u], prefix_weight=prefix_weight, max_prefix=max_prefix
                    )
                continue
            A = _codes([strs_a[u] for u in members], length_a)
            B = _codes([strs_b[u] for u in members], length_b)
            base = _bucket_jaro(A, B)
            pmax = min(max_prefix, length_a, length_b)
            if pmax > 0:
                lead = np.cumprod(A[:, :pmax] == B[:, :pmax], axis=1)
                prefix = lead.sum(axis=1).astype(np.float64)
            else:
                prefix = np.zeros(len(members), dtype=np.float64)
            sims[members] = base + prefix * prefix_weight * (1.0 - base)
    return _scatter_combos(sims, inverse, missing)


def batch_jaro_winkler(
    strings_a: Sequence,
    strings_b: Sequence,
    *,
    prefix_weight: float = 0.1,
    max_prefix: int = 4,
) -> np.ndarray:
    """Per-pair wrapper over :func:`batch_jaro_winkler_indexed`."""
    if len(strings_a) != len(strings_b):
        raise ValueError("strings_a and strings_b must be aligned per pair")
    idx = _pair_positions(len(strings_a))
    return batch_jaro_winkler_indexed(
        strings_a, idx, strings_b, idx, prefix_weight=prefix_weight, max_prefix=max_prefix
    )


def _bucket_jaro(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Jaro similarities for a (k, la) × (k, lb) bucket (no empty strings)."""
    k, la = A.shape
    lb = B.shape[1]
    window = max(la, lb) // 2 - 1
    if window < 0:
        window = 0
    matched_a = np.zeros((k, la), dtype=bool)
    matched_b = np.zeros((k, lb), dtype=bool)
    for i in range(la):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        if lo >= hi:
            continue
        # the scalar kernel's greedy rule: first not-yet-matched position of
        # b inside the window whose character equals a[i]
        cand = (B[:, lo:hi] == A[:, i : i + 1]) & ~matched_b[:, lo:hi]
        hit = cand.any(axis=1)
        if not hit.any():
            continue
        first = cand.argmax(axis=1) + lo
        rows = np.flatnonzero(hit)
        matched_b[rows, first[rows]] = True
        matched_a[rows, i] = True
    m = matched_a.sum(axis=1).astype(np.float64)
    # transpositions: matched characters of each side, in order, compared
    # elementwise (per pair both sides have the same match count)
    ra, ca = np.nonzero(matched_a)
    rb, cb = np.nonzero(matched_b)
    mismatch = (A[ra, ca] != B[rb, cb]).astype(np.float64)
    trans = np.floor(np.bincount(ra, weights=mismatch, minlength=k) / 2.0)
    out = np.zeros(k, dtype=np.float64)
    nz = m > 0
    mm, tt = m[nz], trans[nz]
    out[nz] = (mm / la + mm / lb + (mm - tt) / mm) / 3.0
    return out


# ---------------------------------------------------------------------------
# Monge–Elkan (hybrid)
# ---------------------------------------------------------------------------

def batch_monge_elkan_jw_indexed(
    records_a: Sequence,
    ua: np.ndarray,
    records_b: Sequence,
    ub: np.ndarray,
) -> np.ndarray | None:
    """Batch symmetric Monge–Elkan with Jaro–Winkler inner similarity.

    Matches ``monge_elkan(a, b, inner=jaro_winkler, symmetric=True)`` to
    float rounding. The inner similarity is evaluated once per *distinct*
    token pair (via the batch Jaro–Winkler kernel); per-candidate-pair
    aggregation runs as dense ``(k, |A|, |B|)`` max/mean reductions, with
    pairs bucketed by token-count shape. Returns ``None`` (caller should
    fall back) if the expansion exceeds the cell budget.
    """
    n = len(ua)
    vocab: dict = {}

    def encode(records):
        indptr = np.zeros(len(records) + 1, dtype=np.int64)
        rows: list[np.ndarray] = []
        for u, tokens in enumerate(records):
            ids = (
                np.fromiter(
                    (vocab.setdefault(t, len(vocab)) for t in tokens),
                    dtype=np.int64,
                    count=len(tokens),
                )
                if tokens
                else np.zeros(0, dtype=np.int64)
            )
            rows.append(ids)  # token order preserved — aggregation order matters
            indptr[u + 1] = indptr[u] + len(ids)
        tok = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
        return indptr, tok

    enc_a = encode(records_a)
    enc_b = enc_a if records_b is records_a else encode(records_b)
    indptr_a, tok_a = enc_a
    indptr_b, tok_b = enc_b

    la = np.diff(indptr_a)[ua]
    lb = np.diff(indptr_b)[ub]
    missing = _none_flags(records_a)[ua] | _none_flags(records_b)[ub]
    valid = ~missing & (la > 0) & (lb > 0)
    if int((la[valid] * lb[valid]).sum()) > _MONGE_ELKAN_CELL_BUDGET:
        return None

    out = np.zeros(n, dtype=np.float64)
    out[(la == 0) & (lb == 0) & ~missing] = 1.0
    out[missing] = _NAN

    vocab_size = max(len(vocab), 1)
    valid_idx = np.flatnonzero(valid)
    if not len(valid_idx):
        return out

    # Bucket valid pairs by (|A|, |B|) so each bucket is a dense
    # (k, |A|, |B|) block, processed in row chunks to bound the transient
    # key/sim intermediates. First pass collects every token-id pair needed.
    buckets = _length_buckets(la[valid_idx], lb[valid_idx])
    bucket_members = []
    for (ka, kb), members in buckets.items():
        rows = valid_idx[members]
        bucket_members.append(((ka, kb), rows, indptr_a[ua[rows]], indptr_b[ub[rows]]))

    def chunked_keys(ka, kb, starts_a, starts_b):
        # token-id matrices are re-gathered per chunk (never retained), so
        # the transient (chunk, ka, kb) intermediates stay within the cap
        chunk = max(1, _MONGE_ELKAN_CHUNK_CELLS // (ka * kb))
        for s in range(0, len(starts_a), chunk):
            A = tok_a[starts_a[s : s + chunk, None] + np.arange(ka, dtype=np.int64)]
            B = tok_b[starts_b[s : s + chunk, None] + np.arange(kb, dtype=np.int64)]
            yield s, s + chunk, A[:, :, None] * vocab_size + B[:, None, :]

    bucket_keys = [
        np.unique(keys)
        for (ka, kb), _rows, starts_a, starts_b in bucket_members
        for _s, _e, keys in chunked_keys(ka, kb, starts_a, starts_b)
    ]
    unique_keys = np.unique(np.concatenate(bucket_keys))
    tokens = list(vocab)
    inner_a = unique_keys // vocab_size
    inner_b = unique_keys % vocab_size
    jw_table = batch_jaro_winkler_indexed(tokens, inner_a, tokens, inner_b)

    for (ka, kb), rows, starts_a, starts_b in bucket_members:
        for s, e, keys in chunked_keys(ka, kb, starts_a, starts_b):
            sims = jw_table[np.searchsorted(unique_keys, keys)]
            forward = sims.max(axis=2).mean(axis=1)
            backward = sims.max(axis=1).mean(axis=1)
            out[rows[s:e]] = 0.5 * (forward + backward)
    return out


def batch_monge_elkan_jw(bags_a: Sequence, bags_b: Sequence) -> np.ndarray | None:
    """Per-pair wrapper over :func:`batch_monge_elkan_jw_indexed`."""
    if len(bags_a) != len(bags_b):
        raise ValueError("bags_a and bags_b must be aligned per pair")
    idx = _pair_positions(len(bags_a))
    return batch_monge_elkan_jw_indexed(bags_a, idx, bags_b, idx)
