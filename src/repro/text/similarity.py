"""Similarity functions over strings, token bags, and numbers.

This is the function zoo applied by :mod:`repro.features` during automatic
feature generation — the same families Magellan [28] uses: token-based
(Jaccard, cosine, Dice, overlap, TF-IDF), edit-based (Levenshtein, Jaro,
Jaro–Winkler, alignment scores), hybrid (Monge–Elkan), exact match, and
numeric similarities.

Conventions
-----------
* All similarities are in ``[0, 1]`` where defined, with 1 meaning identical.
* A missing input (``None`` or, for token measures, an empty token bag from a
  missing value) yields ``nan``; the feature generator imputes these later.
* Two empty-but-present strings are identical, so their similarity is 1.

The edit-distance inner loops are vectorized with numpy using the standard
prefix-minimum trick, so featurizing tens of thousands of candidate pairs
stays fast without any C extension.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "jaccard",
    "cosine",
    "dice",
    "overlap_coefficient",
    "build_idf",
    "tfidf_cosine",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "monge_elkan",
    "needleman_wunsch",
    "smith_waterman",
    "exact_match",
    "numeric_absolute_similarity",
    "numeric_relative_similarity",
]

_NAN = float("nan")


# ---------------------------------------------------------------------------
# Token-based measures (set / bag semantics)
# ---------------------------------------------------------------------------

def _token_sets(a: Iterable[str] | None, b: Iterable[str] | None) -> tuple[set, set] | None:
    """Normalize two token inputs to sets; ``None`` signals a missing value.

    Inputs that are already ``set``/``frozenset`` are used as-is (callers that
    featurize large candidate sets pre-tokenize records into sets once).
    """
    if a is None or b is None:
        return None
    sa = a if isinstance(a, (set, frozenset)) else set(a)
    sb = b if isinstance(b, (set, frozenset)) else set(b)
    return sa, sb


def jaccard(a: Iterable[str] | None, b: Iterable[str] | None) -> float:
    """Jaccard set similarity ``|A∩B| / |A∪B|``.

    >>> jaccard({"deep", "learning"}, {"deep", "nets"})
    0.3333333333333333
    """
    sets = _token_sets(a, b)
    if sets is None:
        return _NAN
    sa, sb = sets
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union


def cosine(a: Iterable[str] | None, b: Iterable[str] | None) -> float:
    """Set-based (Ochiai) cosine similarity ``|A∩B| / sqrt(|A|·|B|)``."""
    sets = _token_sets(a, b)
    if sets is None:
        return _NAN
    sa, sb = sets
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / math.sqrt(len(sa) * len(sb))


def dice(a: Iterable[str] | None, b: Iterable[str] | None) -> float:
    """Dice coefficient ``2·|A∩B| / (|A| + |B|)``."""
    sets = _token_sets(a, b)
    if sets is None:
        return _NAN
    sa, sb = sets
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return 2.0 * len(sa & sb) / (len(sa) + len(sb))


def overlap_coefficient(a: Iterable[str] | None, b: Iterable[str] | None) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient ``|A∩B| / min(|A|, |B|)``."""
    sets = _token_sets(a, b)
    if sets is None:
        return _NAN
    sa, sb = sets
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def build_idf(corpus: Iterable[Iterable[str]]) -> dict[str, float]:
    """Smoothed inverse document frequencies for :func:`tfidf_cosine`.

    ``idf(t) = ln((1 + N) / (1 + df(t))) + 1`` — every token gets a strictly
    positive weight, and unseen tokens at query time fall back to the maximum
    possible idf.
    """
    df: Counter[str] = Counter()
    n_docs = 0
    for doc in corpus:
        n_docs += 1
        df.update(set(doc))
    return {tok: math.log((1 + n_docs) / (1 + d)) + 1.0 for tok, d in df.items()}


def tfidf_cosine(
    a: Iterable[str] | None,
    b: Iterable[str] | None,
    idf: dict[str, float],
    *,
    default_idf: float | None = None,
) -> float:
    """TF-IDF weighted cosine similarity between two token bags.

    Tokens absent from ``idf`` get ``default_idf`` (the maximum idf in the
    table by default, i.e. they are treated as maximally distinctive).
    """
    if a is None or b is None:
        return _NAN
    ca, cb = Counter(a), Counter(b)
    if not ca and not cb:
        return 1.0
    if not ca or not cb:
        return 0.0
    if default_idf is None:
        default_idf = max(idf.values(), default=1.0)

    def weight(tok: str, tf: int) -> float:
        return tf * idf.get(tok, default_idf)

    norm_a = math.sqrt(sum(weight(t, c) ** 2 for t, c in ca.items()))
    norm_b = math.sqrt(sum(weight(t, c) ** 2 for t, c in cb.items()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    dot = sum(weight(t, ca[t]) * weight(t, cb[t]) for t in ca.keys() & cb.keys())
    return dot / (norm_a * norm_b)


# ---------------------------------------------------------------------------
# Edit-based measures (raw strings)
# ---------------------------------------------------------------------------

def levenshtein_distance(a: str | None, b: str | None) -> float:
    """Unit-cost Levenshtein (edit) distance.

    Vectorized row-by-row: the in-row dependency ``row[j] = min(row[j],
    row[j-1] + 1)`` is resolved with ``minimum.accumulate`` on ``d[k] - k``,
    giving O(len(a)) numpy operations instead of a Python inner loop.
    """
    if a is None or b is None:
        return _NAN
    a, b = str(a), str(b)
    if a == b:
        return 0.0
    if not a:
        return float(len(b))
    if not b:
        return float(len(a))
    if len(a) < len(b):  # iterate over the shorter string's rows
        a, b = b, a
    tb = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    n = len(b)
    offsets = np.arange(n + 1, dtype=np.float64)
    prev = offsets.copy()
    row = np.empty(n + 1, dtype=np.float64)
    for i, ch in enumerate(a):
        cost = (tb != ord(ch)).astype(np.float64)
        row[0] = i + 1
        # candidates ignoring the left-neighbor dependency:
        row[1:] = np.minimum(prev[1:] + 1.0, prev[:-1] + cost)
        # resolve row[j] = min_k<=j (row[k] + (j - k)) via prefix minimum
        row[:] = np.minimum.accumulate(row - offsets) + offsets
        prev, row = row, prev
    return float(prev[n])


def levenshtein_similarity(a: str | None, b: str | None) -> float:
    """Levenshtein distance normalized to a similarity: ``1 - d / max_len``."""
    if a is None or b is None:
        return _NAN
    a, b = str(a), str(b)
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro(a: str | None, b: str | None) -> float:
    """Jaro similarity (match window ``max_len // 2 - 1``)."""
    if a is None or b is None:
        return _NAN
    a, b = str(a), str(b)
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    window = max(la, lb) // 2 - 1
    if window < 0:
        window = 0
    match_a = [False] * la
    match_b = [False] * lb
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == ch:
                match_a[i] = True
                match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    # transpositions: compare matched characters in order
    transpositions = 0
    j = 0
    for i in range(la):
        if match_a[i]:
            while not match_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / la + m / lb + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str | None, b: str | None, *, prefix_weight: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro–Winkler: Jaro boosted by the length of the common prefix."""
    base = jaro(a, b)
    if math.isnan(base):
        return base
    prefix = 0
    for ca, cb in zip(str(a), str(b)):
        if ca != cb or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def needleman_wunsch(a: str | None, b: str | None) -> float:
    """Normalized global alignment similarity.

    Scoring: match +1, mismatch 0, gap 0 — i.e. the longest-common-subsequence
    score — normalized by ``max(len(a), len(b))``. Bounded in ``[0, 1]`` and
    order-sensitive, which is what the feature generator needs.
    """
    if a is None or b is None:
        return _NAN
    a, b = str(a), str(b)
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if len(a) < len(b):
        a, b = b, a
    tb = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    n = len(b)
    prev = np.zeros(n + 1, dtype=np.float64)
    row = np.zeros(n + 1, dtype=np.float64)
    for ch in a:
        match = (tb == ord(ch)).astype(np.float64)
        row[1:] = np.maximum(prev[:-1] + match, prev[1:])
        np.maximum.accumulate(row, out=row)
        prev, row = row, prev
        row[:] = 0.0
    return float(prev[n]) / max(len(a), len(b))


def smith_waterman(a: str | None, b: str | None) -> float:
    """Normalized local alignment similarity.

    Scoring: match +1, mismatch −1, gap −1 (classic Smith–Waterman), with the
    best local score normalized by ``min(len(a), len(b))`` so a perfect
    substring match scores 1.
    """
    if a is None or b is None:
        return _NAN
    a, b = str(a), str(b)
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if len(a) < len(b):
        a, b = b, a
    tb = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    n = len(b)
    offsets = np.arange(n + 1, dtype=np.float64)
    prev = np.zeros(n + 1, dtype=np.float64)
    row = np.zeros(n + 1, dtype=np.float64)
    best = 0.0
    for ch in a:
        score = np.where(tb == ord(ch), 1.0, -1.0)
        row[1:] = np.maximum(prev[:-1] + score, prev[1:] - 1.0)
        # left-neighbor gap dependency: row[j] = max(row[j], row[j-1] - 1, 0)
        np.maximum(row, 0.0, out=row)
        row[:] = np.maximum.accumulate(row + offsets) - offsets
        np.maximum(row, 0.0, out=row)
        best = max(best, float(row.max()))
        prev, row = row, prev
        row[:] = 0.0
    return best / min(len(a), len(b))


# ---------------------------------------------------------------------------
# Hybrid measures
# ---------------------------------------------------------------------------

def monge_elkan(
    a_tokens: Sequence[str] | None,
    b_tokens: Sequence[str] | None,
    *,
    inner: Callable[[str, str], float] = jaro_winkler,
    symmetric: bool = True,
) -> float:
    """Monge–Elkan: average best inner-similarity per token.

    ``me(A, B) = mean_{t∈A} max_{s∈B} inner(t, s)``. The raw measure is
    asymmetric; with ``symmetric=True`` (default) the two directions are
    averaged, which is better behaved as a feature.
    """
    if a_tokens is None or b_tokens is None:
        return _NAN
    a_list, b_list = list(a_tokens), list(b_tokens)
    if not a_list and not b_list:
        return 1.0
    if not a_list or not b_list:
        return 0.0

    def one_way(src: list[str], dst: list[str]) -> float:
        return sum(max(inner(t, s) for s in dst) for t in src) / len(src)

    forward = one_way(a_list, b_list)
    if not symmetric:
        return forward
    return 0.5 * (forward + one_way(b_list, a_list))


# ---------------------------------------------------------------------------
# Exact / numeric measures
# ---------------------------------------------------------------------------

def exact_match(a: object | None, b: object | None) -> float:
    """1.0 if string representations are equal, else 0.0 (nan when missing)."""
    if a is None or b is None:
        return _NAN
    return 1.0 if str(a) == str(b) else 0.0


def numeric_absolute_similarity(a: float | None, b: float | None, *, scale: float = 1.0) -> float:
    """Exponentially decayed absolute difference ``exp(-|a-b| / scale)``.

    ``scale`` sets the difference at which similarity drops to ``1/e``; the
    feature generator passes a per-attribute scale (the attribute's value
    spread) so the feature is meaningful across units.
    """
    if a is None or b is None:
        return _NAN
    try:
        fa, fb = float(a), float(b)
    except (TypeError, ValueError):
        return _NAN
    if math.isnan(fa) or math.isnan(fb):
        return _NAN
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return math.exp(-abs(fa - fb) / scale)


def numeric_relative_similarity(a: float | None, b: float | None) -> float:
    """Relative numeric similarity ``1 - |a-b| / max(|a|, |b|)`` (floored at 0)."""
    if a is None or b is None:
        return _NAN
    try:
        fa, fb = float(a), float(b)
    except (TypeError, ValueError):
        return _NAN
    if math.isnan(fa) or math.isnan(fb):
        return _NAN
    denom = max(abs(fa), abs(fb))
    if denom == 0.0:
        return 1.0
    return max(0.0, 1.0 - abs(fa - fb) / denom)
