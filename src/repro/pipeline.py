"""High-level end-to-end pipeline.

:class:`ERPipeline` wires blocking, automatic feature generation, and the
ZeroER matcher into one object for the common case: two tables in,
scored/labeled pairs out. Record-linkage transitivity (the F/Fl/Fr coupling
of §5) is handled automatically when enabled: within-table candidate sets
are derived from cross-candidate co-occurrence, exactly as the benchmark
harness does.

For research workflows that need to intercept intermediate artifacts, use
the pieces directly (see ``examples/custom_data.py``); the pipeline is the
convenience path.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from repro.blocking.base import Blocker
from repro.blocking.overlap import TokenOverlapBlocker, validate_blocking_engine
from repro.core.config import ZeroERConfig
from repro.core.linkage import ZeroERLinkage
from repro.core.model import ZeroER
from repro.data.table import Table
from repro.eval.harness import co_candidate_pairs
from repro.features.generator import FeatureGenerator

__all__ = ["ERPipeline", "ERResult"]


@dataclass
class ERResult:
    """Everything a pipeline run produces."""

    pairs: list[tuple]
    scores: np.ndarray
    labels: np.ndarray
    feature_names: list[str]
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def matches(self) -> list[tuple]:
        """The predicted matching pairs."""
        return [pair for pair, label in zip(self.pairs, self.labels) if label == 1]

    def top_matches(self, k: int = 10) -> list[tuple]:
        """The ``k`` most confident predicted matches with their scores."""
        order = np.argsort(-self.scores)
        out = []
        for i in order:
            if self.labels[int(i)] == 1:
                out.append((self.pairs[int(i)], float(self.scores[int(i)])))
            if len(out) >= k:
                break
        return out


class ERPipeline:
    """Block → featurize → match, in one call.

    Parameters
    ----------
    blocker:
        Any :class:`~repro.blocking.base.Blocker`; defaults to token overlap
        on ``blocking_attribute``.
    blocking_attribute:
        Attribute for the default blocker (required when ``blocker`` is not
        given).
    config:
        ZeroER hyperparameters (paper defaults when omitted).
    co_candidate_cap:
        Per-anchor cap when deriving within-table candidate sets for the
        linkage transitivity coupling.
    feature_engine:
        Featurization engine forwarded to
        :meth:`~repro.features.generator.FeatureGenerator.transform`:
        ``"batch"`` (default, columnar kernels) or ``"per-pair"`` (the
        reference scoring loop).
    blocking_engine:
        Blocking engine for token-overlap blockers: ``"sparse"`` (columnar
        CSR kernel) or ``"per-record"`` (the reference loop). ``None``
        (default) keeps the blocker's own setting — ``"sparse"`` for the
        default blocker. Setting it alongside a non-token-overlap
        ``blocker`` raises ``ValueError``.
    """

    def __init__(
        self,
        blocker: Blocker | None = None,
        blocking_attribute: str | None = None,
        config: ZeroERConfig | None = None,
        co_candidate_cap: int = 10,
        feature_engine: str = "batch",
        blocking_engine: str | None = None,
    ):
        if blocker is None:
            if blocking_attribute is None:
                raise ValueError("provide either a blocker or a blocking_attribute")
            blocker = TokenOverlapBlocker(
                blocking_attribute,
                min_overlap=1,
                top_k=60,
                engine=blocking_engine if blocking_engine is not None else "sparse",
            )
        elif blocking_engine is not None:
            validate_blocking_engine(blocking_engine)
            if not isinstance(blocker, TokenOverlapBlocker):
                raise ValueError(
                    "blocking_engine applies to TokenOverlapBlocker (and subclasses); "
                    f"got {type(blocker).__name__}"
                )
            if blocker.engine != blocking_engine:
                # leave the caller's blocker untouched
                blocker = copy.copy(blocker)
                blocker.engine = blocking_engine
        if feature_engine not in ("batch", "per-pair"):
            raise ValueError(
                f"feature_engine must be 'batch' or 'per-pair', got {feature_engine!r}"
            )
        self.blocker = blocker
        self.config = config if config is not None else ZeroERConfig()
        self.co_candidate_cap = int(co_candidate_cap)
        self.feature_engine = feature_engine
        self.generator_: FeatureGenerator | None = None
        self.model_: ZeroER | ZeroERLinkage | None = None
        self.left_: Table | None = None
        self.right_: Table | None = None
        self.result_: ERResult | None = None

    def run(self, left: Table, right: Table | None = None) -> ERResult:
        """Resolve entities between two tables (or within one, dedup mode)."""
        timings: dict[str, float] = {}
        # Clear all fit state up front: a run that raises (or finds no
        # candidates) must not leave freeze() pairing a previous run's model
        # with this run's tables.
        self.generator_ = None
        self.model_ = None
        self.result_ = None
        self.left_, self.right_ = left, right

        started = time.perf_counter()
        pairs = self.blocker.block(left, right)
        timings["blocking"] = time.perf_counter() - started
        if not pairs:
            self.result_ = ERResult([], np.zeros(0), np.zeros(0, dtype=np.int64), [], timings)
            return self.result_

        started = time.perf_counter()
        generator = FeatureGenerator().fit(left, right)
        X = generator.transform(left, right, pairs, engine=self.feature_engine)
        timings["features"] = time.perf_counter() - started
        self.generator_ = generator

        started = time.perf_counter()
        if right is not None and self.config.transitivity:
            model = self._fit_linkage(left, right, pairs, generator, X)
        else:
            model = ZeroER(self.config)
            model.fit(X, generator.feature_groups_, pairs if right is None else None)
        timings["matching"] = time.perf_counter() - started
        self.model_ = model

        self.result_ = ERResult(
            pairs=pairs,
            scores=model.match_scores_,
            labels=(model.match_scores_ > 0.5).astype(np.int64),
            feature_names=generator.feature_names_,
            seconds=timings,
        )
        return self.result_

    def freeze(self, threshold: float = 0.5):
        """Turn the completed batch run into an :class:`IncrementalResolver`.

        The fitted model and feature generator are frozen as-is; the entity
        store is seeded with every record of the run's table(s), clustered
        by the run's predicted matches; the incremental index is built with
        the pipeline blocker's retrieval parameters (requires a
        :class:`~repro.blocking.overlap.TokenOverlapBlocker`). In linkage
        mode the two tables share one store, so their record ids must be
        disjoint.
        """
        from repro.incremental.index import IncrementalTokenIndex
        from repro.incremental.resolver import IncrementalResolver
        from repro.incremental.store import EntityStore

        if self.result_ is None:
            raise RuntimeError("run() must complete before freeze()")
        if self.model_ is None or self.generator_ is None:
            raise RuntimeError(
                "cannot freeze: the run produced no candidate pairs, so no model was fitted"
            )
        left, right = self.left_, self.right_
        if right is not None:
            shared = set(left.ids()) & set(right.ids())
            if shared:
                example = sorted(shared, key=repr)[:3]
                raise ValueError(
                    f"cannot freeze: {len(shared)} record ids appear in both tables "
                    f"(e.g. {example}); the shared entity store needs disjoint ids — "
                    "prefix each side before running"
                )
        index = IncrementalTokenIndex.from_blocker(self.blocker, id_attr=left.id_attr)
        store = EntityStore(id_attr=left.id_attr)
        for table in (left, right) if right is not None else (left,):
            for rec in table:
                store.add(rec)
                index.add([rec])
        for pair, score in zip(self.result_.pairs, self.result_.scores):
            if score > threshold:
                store.merge(*pair)
        return IncrementalResolver(
            self.generator_,
            self.model_,
            index,
            store,
            threshold=threshold,
            engine=self.feature_engine,
        )

    def _fit_linkage(self, left, right, pairs, generator, X) -> ZeroERLinkage:
        left_pairs = co_candidate_pairs(pairs, side=0, cap=self.co_candidate_cap)
        right_pairs = co_candidate_pairs(pairs, side=1, cap=self.co_candidate_cap)
        engine = self.feature_engine
        X_left = (
            generator.transform(left, None, left_pairs, engine=engine) if left_pairs else None
        )
        X_right = (
            generator.transform(right, None, right_pairs, engine=engine) if right_pairs else None
        )
        model = ZeroERLinkage(self.config)
        model.fit(
            X,
            pairs,
            feature_groups=generator.feature_groups_,
            X_left=X_left,
            left_pairs=left_pairs if X_left is not None else None,
            X_right=X_right,
            right_pairs=right_pairs if X_right is not None else None,
        )
        return model
