"""Deprecated import path: the pipeline now lives in :mod:`repro.api`.

``from repro.pipeline import ERPipeline`` keeps working but emits a
``DeprecationWarning``; import from :mod:`repro` (or :mod:`repro.api`)
instead::

    from repro import ERPipeline, ERResult
"""

from __future__ import annotations

import warnings

_MOVED_TO_API = ("ERPipeline", "ERResult")

__all__ = list(_MOVED_TO_API)


def __getattr__(name: str):
    if name in _MOVED_TO_API:
        warnings.warn(
            f"repro.pipeline.{name} moved to repro.api; import it from repro "
            "(or repro.api) — this alias will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api import pipeline as _impl

        return getattr(_impl, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED_TO_API))
