"""Match-set post-processing.

ZeroER scores candidate pairs independently; downstream consumers often need
a *consistent assignment*. Two standard post-processors:

* :func:`greedy_one_to_one` — for record linkage between two deduplicated
  tables, where each record should match at most once: take pairs in
  descending score order, skipping any pair whose endpoint is already used
  (the classic greedy weighted bipartite matching, a 1/2-approximation).
* :func:`score_threshold_matches` — the plain thresholding ZeroER itself
  applies, exposed for symmetry.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["greedy_one_to_one", "score_threshold_matches"]


def score_threshold_matches(
    pairs: Sequence[tuple], scores: np.ndarray, threshold: float = 0.5
) -> list[tuple]:
    """Pairs whose posterior exceeds ``threshold`` (Equation 5 for 0.5)."""
    scores = np.asarray(scores, dtype=np.float64)
    if len(pairs) != scores.shape[0]:
        raise ValueError(f"{len(pairs)} pairs but {scores.shape[0]} scores")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    return [tuple(p) for p, s in zip(pairs, scores) if s > threshold]


def greedy_one_to_one(
    pairs: Sequence[tuple], scores: np.ndarray, threshold: float = 0.5
) -> list[tuple]:
    """Highest-score-first one-to-one assignment.

    Only pairs above ``threshold`` participate. Each left id and each right
    id appears in at most one returned pair. Ties broken deterministically
    by pair order. Returns pairs in descending score order.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if len(pairs) != scores.shape[0]:
        raise ValueError(f"{len(pairs)} pairs but {scores.shape[0]} scores")
    order = sorted(range(len(pairs)), key=lambda i: (-scores[i], i))
    used_left: set = set()
    used_right: set = set()
    out: list[tuple] = []
    for i in order:
        if scores[i] <= threshold:
            break
        left_id, right_id = pairs[i]
        if left_id in used_left or right_id in used_right:
            continue
        used_left.add(left_id)
        used_right.add(right_id)
        out.append((left_id, right_id))
    return out
