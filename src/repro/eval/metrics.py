"""Pair-level classification metrics.

The paper reports F-score throughout (§7.1, "Performance Measures"), the
right choice under heavy class imbalance where accuracy is vacuous.
"""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_counts", "precision_recall_f1", "f_score"]


def _as_binary(y, name: str) -> np.ndarray:
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    arr = arr.astype(np.float64)
    if not np.all(np.isin(arr, (0.0, 1.0))):
        raise ValueError(f"{name} must contain only 0/1 labels")
    return arr


def confusion_counts(y_true, y_pred) -> dict[str, int]:
    """True/false positive/negative counts for binary labels."""
    t = _as_binary(y_true, "y_true")
    p = _as_binary(y_pred, "y_pred")
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    return {
        "tp": int(np.sum((t == 1) & (p == 1))),
        "fp": int(np.sum((t == 0) & (p == 1))),
        "fn": int(np.sum((t == 1) & (p == 0))),
        "tn": int(np.sum((t == 0) & (p == 0))),
    }


def precision_recall_f1(y_true, y_pred) -> tuple[float, float, float]:
    """Precision, recall, and F1.

    Conventions for empty denominators: precision is 1.0 when nothing was
    predicted positive, recall is 1.0 when there are no true positives to
    find, and F1 is 0.0 when precision + recall is 0.
    """
    counts = confusion_counts(y_true, y_pred)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    precision = tp / (tp + fp) if (tp + fp) > 0 else 1.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 1.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    return precision, recall, 2.0 * precision * recall / (precision + recall)


def f_score(y_true, y_pred) -> float:
    """F1 only (the number reported in the paper's tables)."""
    return precision_recall_f1(y_true, y_pred)[2]
