"""Transitive closure over predicted matches.

The simplest post-processing use of transitivity (§5 mentions it as the
naive alternative to soft calibration): treat predicted matches as graph
edges and take connected components as entities. Provided both for the
examples and for comparing post-hoc closure against ZeroER's in-EM
calibration.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

__all__ = ["UnionFind", "connected_components", "transitive_closure"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self):
        self._parent: dict = {}
        self._size: dict = {}

    def find(self, item):
        """Representative of ``item``'s set (inserting it if unseen)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a, b) -> bool:
        """Merge the sets of ``a`` and ``b``; returns False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def groups(self) -> list[list]:
        """All sets with ≥ 1 member, each sorted, in deterministic order."""
        members = defaultdict(list)
        for item in self._parent:
            members[self.find(item)].append(item)
        return sorted(
            (sorted(group, key=repr) for group in members.values()),
            key=lambda g: repr(g[0]),
        )


def connected_components(edges: Iterable[tuple]) -> list[list]:
    """Connected components of the match graph, as sorted node lists."""
    uf = UnionFind()
    for a, b in edges:
        uf.union(a, b)
    return uf.groups()


def transitive_closure(edges: Iterable[tuple]) -> set[tuple]:
    """All within-component pairs implied by the matches.

    Every unordered pair of distinct nodes in the same component is returned
    once, in canonical (repr-sorted) order.
    """
    closure: set[tuple] = set()
    for component in connected_components(edges):
        for i in range(len(component)):
            for j in range(i + 1, len(component)):
                closure.add((component[i], component[j]))
    return closure
