"""Evaluation: pair-level metrics, match clustering, and the experiment
harness shared by examples and benchmarks."""

from repro.eval.metrics import (
    confusion_counts,
    f_score,
    precision_recall_f1,
)
from repro.eval.clustering import UnionFind, connected_components, transitive_closure
from repro.eval.matching import greedy_one_to_one, score_threshold_matches

__all__ = [
    "precision_recall_f1",
    "f_score",
    "confusion_counts",
    "UnionFind",
    "connected_components",
    "transitive_closure",
    "greedy_one_to_one",
    "score_threshold_matches",
]
