"""Shared experiment harness.

Everything the examples and benchmarks need to run a paper experiment:
per-dataset blocking recipes, cached dataset preparation (generate → block →
featurize, including the within-table candidate sets used by the
record-linkage transitivity coupling), ZeroER and baseline runners, and an
ASCII table printer for benchmark output.

Preparation results are cached per ``(name, scale, seed)`` within the
process so that running every benchmark in one pytest session featurizes
each dataset once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.blocking import TokenOverlapBlocker, UnionBlocker, candidate_statistics
from repro.core import ZeroER, ZeroERConfig, ZeroERLinkage
from repro.data import ERDataset, load_benchmark
from repro.eval.metrics import precision_recall_f1
from repro.features import FeatureGenerator
from repro.obs import span

__all__ = [
    "PreparedDataset",
    "prepare_dataset",
    "clear_prepared_cache",
    "run_zeroer",
    "zeroer_f1",
    "format_table",
    "bench_scale",
]


def bench_scale() -> str:
    """Scale used by benchmarks (``REPRO_SCALE`` env var, default small)."""
    return os.environ.get("REPRO_SCALE", "small")


# -- per-dataset blocking recipes ---------------------------------------------

#: (attribute, cross-table min_overlap, cross top_k, co-candidate cap)
_BLOCKING = {
    "rest_fz": ("name", 1, 60, 10),
    "pub_da": ("title", 2, 60, 10),
    "pub_ds": ("title", 2, 40, 24),
    "mv_ri": ("title", 1, 60, 10),
    "prod_ab": ("name", 1, 80, 10),
    "prod_ag": ("title", 1, 80, 10),
}

#: Secondary blocking attribute, unioned in to recover matches whose primary
#: attribute was too corrupted (None = primary only).
_SECONDARY = {
    "rest_fz": "phone",
    "pub_da": "authors",
    "pub_ds": "authors",
    "mv_ri": None,
    "prod_ab": None,
    "prod_ag": None,
}


def blocker_for(name: str) -> TokenOverlapBlocker | UnionBlocker:
    """The cross-table blocking recipe used by all experiments for one dataset."""
    attr, cross_ov, cross_k, _cap = _BLOCKING[name]
    primary = TokenOverlapBlocker(attr, min_overlap=cross_ov, top_k=cross_k)
    secondary_attr = _SECONDARY[name]
    if secondary_attr is None:
        return primary
    secondary = TokenOverlapBlocker(secondary_attr, min_overlap=2, top_k=20)
    return UnionBlocker([primary, secondary])


def co_candidate_pairs(
    cross_pairs: list[tuple], side: int, cap: int = 8
) -> list[tuple]:
    """Within-table candidate pairs from cross-candidate co-occurrence.

    Two right records that are both cross-candidates of the same left record
    (``side=1``) — or symmetrically two left records sharing a right
    candidate (``side=0``) — form a within-table candidate. This is exactly
    the set of closing pairs the transitivity calibrator (§5) can ever
    query, so the within-table models Fl/Fr see every triangle that
    matters. ``cap`` bounds the per-anchor fan-out (candidates are already
    ranked by blocking overlap, so the cap keeps the strongest ones).
    """
    from collections import defaultdict

    anchor = 1 - side
    grouped: dict = defaultdict(list)
    for pair in cross_pairs:
        grouped[pair[anchor]].append(pair[side])
    out: list[tuple] = []
    seen: set[tuple] = set()
    for members in grouped.values():
        members = members[:cap]
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                key = (a, b) if repr(a) <= repr(b) else (b, a)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
    return out


# -- prepared dataset ----------------------------------------------------------


@dataclass
class PreparedDataset:
    """A benchmark dataset after blocking and featurization."""

    dataset: ERDataset
    pairs: list[tuple]
    X: np.ndarray                      # raw (unnormalized) cross features
    y: np.ndarray                      # gold 0/1 labels for ``pairs``
    feature_groups: list[list[int]]
    feature_names: list[str]
    generator: FeatureGenerator
    blocking: dict
    left_pairs: list[tuple] = field(default_factory=list)
    X_left: np.ndarray | None = None
    right_pairs: list[tuple] = field(default_factory=list)
    X_right: np.ndarray | None = None
    prepare_seconds: float = 0.0

    @property
    def name(self) -> str:
        return self.dataset.name

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)


_PREPARED_CACHE: dict[tuple, PreparedDataset] = {}


def clear_prepared_cache() -> None:
    """Drop all cached prepared datasets (used by tests)."""
    _PREPARED_CACHE.clear()


def prepare_dataset(
    name: str,
    scale: str | None = None,
    seed: int = 0,
    with_within: bool = True,
) -> PreparedDataset:
    """Generate, block, and featurize one benchmark (cached per process).

    ``with_within`` also builds the within-table candidate sets + features
    needed by :class:`~repro.core.linkage.ZeroERLinkage`'s transitivity
    coupling; preparation without them is cheaper but only supports
    transitivity-free models.
    """
    scale = scale or bench_scale()
    key = (name, scale, seed, with_within)
    if key in _PREPARED_CACHE:
        return _PREPARED_CACHE[key]
    # A with-within preparation can serve a without-within request.
    full_key = (name, scale, seed, True)
    if not with_within and full_key in _PREPARED_CACHE:
        return _PREPARED_CACHE[full_key]

    with span("harness.prepare", dataset=name, scale=scale, seed=seed) as sp:
        dataset = load_benchmark(name, scale=scale, seed=seed)
        pairs = blocker_for(name).block(dataset.left, dataset.right)
        generator = FeatureGenerator().fit(dataset.left, dataset.right, dataset.attributes)
        X = generator.transform(dataset.left, dataset.right, pairs)
        y = dataset.labels_for(pairs)
        blocking = candidate_statistics(
            pairs, dataset.matches, len(dataset.left), len(dataset.right)
        )

        left_pairs: list[tuple] = []
        right_pairs: list[tuple] = []
        X_left = X_right = None
        if with_within:
            cap = _BLOCKING[name][3]
            left_pairs = co_candidate_pairs(pairs, side=0, cap=cap)
            right_pairs = co_candidate_pairs(pairs, side=1, cap=cap)
            X_left = generator.transform(dataset.left, None, left_pairs) if left_pairs else None
            X_right = (
                generator.transform(dataset.right, None, right_pairs) if right_pairs else None
            )
            if X_left is None:
                left_pairs = []
            if X_right is None:
                right_pairs = []
        sp.set(n_pairs=len(pairs))

    prepared = PreparedDataset(
        dataset=dataset,
        pairs=pairs,
        X=X,
        y=y,
        feature_groups=generator.feature_groups_,
        feature_names=generator.feature_names_,
        generator=generator,
        blocking=blocking,
        left_pairs=left_pairs,
        X_left=X_left,
        right_pairs=right_pairs,
        X_right=X_right,
        prepare_seconds=sp.seconds,
    )
    _PREPARED_CACHE[key] = prepared
    return prepared


# -- model runners ---------------------------------------------------------------


def run_zeroer(prep: PreparedDataset, config: ZeroERConfig | None = None) -> dict:
    """Fit ZeroER on a prepared dataset and return metrics.

    With ``config.transitivity`` on, the record-linkage trainer (three
    coupled models, §5) is used; otherwise the plain single model.
    """
    config = config or ZeroERConfig()
    with span(
        "harness.run_zeroer", dataset=prep.name, transitivity=config.transitivity
    ) as sp:
        if config.transitivity:
            model = ZeroERLinkage(config)
            model.fit(
                prep.X,
                prep.pairs,
                feature_groups=prep.feature_groups,
                X_left=prep.X_left,
                left_pairs=prep.left_pairs if prep.X_left is not None else None,
                X_right=prep.X_right,
                right_pairs=prep.right_pairs if prep.X_right is not None else None,
            )
        else:
            model = ZeroER(config)
            model.fit(prep.X, feature_groups=prep.feature_groups)
        labels = model.labels_
        precision, recall, f1 = precision_recall_f1(prep.y, labels)
        sp.set(f1=f1, n_iterations=model.history_.n_iterations)
    return {
        "dataset": prep.name,
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "n_pairs": prep.n_pairs,
        "n_iterations": model.history_.n_iterations,
        "converged": model.history_.converged,
        "seconds": sp.seconds,
        "scores": model.match_scores_,
        "labels": labels,
    }


def zeroer_f1(prep: PreparedDataset, config: ZeroERConfig | None = None) -> float:
    """F1 of one ZeroER fit (0.0 if EM cannot run, matching §7.4's failures)."""
    from repro.core.exceptions import ZeroERError

    try:
        return run_zeroer(prep, config)["f1"]
    except ZeroERError:
        return 0.0


# -- output formatting ---------------------------------------------------------------


def format_table(rows: list[dict], columns: list[str], title: str | None = None) -> str:
    """Fixed-width ASCII table (benchmarks print these next to paper tables)."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(columns[j]), max((len(r[j]) for r in table), default=0))
        for j in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(columns[j].ljust(widths[j]) for j in range(len(columns)))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in table:
        lines.append(" | ".join(r[j].ljust(widths[j]) for j in range(len(columns))))
    return "\n".join(lines)
