"""The "GMM" baseline: plain two-component full-covariance Gaussian mixture.

This is what the paper compares ZeroER against to show that an off-the-shelf
GMM is not enough (§7.2): no feature grouping, no adaptive regularization,
no shared correlation, no transitivity — just EM with the uniform diagonal
floor (``reg_covar``) that sklearn applies. Random-responsibility
initialization with several restarts, best likelihood wins.

Internally this reuses the same EM engine as ZeroER with the corresponding
ablation configuration, so the baseline differs from ZeroER in exactly the
ways the paper says it does.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ZeroERConfig
from repro.core.em import EMRunner
from repro.features.normalize import MinMaxNormalizer, impute_nan
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_feature_matrix

__all__ = ["GaussianMixtureMatcher"]


class GaussianMixtureMatcher:
    """Two-component GMM matcher with sklearn-style Tikhonov floor.

    Parameters
    ----------
    reg_covar:
        Constant added to every covariance diagonal (sklearn's default-style
        floor; the paper's §3.3 discussion of uniform regularization).
    n_init:
        Random restarts; the run with the best final likelihood wins.
    """

    def __init__(
        self,
        reg_covar: float = 1e-6,
        n_init: int = 3,
        max_iter: int = 200,
        tol: float = 1e-5,
        random_state=None,
    ):
        if reg_covar < 0.0:
            raise ValueError(f"reg_covar must be non-negative, got {reg_covar}")
        self.reg_covar = float(reg_covar)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state
        self.match_scores_: np.ndarray | None = None

    def fit_predict(self, X) -> np.ndarray:
        """Cluster the similarity vectors; returns 0/1 match labels.

        The component with the larger mean-vector magnitude is labeled the
        match component (similarity vectors of matches are large).
        """
        X = check_feature_matrix(X, allow_nan=True)
        X = impute_nan(MinMaxNormalizer().fit_transform(X))
        rng = ensure_rng(self.random_state)
        config = ZeroERConfig(
            covariance="full",
            regularization="tikhonov",
            kappa=self.reg_covar,
            shared_correlation=False,
            transitivity=False,
            max_iter=self.max_iter,
            tol=self.tol,
        )
        best_runner: EMRunner | None = None
        best_ll = -np.inf
        for _ in range(self.n_init):
            runner = EMRunner(X, None, config)
            # random soft responsibilities (plain GMM initialization)
            runner.gamma = rng.uniform(0.05, 0.95, size=X.shape[0])
            runner.run()
            ll = runner.history.log_likelihoods[-1]
            if ll > best_ll:
                best_ll, best_runner = ll, runner
        gamma = best_runner.gamma
        # orient components: matches are the high-similarity cluster
        mean_match = best_runner.params.match.mean
        mean_unmatch = best_runner.params.unmatch.mean
        if np.linalg.norm(mean_unmatch) > np.linalg.norm(mean_match):
            gamma = 1.0 - gamma
        self.match_scores_ = gamma
        return (gamma > 0.5).astype(np.int64)
