"""Baseline matchers, implemented from scratch on numpy/scipy.

Supervised (the paper's §7.1 setup: 50/50 split, match oversampling, 5-fold
CV tuning): logistic regression, random forest, multi-layer perceptron.

Unsupervised: K-Means (standard "SK" and class-weighted "RL" variants),
full-covariance Gaussian mixture with a Tikhonov floor, and the
Fellegi–Sunter ECM classifier.
"""

from repro.baselines.logistic_regression import LogisticRegression
from repro.baselines.tree import DecisionTreeClassifier
from repro.baselines.random_forest import RandomForestClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.kmeans import KMeansMatcher
from repro.baselines.gmm import GaussianMixtureMatcher
from repro.baselines.ecm import ECMClassifier
from repro.baselines.model_selection import (
    grid_search_cv,
    kfold_indices,
    oversample_minority,
    train_test_split,
)

__all__ = [
    "LogisticRegression",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "MLPClassifier",
    "KMeansMatcher",
    "GaussianMixtureMatcher",
    "ECMClassifier",
    "train_test_split",
    "kfold_indices",
    "grid_search_cv",
    "oversample_minority",
]
