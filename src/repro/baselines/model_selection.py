"""Training protocol utilities for the supervised baselines.

Implements the paper's §7.1 setup pieces: random train/test splitting,
k-fold cross-validation for hyperparameter tuning, and oversampling of the
match class ("the match entries in the training set are over-sampled as is
typically done ... in the presence of class imbalance").
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.eval.metrics import f_score
from repro.utils.rng import ensure_rng

__all__ = ["train_test_split", "kfold_indices", "grid_search_cv", "oversample_minority"]


def train_test_split(
    n: int,
    test_fraction: float = 0.5,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled index split; returns ``(train_idx, test_idx)``."""
    if n < 2:
        raise ValueError(f"need at least 2 rows to split, got {n}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = ensure_rng(random_state)
    order = rng.permutation(n)
    n_test = max(1, min(n - 1, int(round(n * test_fraction))))
    return np.sort(order[n_test:]), np.sort(order[:n_test])


def kfold_indices(n: int, n_folds: int = 5, random_state=None) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold partition; returns ``[(train_idx, valid_idx), ...]``."""
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n < n_folds:
        raise ValueError(f"cannot make {n_folds} folds from {n} rows")
    rng = ensure_rng(random_state)
    order = rng.permutation(n)
    folds = np.array_split(order, n_folds)
    out = []
    for i in range(n_folds):
        valid = np.sort(folds[i])
        train = np.sort(np.concatenate([folds[j] for j in range(n_folds) if j != i]))
        out.append((train, valid))
    return out


def oversample_minority(
    X: np.ndarray, y: np.ndarray, random_state=None, target_ratio: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Resample the minority class (with replacement) up to
    ``target_ratio × majority`` count. A no-op when already balanced or when
    a class is absent.
    """
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError(f"target_ratio must be in (0, 1], got {target_ratio}")
    rng = ensure_rng(random_state)
    y = np.asarray(y)
    pos = np.nonzero(y == 1)[0]
    neg = np.nonzero(y == 0)[0]
    if len(pos) == 0 or len(neg) == 0:
        return X, y
    minority, majority = (pos, neg) if len(pos) < len(neg) else (neg, pos)
    target = int(round(target_ratio * len(majority)))
    if len(minority) >= target:
        return X, y
    extra = rng.choice(minority, size=target - len(minority), replace=True)
    idx = np.concatenate([np.arange(len(y)), extra])
    rng.shuffle(idx)
    return X[idx], y[idx]


def grid_search_cv(
    make_model: Callable[..., object],
    grid: dict[str, Sequence],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    random_state=None,
) -> tuple[dict, float]:
    """Exhaustive CV search over a small hyperparameter grid.

    ``make_model(**params)`` must return an object with ``fit(X, y)`` and
    ``predict(X)``. Scoring is F1 (the paper's metric). Returns the best
    parameter dict and its mean CV score. Folds with a single training class
    are skipped.
    """
    if not grid:
        return {}, float("nan")
    rng = ensure_rng(random_state)
    keys = sorted(grid)
    combos: list[dict] = [{}]
    for key in keys:
        combos = [dict(c, **{key: v}) for c in combos for v in grid[key]]
    folds = kfold_indices(len(y), n_folds=min(n_folds, max(2, len(y) // 2)), random_state=rng)
    best_params, best_score = combos[0], -1.0
    for params in combos:
        scores = []
        for train_idx, valid_idx in folds:
            y_train = y[train_idx]
            if len(np.unique(y_train)) < 2:
                continue
            model = make_model(**params)
            model.fit(X[train_idx], y_train)
            scores.append(f_score(y[valid_idx], model.predict(X[valid_idx])))
        mean = float(np.mean(scores)) if scores else -1.0
        if mean > best_score:
            best_params, best_score = params, mean
    return best_params, best_score
