"""Fellegi–Sunter ECM classifier (the paper's "ECM" baseline).

The Fellegi–Sunter model [22] scores record pairs from per-feature
agreement probabilities: ``m_j = P(agree_j | match)`` and
``u_j = P(agree_j | unmatch)``. With unlabeled data the parameters are
learned by an expectation–conditional-maximization loop over *binarized*
similarity vectors, following the recordlinkage-toolkit implementation
[13, 14] the paper compares against: each similarity feature is thresholded
into agree/disagree, features are conditionally independent given the
class, and EM alternates posterior computation with m/u re-estimation.

Binarization throws away the similarity magnitudes and the independence
assumption ignores feature correlation — the two deficiencies that make
this baseline weak in the paper's Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.features.normalize import MinMaxNormalizer, impute_nan
from repro.utils.validation import check_feature_matrix

__all__ = ["ECMClassifier"]


class ECMClassifier:
    """Unsupervised Fellegi–Sunter matcher with ECM parameter estimation.

    Parameters
    ----------
    binarize_threshold:
        Similarity above this (after min–max scaling) counts as "agreement"
        (recordlinkage's default style, 0.8).
    init_prior:
        Initial match prior π.
    """

    def __init__(
        self,
        binarize_threshold: float = 0.8,
        init_prior: float = 0.1,
        max_iter: int = 100,
        tol: float = 1e-5,
    ):
        if not 0.0 < binarize_threshold < 1.0:
            raise ValueError(f"binarize_threshold must be in (0, 1), got {binarize_threshold}")
        if not 0.0 < init_prior < 1.0:
            raise ValueError(f"init_prior must be in (0, 1), got {init_prior}")
        self.binarize_threshold = float(binarize_threshold)
        self.init_prior = float(init_prior)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.prior_: float | None = None
        self.m_: np.ndarray | None = None
        self.u_: np.ndarray | None = None
        self.match_scores_: np.ndarray | None = None

    def _binarize(self, X: np.ndarray) -> np.ndarray:
        scaled = impute_nan(MinMaxNormalizer().fit_transform(X))
        return (scaled >= self.binarize_threshold).astype(np.float64)

    def fit_predict(self, X) -> np.ndarray:
        """Learn m/u/π by ECM on binarized similarities; return 0/1 labels."""
        X = check_feature_matrix(X, allow_nan=True)
        B = self._binarize(X)
        n, d = B.shape
        # classic initialization: agreements are likelier under matches
        m = np.full(d, 0.9)
        u = np.clip(B.mean(axis=0), 1e-4, 1.0 - 1e-4)
        prior = self.init_prior
        gamma = np.full(n, prior)
        previous_ll = None
        for _ in range(self.max_iter):
            # E: posterior under conditional independence (log domain)
            log_match = np.log(prior) + B @ np.log(m) + (1.0 - B) @ np.log1p(-m)
            log_unmatch = np.log1p(-prior) + B @ np.log(u) + (1.0 - B) @ np.log1p(-u)
            log_total = np.logaddexp(log_match, log_unmatch)
            gamma = np.exp(log_match - log_total)
            ll = float(np.mean(log_total))
            # CM: closed-form conditional maximizations
            weight = gamma.sum()
            prior = float(np.clip(weight / n, 1e-6, 1.0 - 1e-6))
            m = np.clip((gamma @ B) / max(weight, 1e-12), 1e-4, 1.0 - 1e-4)
            u = np.clip(((1.0 - gamma) @ B) / max(n - weight, 1e-12), 1e-4, 1.0 - 1e-4)
            if previous_ll is not None and abs(ll - previous_ll) < self.tol:
                break
            previous_ll = ll
        # orient: the match class must be the one with higher agreement rates
        if float(np.mean(m)) < float(np.mean(u)):
            m, u = u, m
            prior = 1.0 - prior
            gamma = 1.0 - gamma
        self.prior_, self.m_, self.u_ = prior, m, u
        self.match_scores_ = gamma
        return (gamma > 0.5).astype(np.int64)
