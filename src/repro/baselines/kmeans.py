"""K-Means matchers: the "K-Means (SK)" and "K-Means (RL)" baselines.

Both cluster the similarity vectors into two groups and call the cluster
with the larger mean feature magnitude the match cluster:

* **SK** — plain Lloyd's algorithm with k-means++ seeding, the
  scikit-learn-style baseline. Known to fail when cluster sizes are very
  uneven [paper §7.1], which is exactly ER's class imbalance.
* **RL** — the recordlinkage-toolkit-style variant: per-cluster weights
  down-weight the distance to the (small) match cluster so the imbalance
  does not swallow it. ``match_weight > 1`` enlarges the match cluster's
  basin of attraction.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_feature_matrix

__all__ = ["KMeansMatcher"]


class KMeansMatcher:
    """Two-cluster K-Means over similarity vectors.

    Parameters
    ----------
    variant:
        ``"sk"`` (unweighted) or ``"rl"`` (class-weighted assignment).
    match_weight:
        RL variant only: divide distances to the match centroid by this
        factor (> 1 favors assigning points to the match cluster).
    n_init:
        Independent k-means++ restarts; best inertia wins.
    """

    def __init__(
        self,
        variant: str = "sk",
        match_weight: float = 4.0,
        n_init: int = 5,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state=None,
    ):
        if variant not in ("sk", "rl"):
            raise ValueError(f"variant must be 'sk' or 'rl', got {variant!r}")
        if match_weight <= 0.0:
            raise ValueError(f"match_weight must be positive, got {match_weight}")
        self.variant = variant
        self.match_weight = float(match_weight)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state
        self.centroids_: np.ndarray | None = None
        self.match_cluster_: int | None = None

    # -- internals -----------------------------------------------------------

    def _seed(self, X: np.ndarray, rng) -> np.ndarray:
        """k-means++ seeding for k = 2."""
        n = X.shape[0]
        first = X[int(rng.integers(n))]
        d2 = np.sum((X - first) ** 2, axis=1)
        total = float(d2.sum())
        if total <= 0.0:
            second = X[int(rng.integers(n))]
        else:
            second = X[int(rng.choice(n, p=d2 / total))]
        return np.stack([first, second])

    def _distances(self, X: np.ndarray, centroids: np.ndarray, match_cluster: int) -> np.ndarray:
        d = np.stack([np.sum((X - c) ** 2, axis=1) for c in centroids], axis=1)
        if self.variant == "rl":
            d[:, match_cluster] /= self.match_weight
        return d

    def _lloyd(self, X: np.ndarray, rng) -> tuple[np.ndarray, np.ndarray, float]:
        centroids = self._seed(X, rng)
        match_cluster = int(np.argmax(np.linalg.norm(centroids, axis=1)))
        assignment = np.zeros(X.shape[0], dtype=np.int64)
        for _ in range(self.max_iter):
            dist = self._distances(X, centroids, match_cluster)
            assignment = np.argmin(dist, axis=1)
            new_centroids = centroids.copy()
            for k in range(2):
                members = X[assignment == k]
                if len(members):
                    new_centroids[k] = members.mean(axis=0)
            match_cluster = int(np.argmax(np.linalg.norm(new_centroids, axis=1)))
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < self.tol:
                break
        inertia = float(
            np.sum(np.min(self._distances(X, centroids, match_cluster), axis=1))
        )
        return centroids, assignment, inertia

    # -- public API -----------------------------------------------------------

    def fit(self, X) -> "KMeansMatcher":
        """Cluster the (unlabeled) similarity vectors."""
        X = check_feature_matrix(X)
        rng = ensure_rng(self.random_state)
        best: tuple[np.ndarray, np.ndarray, float] | None = None
        for _ in range(self.n_init):
            result = self._lloyd(X, rng)
            if best is None or result[2] < best[2]:
                best = result
        self.centroids_ = best[0]
        # the match cluster is the one with larger centroid magnitude
        self.match_cluster_ = int(np.argmax(np.linalg.norm(self.centroids_, axis=1)))
        return self

    def predict(self, X) -> np.ndarray:
        """0/1 labels: 1 for rows assigned to the match cluster."""
        if self.centroids_ is None or self.match_cluster_ is None:
            raise RuntimeError("KMeansMatcher must be fitted before predicting")
        X = check_feature_matrix(X)
        dist = self._distances(X, self.centroids_, self.match_cluster_)
        return (np.argmin(dist, axis=1) == self.match_cluster_).astype(np.int64)

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).predict(X)
